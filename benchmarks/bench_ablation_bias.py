"""Ablation B — the biased-learning bias term ``eps`` (Section 3.4.3).

The paper states: "The bias learning method improves the detecting
accuracy but also increases the false alarms at the same time."  The
mechanism acts on the *natural* (imbalanced) distribution, where a
plainly trained classifier is conservative: softening the non-hotspot
targets lowers the confidence demanded on the majority class and moves
the operating point toward recall.  We therefore fine-tune on the
natural distribution and sweep ``eps`` over {0, 0.1, 0.2, 0.3}; both
accuracy and false alarms must be higher at the large-eps end.
"""

import numpy as np

from repro.bench import format_table
from repro.detect import BNNDetector

from conftest import publish, subsample

EPSILONS = (0.0, 0.1, 0.2, 0.3)


def test_ablation_bias_term(benchmark, iccad_benchmark):
    base = subsample(iccad_benchmark, n_train=500, n_test=400, seed=7)

    def sweep():
        rows = []
        for eps in EPSILONS:
            detector = BNNDetector(
                base_width=8, epochs=10, finetune_epochs=6,
                epsilon=max(eps, 1e-9),          # eps=0: plain fine-tune
                finetune_hotspot_mass=None,      # natural distribution
                seed=0,
            )
            metrics = detector.fit_evaluate(
                base.train, base.test, np.random.default_rng(0)
            )
            rows.append({
                "eps": eps,
                "Accu (%)": round(100 * metrics.accuracy, 1),
                "FA#": metrics.false_alarm,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_bias", format_table(
        rows, title="Ablation B — biased-learning eps (Section 3.4.3)"
    ))

    # the paper's claim, checked at the sweep endpoints: biased learning
    # buys recall and pays in false alarms
    base_row, biased_row = rows[0], rows[-1]
    assert biased_row["Accu (%)"] >= base_row["Accu (%)"]
    assert biased_row["FA#"] >= base_row["FA#"]
