"""Ablation D — network depth (Section 3.1).

The paper starts from ResNet-18, constrains the design to fewer than 20
layers, and settles on 12 as the speed/accuracy balance.  We train the
8-, 12- and 18-layer variants and report accuracy, parameters and
training time.  The expected shape: the 12-layer network is competitive
with the deeper variant at a fraction of the cost — the paper's reason
for shrinking the architecture.
"""

import numpy as np

from repro.bench import format_table
from repro.detect import BNNDetector
from repro.models import count_network_layers

from conftest import publish, subsample

#: (label, channels, blocks_per_stage) reproducing 8/12/18-layer layouts
VARIANTS = [
    ("8-layer", (8, 16, 32), (1, 1, 1)),
    ("12-layer (paper)", (8, 16, 32, 64, 128), (1, 1, 1, 1, 1)),
    ("18-layer", (8, 16, 32, 64), (2, 2, 2, 2)),
]


def test_ablation_depth(benchmark, iccad_benchmark):
    base = subsample(iccad_benchmark, n_train=500, n_test=400, seed=11)

    def sweep():
        rows = []
        for label, channels, blocks in VARIANTS:
            detector = BNNDetector(channels=channels, blocks_per_stage=blocks,
                                   epochs=10, finetune_epochs=3, seed=0,
                                   stem_stride=1)
            metrics = detector.fit_evaluate(
                base.train, base.test, np.random.default_rng(0)
            )
            model = detector.model
            rows.append({
                "Network": label,
                "Layers": count_network_layers(model),
                "Params": model.num_parameters(),
                "Accu (%)": round(100 * metrics.accuracy, 1),
                "FA#": metrics.false_alarm,
                "Train (s)": round(metrics.train_time_s, 1),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_depth", format_table(
        rows, title="Ablation D — network depth (Section 3.1)"
    ))

    layer_counts = [row["Layers"] for row in rows]
    assert layer_counts == [8, 12, 18]
    assert all(count < 20 for count in layer_counts)  # the design constraint
    # every depth must train to a working detector
    assert all(row["Accu (%)"] > 30.0 for row in rows)
