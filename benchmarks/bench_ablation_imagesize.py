"""Ablation A — input down-sampling size ``l_s`` (Section 3.4.1).

The paper tuned ``l_s`` to 128 as the accuracy/speed balance point.  We
sweep ``l_s`` over {16, 32, 64} by further down-sampling the benchmark
images, and report detection accuracy plus packed-inference runtime.
The expected shape: runtime grows steeply with ``l_s`` while accuracy
grows and then saturates — the trade-off the paper tuned.
"""

import numpy as np

from repro.bench import format_table
from repro.detect import BNNDetector
from repro.features import downsample_binary
from repro.litho import HotspotBenchmark
from repro.nn import ArrayDataset

from conftest import publish, subsample


def resized(benchmark: HotspotBenchmark, size: int) -> HotspotBenchmark:
    """Down-sample every image of the benchmark to ``size``."""
    def shrink(dataset: ArrayDataset) -> ArrayDataset:
        images = downsample_binary(dataset.images[:, 0], size)
        return ArrayDataset(images[:, None].astype(np.float32), dataset.labels)

    return HotspotBenchmark(
        train=shrink(benchmark.train),
        test=shrink(benchmark.test),
        stats=benchmark.stats,
        image_size=size,
    )


def test_ablation_image_size(benchmark, iccad_benchmark):
    """Sweep l_s and report the accuracy/runtime trade-off."""
    base = subsample(iccad_benchmark, n_train=500, n_test=400, seed=5)
    sizes = [s for s in (16, 32, 64) if s <= base.image_size]

    def sweep():
        rows = []
        for size in sizes:
            data = resized(base, size)
            detector = BNNDetector(base_width=8, epochs=10, finetune_epochs=3,
                                   stem_stride=1, seed=0)
            metrics = detector.fit_evaluate(
                data.train, data.test, np.random.default_rng(0)
            )
            rows.append({
                "l_s": size,
                "Accu (%)": round(100 * metrics.accuracy, 1),
                "FA#": metrics.false_alarm,
                "Eval runtime (s)": round(metrics.eval_time_s, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_imagesize", format_table(
        rows, title="Ablation A — input size l_s (Section 3.4.1)"
    ))

    runtimes = [row["Eval runtime (s)"] for row in rows]
    # runtime must grow with resolution (roughly quadratically)
    assert runtimes == sorted(runtimes)
    assert runtimes[-1] > 2.0 * runtimes[0]
    # the largest input must not be the worst detector
    accs = [row["Accu (%)"] for row in rows]
    assert accs[-1] >= min(accs)
