"""Extension ablation — OPC and the hotspot rate of the substrate.

The ICCAD 2012 layouts went through optical proximity correction before
lithography; our synthetic substrate exposes the drawn geometry
directly.  This benchmark quantifies the gap: the hotspot rate of a
pattern sample with raw masks vs rule-based-OPC'd masks, plus the
nominal-EPE improvement of the model-based corrector on canonical
patterns.  The correction must reduce both — evidence the simulator
responds to mask changes the way real lithography does.
"""

import numpy as np

from repro.bench import format_table
from repro.litho import (
    Clip,
    LithographySimulator,
    Rect,
    rule_based_opc,
    sample_clip,
)
from repro.litho.epe import analyze_contours
from repro.litho.opc import IterativeOPC
from repro.litho.raster import rasterize
from repro.litho.resist import nominal_corner

from conftest import publish


def _nominal_report(simulator, target_clip, mask_clip):
    pixel_nm = target_clip.size / simulator.resolution_px
    printed = simulator.simulate_corner(
        rasterize(mask_clip, simulator.resolution_px, "area"),
        pixel_nm, nominal_corner(),
    )
    target = rasterize(target_clip, simulator.resolution_px,
                       "binary").astype(bool)
    return analyze_contours(target, printed, pixel_nm)


def test_opc_reduces_hotspot_rate(benchmark):
    """Rule-based OPC must cut the sampled hotspot rate."""
    simulator = LithographySimulator()
    rng = np.random.default_rng(4)
    clips = [sample_clip(rng) for _ in range(40)]

    def measure():
        raw = sum(simulator.is_hotspot(clip) for clip in clips)
        corrected = 0
        for clip in clips:
            mask = rule_based_opc(clip)
            pixel_nm = clip.size / simulator.resolution_px
            mask_image = rasterize(mask, simulator.resolution_px, "area")
            target = rasterize(clip, simulator.resolution_px,
                               "binary").astype(bool)
            worst = None
            for corner in simulator.corners:
                printed = simulator.simulate_corner(mask_image, pixel_nm,
                                                    corner)
                report = analyze_contours(target, printed, pixel_nm)
                if worst is None or (
                    LithographySimulator._severity(report)
                    > LithographySimulator._severity(worst)
                ):
                    worst = report
            corrected += worst.is_hotspot(simulator.epe_tolerance_nm)
        return raw, corrected

    raw, corrected = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        {"Mask": "drawn geometry", "Hotspots / 40": raw},
        {"Mask": "rule-based OPC", "Hotspots / 40": corrected},
    ]
    publish("ablation_opc_rate", format_table(
        rows, title="Extension — OPC vs hotspot rate"
    ))
    assert corrected < raw


def test_iterative_opc_reduces_epe(benchmark):
    """Model-based OPC must cut nominal EPE on canonical patterns."""
    simulator = LithographySimulator()
    cases = {
        "isolated wire": Clip(1024, [Rect(460, 100, 560, 900)]),
        "small via": Clip(1024, [Rect(480, 480, 560, 560)]),
        "L bend": Clip(1024, [Rect(200, 200, 800, 290),
                              Rect(200, 200, 290, 800)]),
    }

    def measure():
        rows = []
        opc = IterativeOPC(simulator, iterations=4)
        for name, clip in cases.items():
            before = _nominal_report(simulator, clip, clip)
            corrected = opc.correct(clip)
            after = _nominal_report(simulator, clip, corrected)
            rows.append({
                "Pattern": name,
                "EPE before (nm)": round(before.max_epe_nm, 1),
                "broken before": before.broken,
                "EPE after (nm)": round(after.max_epe_nm, 1),
                "broken after": after.broken,
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish("ablation_opc_epe", format_table(
        rows, title="Extension — model-based OPC, nominal EPE"
    ))
    for row in rows:
        if row["broken before"]:
            # a vanished/severed feature must at least print after OPC
            assert not row["broken after"]
        else:
            assert not row["broken after"]
            assert row["EPE after (nm)"] <= row["EPE before (nm)"] + 0.1
