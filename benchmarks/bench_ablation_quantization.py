"""Extension ablation — the quantization ladder of Section 2.2.

The paper's background orders quantization schemes by aggressiveness:
32-bit float, 8-bit fixed point [21], ternary weights [22], and the
1-bit binarization it adopts.  This benchmark trains the same residual
topology at each precision on the hotspot task and reports accuracy,
false alarms and (for the binary point) packed-inference runtime —
quantifying what each precision step costs, and that 1-bit remains a
working detector (the premise of the whole paper).
"""

import numpy as np

from repro.bench import format_table
from repro.detect import BNNDetector
from repro.detect.base import HotspotDetector
from repro.features.downsample import to_network_input
from repro.models import build_quantized_resnet, build_resnet
from repro.nn import ArrayDataset, DataLoader, NAdam, Trainer
from repro.nn.data import balanced_weights
from repro.nn.trainer import predict_logits

from conftest import publish, subsample


class _LadderDetector(HotspotDetector):
    """Minimal detector wrapper around a float/int8/ternary network."""

    def __init__(self, precision: str, channels=(8, 16, 32), epochs=10,
                 seed=0):
        self.precision = precision
        self.channels = channels
        self.epochs = epochs
        self.seed = seed
        self.name = precision
        self.model = None

    def _build(self):
        if self.precision == "float":
            return build_resnet(self.channels, seed=self.seed, stem_stride=2)
        return build_quantized_resnet(self.precision, self.channels,
                                      seed=self.seed, stem_stride=2)

    def fit(self, train, rng):
        images = to_network_input(train.images)
        labels = np.asarray(train.labels, dtype=np.int64)
        self.model = self._build()
        trainer = Trainer(self.model, NAdam(self.model.parameters(), lr=0.002))
        loader = DataLoader(
            ArrayDataset(images, labels), 32,
            rng=np.random.default_rng(rng.integers(2**32)),
            sample_weights=balanced_weights(labels),
        )
        trainer.fit(loader, epochs=self.epochs)
        return self

    def predict(self, images):
        logits = predict_logits(self.model, to_network_input(images))
        return logits.argmax(axis=1).astype(np.int64)


def test_ablation_quantization_ladder(benchmark, iccad_benchmark):
    base = subsample(iccad_benchmark, n_train=500, n_test=400, seed=13)

    def sweep():
        rows = []
        for precision in ("float", "int8", "ternary"):
            detector = _LadderDetector(precision, epochs=10)
            metrics = detector.fit_evaluate(
                base.train, base.test, np.random.default_rng(0)
            )
            rows.append({
                "Precision": precision,
                "Accu (%)": round(100 * metrics.accuracy, 1),
                "FA#": metrics.false_alarm,
                "Eval (s)": round(metrics.eval_time_s, 3),
            })
        binary = BNNDetector(base_width=8, epochs=10, finetune_epochs=3,
                             seed=0)
        metrics = binary.fit_evaluate(
            base.train, base.test, np.random.default_rng(0)
        )
        rows.append({
            "Precision": "binary (ours, packed)",
            "Accu (%)": round(100 * metrics.accuracy, 1),
            "FA#": metrics.false_alarm,
            "Eval (s)": round(metrics.eval_time_s, 3),
        })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_quantization", format_table(
        rows, title="Extension — quantization ladder (Section 2.2)"
    ))

    accs = {row["Precision"]: row["Accu (%)"] for row in rows}
    # every precision level must produce a working detector...
    assert all(acc > 10.0 for acc in accs.values())
    # ...and the 1-bit point must stay in the race with the mild
    # quantizations (the premise that binarization is 'suitable' here)
    assert accs["binary (ours, packed)"] >= max(accs.values()) - 25.0
