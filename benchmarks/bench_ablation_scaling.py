"""Ablation C — activation scaling factors (Section 3.2, Eq. 14).

The paper's refinement over XNOR-Net is a *per-input-channel* scaling
factor for the activations.  Two measurements:

1. **Estimation error** (the paper's stated motivation): how well the
   scaled binarized convolution approximates the full-precision
   convolution, per scaling mode.  Channelwise must be the most
   accurate, "none" the worst.
2. **End-to-end** detection accuracy and packed-inference runtime per
   mode, quantifying what the refinement buys and what the per-channel
   popcount path costs.
"""

import numpy as np

from repro.bench import format_table
from repro.binary import SCALING_MODES, BinaryConv2D
from repro.detect import BNNDetector
from repro.nn import functional as F

from conftest import publish, subsample


def estimation_error(scaling: str, rng) -> float:
    """Relative L2 error of the binarized conv vs the float conv."""
    x = rng.normal(size=(4, 16, 16, 16)) * rng.uniform(0.5, 2.0, (1, 16, 1, 1))
    layer = BinaryConv2D(16, 16, 3, padding=1, scaling=scaling,
                         rng=np.random.default_rng(0))
    exact, _ = F.conv2d_forward(x, layer.weight.data, None, 1, 1)
    approx = layer.forward(x)
    return float(np.linalg.norm(approx - exact) / np.linalg.norm(exact))


def test_ablation_scaling_estimation_error(benchmark):
    """Eq. 14's motivation: channelwise estimates the conv best."""
    def sweep():
        rng = np.random.default_rng(3)
        return {mode: estimation_error(mode, rng) for mode in SCALING_MODES}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{"Scaling": mode, "Relative conv error": round(err, 4)}
            for mode, err in errors.items()]
    publish("ablation_scaling_error", format_table(
        rows, title="Ablation C.1 — binarization estimation error (Eq. 14)"
    ))
    assert errors["channelwise"] <= errors["xnor"] <= errors["none"]


def test_ablation_scaling_end_to_end(benchmark, iccad_benchmark):
    """Accuracy and packed runtime of each scaling mode."""
    base = subsample(iccad_benchmark, n_train=500, n_test=400, seed=9)

    def sweep():
        rows = []
        for mode in SCALING_MODES:
            detector = BNNDetector(base_width=8, epochs=14, finetune_epochs=4,
                                   scaling=mode, seed=0)
            metrics = detector.fit_evaluate(
                base.train, base.test, np.random.default_rng(0)
            )
            rows.append({
                "Scaling": mode,
                "Accu (%)": round(100 * metrics.accuracy, 1),
                "FA#": metrics.false_alarm,
                "Packed eval (s)": round(metrics.eval_time_s, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("ablation_scaling_end_to_end", format_table(
        rows, title="Ablation C.2 — scaling mode, end to end"
    ))
    by_mode = {row["Scaling"]: row for row in rows}
    # the channel-summed popcount path must be faster than per-channel
    assert by_mode["xnor"]["Packed eval (s)"] < (
        by_mode["channelwise"]["Packed eval (s)"]
    )
    # the paper's refinement must stay in the race (mode-vs-mode accuracy
    # at this scale is seed-noisy; the *estimation* advantage is the
    # assertion-grade claim, covered by C.1 above)
    best = max(row["Accu (%)"] for row in rows)
    assert by_mode["channelwise"]["Accu (%)"] >= best - 25.0
    # every mode must learn something
    assert all(row["Accu (%)"] > 10.0 for row in rows)
