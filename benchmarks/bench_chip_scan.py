"""Full-chip streaming scan — bounded memory + incremental ECO re-scan.

The chip subsystem's two claims, measured:

* **Streaming bounds memory without costing correctness.**  A
  :class:`repro.chip.ChipScanner` sweep under a small ``tile_budget``
  must produce scores bit-identical to a monolithic
  ``rasterize_plane`` + ``scan_plane`` of the whole chip, while its
  peak tile plane stays within budget — a fraction of the monolithic
  plane's footprint.
* **Re-scan cost scales with the edit, not the chip.**  After a small
  ECO edit trace (dirtying < 1% of windows), an incremental
  :meth:`rescan` must match a from-scratch scan of the edited layout
  bit-for-bit while running at least
  ``REPRO_BENCH_CHIP_MIN_ECO_SPEEDUP`` x faster (default 10) than the
  full streamed sweep.

Environment knobs: ``REPRO_BENCH_CHIP_SIZE`` (chip side in nm, default
16384; CI quick mode shrinks it) and the speedup bar above.

Writes ``BENCH_chip.json`` at the repo root with the headline numbers
(standard provenance envelope under ``"env"``).
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.bench import format_table, write_bench_json
from repro.chip import ChipScanner, DirtyRegionTracker
from repro.features.downsample import to_network_input
from repro.litho.fullchip import (
    apply_edits,
    synthesize_chip,
    synthesize_edit_trace,
)
from repro.litho.geometry import Rect
from repro.litho.raster import rasterize_plane
from repro.models.bnn_resnet import build_bnn_resnet

from conftest import publish

REPO_ROOT = Path(__file__).resolve().parent.parent

WINDOW = 1024
STRIDE = 512
IMAGE_SIZE = 32  # scale 32: one plane pixel per 32nm


def chip_size() -> int:
    """Chip side in nm (override for CI quick mode)."""
    return int(os.environ.get("REPRO_BENCH_CHIP_SIZE", "16384"))


def min_eco_speedup() -> float:
    """Acceptance bar for full-scan / re-scan wall clock on small edits."""
    return float(os.environ.get("REPRO_BENCH_CHIP_MIN_ECO_SPEEDUP", "10.0"))


def _warmed_engine():
    model = build_bnn_resnet((4, 8), scaling="xnor", seed=7)
    rng = np.random.default_rng(99)
    x = (rng.random((8, 1, IMAGE_SIZE, IMAGE_SIZE)) > 0.5) * 2.0 - 1.0
    model.forward(x, training=True)
    from repro.binary.inference import PackedBNN

    return PackedBNN(model)


def test_chip_scan_streaming_and_eco():
    size = chip_size()
    scale = WINDOW // IMAGE_SIZE
    layout = synthesize_chip(size, seed=7)
    engine = _warmed_engine()
    scanner = ChipScanner(engine, IMAGE_SIZE)
    # budget: ~1/4 of the chip side per tile -> a 4x4-ish tile grid,
    # floored at one window so tiny quick-mode chips still plan
    budget = max((2 * WINDOW // scale) ** 2 * 8,
                 (size // scale // 4) ** 2 * 8)

    start = time.perf_counter()
    streamed = scanner.scan(layout, WINDOW, STRIDE, budget)
    streamed_s = time.perf_counter() - start
    windows = streamed.windows
    streamed_wps = windows / streamed_s

    # monolithic reference: whole chip as one plane, one compiled scan
    start = time.perf_counter()
    plane = to_network_input(
        rasterize_plane(layout, scale, "binary")[None]
    )
    mono_bytes = plane.nbytes
    steps = streamed.heatmap.steps
    origins = [(x // scale, y // scale) for y in steps for x in steps]
    logits = engine.scan_plane(plane, IMAGE_SIZE, origins)
    mono_s = time.perf_counter() - start
    mono_scores = (logits[:, 1] - logits[:, 0]).reshape(
        len(steps), len(steps)
    )
    identical = bool(
        np.array_equal(streamed.heatmap.scores, mono_scores)
    )

    # ECO: small edit traces confined to one corner of the chip
    region = Rect(0, 0, max(WINDOW * 2, size // 8), max(WINDOW * 2, size // 8))
    tracker = DirtyRegionTracker(list(steps), WINDOW)
    eco_rows = []
    eco_results = []
    previous = streamed
    base_layout = layout
    for n_edits in (1, 4, 16):
        edits = synthesize_edit_trace(
            base_layout, n_edits, seed=100 + n_edits, region=region
        )
        fraction = tracker.dirty_fraction(edits)
        start = time.perf_counter()
        rescanned = scanner.rescan(previous, edits)
        rescan_s = time.perf_counter() - start
        edited = apply_edits(base_layout, edits)
        scratch = ChipScanner(engine, IMAGE_SIZE).scan(
            edited, WINDOW, STRIDE, budget
        )
        eco_results.append({
            "edits": n_edits,
            "dirty_windows": rescanned.rescored_windows,
            "dirty_fraction": round(fraction, 5),
            "rescan_s": round(rescan_s, 4),
            "speedup_vs_full": round(streamed_s / rescan_s, 1),
            "identical": rescanned.heatmap.equals(scratch.heatmap),
        })
        eco_rows.append({
            "Edits": n_edits,
            "Dirty windows": rescanned.rescored_windows,
            "Dirty %": f"{100 * fraction:.2f}",
            "Re-scan (s)": round(rescan_s, 4),
            "vs full scan": f"{streamed_s / rescan_s:.0f}x",
            "Bit-identical": eco_results[-1]["identical"],
        })
        previous = rescanned
        base_layout = edited

    publish("chip_scan", format_table(
        [{
            "Path": "monolithic plane",
            "Wall clock (s)": round(mono_s, 2),
            "Windows/sec": round(windows / mono_s, 1),
            "Peak plane (MiB)": round(mono_bytes / 2**20, 2),
        }, {
            "Path": f"streamed ({streamed.tiles} tiles)",
            "Wall clock (s)": round(streamed_s, 2),
            "Windows/sec": round(streamed_wps, 1),
            "Peak plane (MiB)": round(streamed.peak_tile_bytes / 2**20, 2),
        }],
        title=(f"Full-chip scan — {size}nm chip, "
               f"{len(layout.rects)} rects, {windows} windows "
               f"(bit-identical: {identical})"),
    ) + "\n" + format_table(
        eco_rows, title="Incremental ECO re-scan vs edit size",
    ))

    write_bench_json(REPO_ROOT / "BENCH_chip.json", {
        "chip_size_nm": size,
        "rects": len(layout.rects),
        "window": WINDOW,
        "stride": STRIDE,
        "image_size": IMAGE_SIZE,
        "windows": windows,
        "tiles": streamed.tiles,
        "tile_budget_bytes": budget,
        "peak_tile_bytes": streamed.peak_tile_bytes,
        "monolithic_plane_bytes": mono_bytes,
        "memory_ratio": round(streamed.peak_tile_bytes / mono_bytes, 4),
        "streamed_s": round(streamed_s, 3),
        "streamed_wps": round(streamed_wps, 1),
        "monolithic_s": round(mono_s, 3),
        "identical": identical,
        "eco": eco_results,
    })

    # streaming is a memory shape, never a numerics change
    assert identical
    # the budget actually bound the peak tile plane (and beat monolithic)
    assert streamed.peak_tile_bytes <= budget
    assert streamed.peak_tile_bytes < mono_bytes
    assert streamed.tiles > 1
    # every re-scan is bit-identical to scanning the edited chip fresh
    assert all(row["identical"] for row in eco_results)
    # small edits (<1% of windows) must beat the full sweep by the bar
    small = [row for row in eco_results if row["dirty_fraction"] < 0.01]
    assert small, "no edit trace stayed under 1% dirty — enlarge the chip"
    assert all(
        row["speedup_vs_full"] >= min_eco_speedup() for row in small
    )
