"""Figure 1 — real-valued vs binarized network arithmetic.

The figure contrasts float multiply-accumulate networks with
XNOR/popcount networks.  The paper's 8x end-to-end speedup comes from
custom GPU bit-kernels; this benchmark measures the same substitution
on *this* machine and library, where the honest wins are:

* **per-layer**: the popcount convolution beats the float (im2col +
  BLAS) convolution at every multi-channel layer of the network;
* **end-to-end**: the packed engine runs the full 12-layer network
  about twice as fast as the float *simulation* of the same binarized
  network, and on par with an identically shaped float network served
  by AVX-512 BLAS;
* **model size**: binary weights compress the model ~30x;
* **arithmetic**: 64 multiply-accumulates collapse into one XOR +
  popcount word operation (counted exactly below).
"""

import numpy as np

from repro.bench import Stopwatch, format_table
from repro.binary import FloatEngine, PackedBNN, bitpack
from repro.engine import BinaryConvOp, FusedBinaryConvOp, infer_shapes
from repro.models import bnn_resnet12, resnet12, summarize
from repro.nn.trainer import predict_logits

from conftest import publish


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        sw = Stopwatch().start()
        fn()
        best = min(best, sw.stop())
    return best


def test_fig1_per_layer_speedup(benchmark):
    """Per-layer float-MAC vs XNOR/popcount timings from the executors.

    Both engines run the *same* optimized program end-to-end
    (bit-identical logits); the numbers come from the executor's per-op
    timing hooks rather than ad-hoc kernel timers, so each row is the
    time that layer actually took inside a full inference pass —
    im2col/packing, dot products, and Eq. 14/15 scaling included on
    both sides.  The pass pipeline fuses each batch-norm into the conv
    that consumes it (``fold-bn``); the timing snapshot's ``sources``
    attribute each fused op back to the source paper layers, so the
    rows stay per-layer even though the executor runs fused nodes
    (fused batch-norms are flagged ``+bn`` and their cost is included
    in the row on both sides).
    """
    rng = np.random.default_rng(0)
    bnn = bnn_resnet12(seed=0, scaling="xnor")
    bnn.forward(rng.normal(size=(8, 1, 128, 128)), training=True)
    packed = PackedBNN(bnn)
    float_eng = FloatEngine(bnn)
    images = np.where(rng.random((16, 1, 128, 128)) < 0.3, 1.0, -1.0)
    shapes = infer_shapes(packed.program, images.shape)

    def sweep(repeats=5):
        for engine in (packed, float_eng):
            engine.predict_logits(images, batch_size=16)  # warm-up
            engine.reset_op_timings()
        for _ in range(repeats):
            packed.predict_logits(images, batch_size=16)
            float_eng.predict_logits(images, batch_size=16)
        float_ms = {row["op"]: row["mean_ms"] for row in float_eng.op_timings()}
        binary_ms = {row["op"]: row["mean_ms"] for row in packed.op_timings()}
        sources = {row["op"]: row["sources"] for row in packed.op_timings()}
        rows = []
        for node in packed.program.walk():
            if not isinstance(node, (BinaryConvOp, FusedBinaryConvOp)):
                continue
            (n, c_in, h, _), (_, c_out, oh, ow) = shapes[node.name]
            positions = n * oh * ow
            fused = [s for s in sources.get(node.name, [node.name])
                     if s != node.name]
            tag = " +bn" if fused else ""
            rows.append({
                "Layer": f"{node.name}{tag} {c_in}->{c_out} @{h}px",
                "Float (ms)": round(float_ms[node.name], 2),
                "Binary (ms)": round(binary_ms[node.name], 2),
                "Speedup": round(
                    float_ms[node.name] / binary_ms[node.name], 2
                ),
                "MACs": c_out * c_in * node.kernel_size**2 * positions,
                "Word ops": c_out * positions * bitpack._conv_words(
                    c_in, node.kernel_size
                ),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("fig1_per_layer", format_table(
        rows, title=("Figure 1 — float MAC vs XNOR/popcount, per layer "
                     "(executor per-op timings, 16 clips @128px)")
    ))
    # the direction that must hold: once channels fill the 64-bit words,
    # the popcount kernel wins (averaged over the deep 3x3 layers —
    # per-op wall times at the 4-8px maps are sub-millisecond and noisy)
    deep = [row for row in rows
            if "64->64" in row["Layer"] or "128->128" in row["Layer"]]
    assert deep
    assert np.mean([row["Speedup"] for row in deep]) > 1.0


def test_fig1_end_to_end_and_compression(benchmark):
    """Whole-network comparison: packed engine vs float simulation vs
    an identically shaped float network, plus model-size accounting."""
    rng = np.random.default_rng(1)
    bnn = bnn_resnet12(seed=0, scaling="xnor")
    float_twin = resnet12(seed=0)
    warmup = rng.normal(size=(8, 1, 128, 128))
    bnn.forward(warmup, training=True)
    float_twin.forward(warmup, training=True)
    engine = PackedBNN(bnn)
    images = np.where(rng.random((32, 1, 128, 128)) < 0.3, 1.0, -1.0)

    def measure():
        packed = _time(lambda: engine.predict_logits(images, batch_size=16),
                       repeats=3)
        sim = _time(lambda: predict_logits(bnn, images, batch_size=16),
                    repeats=3)
        float_t = _time(lambda: predict_logits(float_twin, images,
                                               batch_size=16), repeats=3)
        return packed, sim, float_t

    packed, sim, float_t = benchmark.pedantic(measure, rounds=1, iterations=1)

    # storage: binary conv weights ship as 1 bit, the rest as float32
    binary_bits = sum(p.size for name, p in bnn.named_parameters()
                      if "conv.weight" in name)
    other_bits = 32 * sum(p.size for name, p in bnn.named_parameters()
                          if "conv.weight" not in name)
    float_bits = 32 * float_twin.num_parameters()
    compression = float_bits / (binary_bits + other_bits)

    rows = [
        {"Network (32 clips @128px)": "Float ResNet-12 (BLAS f64)",
         "Time (s)": round(float_t, 2), "Model (KiB)": float_bits // 8 // 1024},
        {"Network (32 clips @128px)": "BNN float simulation",
         "Time (s)": round(sim, 2),
         "Model (KiB)": (binary_bits + other_bits) // 8 // 1024},
        {"Network (32 clips @128px)": "BNN packed (XNOR/popcount)",
         "Time (s)": round(packed, 2),
         "Model (KiB)": (binary_bits + other_bits) // 8 // 1024},
    ]
    publish("fig1_end_to_end", format_table(
        rows, title=(
            "Figure 1 — end to end "
            f"(compression {compression:.1f}x, "
            f"packed vs simulation {sim / packed:.2f}x)"
        )
    ))

    assert sim / packed > 1.3          # deployment speedup over the sim
    assert compression > 20.0          # ~30x weight compression
    # binarized conv layers hold almost every parameter
    infos = summarize(bnn)
    assert sum(i.params for i in infos if i.kind == "binary_conv") > (
        0.9 * bnn.num_parameters()
    )
