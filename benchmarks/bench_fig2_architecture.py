"""Figure 2 — the redesigned 12-layer binarized residual network.

Audits the constructed network against every architectural statement of
Section 3.1 (12 layers, < 20 layers, two 3x3 binary convolutions per
residual block, 1x1 projection shortcuts at shape changes, filter
counts growing with depth) and prints the layer table that Figure 2
draws.  The pytest-benchmark measurement times a packed-engine forward
pass of the full network at the paper's 128x128 input.
"""

import numpy as np

from repro.bench import format_table
from repro.binary import PackedBNN
from repro.models import bnn_resnet12, count_network_layers, summarize

from conftest import publish


def test_fig2_architecture_audit(benchmark):
    """Regenerate Figure 2 as a layer table and verify its structure."""
    model = bnn_resnet12(seed=0)

    def audit():
        infos = summarize(model)
        rows = []
        for index, info in enumerate(infos):
            rows.append({
                "#": index,
                "Layer": info.kind + (" (shortcut)" if info.shortcut else ""),
                "Weight shape": "x".join(str(s) for s in info.shape),
                "Params": info.params,
            })
        return infos, rows

    infos, rows = benchmark.pedantic(audit, rounds=1, iterations=1)
    rows.append({"#": "", "Layer": "total (ResNet counting)",
                 "Weight shape": "", "Params": count_network_layers(model)})
    publish("fig2_architecture", format_table(
        rows, title="Figure 2 — 12-layer binarized residual network"
    ))

    # Section 3.1 claims, one by one:
    assert count_network_layers(model) == 12           # "a 12-layer network"
    assert count_network_layers(model) < 20            # "fewer than 20 layers"
    main_convs = [i for i in infos
                  if i.kind == "binary_conv" and not i.shortcut]
    assert all(i.shape[2:] == (3, 3) for i in main_convs)   # 3x3 blocks
    shortcut_convs = [i for i in infos if i.shortcut]
    assert all(i.shape[2:] == (1, 1) for i in shortcut_convs)  # 1x1 shortcuts
    widths = [i.shape[0] for i in main_convs]
    assert widths == sorted(widths)                    # deeper -> more filters


def test_fig2_forward_pass_at_paper_scale(benchmark):
    """Packed forward pass of the 12-layer network on 128x128 clips."""
    model = bnn_resnet12(seed=0)
    rng = np.random.default_rng(0)
    # accumulate batch-norm statistics before compiling
    model.forward(rng.normal(size=(8, 1, 128, 128)), training=True)
    engine = PackedBNN(model)
    images = np.where(rng.random((4, 1, 128, 128)) < 0.3, 1.0, -1.0)

    logits = benchmark(engine.forward, images)
    assert logits.shape == (4, 2)
