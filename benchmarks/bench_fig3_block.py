"""Figure 3 — the BNN convolution block (BatchNorm -> Binarize -> BinaryConv).

Verifies the block's structural claim — batch normalisation placed
*before* binarization reduces the information lost by quantization —
by measuring the binarization loss (Eq. 4 aggregated over the tensor)
with and without the preceding normalisation on skewed activations, and
times the block forward against its float counterpart.
"""

import numpy as np

from repro.bench import Stopwatch, format_table
from repro.binary import BNNConvBlock, quantize
from repro.models.resnet import FloatConvBlock

from conftest import publish


def binarization_loss(x: np.ndarray) -> float:
    """Mean squared error of the optimal rank-1 binary estimate of x
    (Eq. 4 with the closed-form Eq. 7 solution, per channel)."""
    alpha = np.abs(x).mean(axis=(0, 2, 3), keepdims=True)
    estimate = quantize.sign(x) * alpha
    return float(((x - estimate) ** 2).mean())


def test_fig3_batchnorm_reduces_binarization_loss(benchmark):
    """BN-before-binarize (the Figure 3 ordering, after XNOR-Net) must
    lose less information than binarizing the raw skewed activations."""
    rng = np.random.default_rng(0)

    def measure():
        # skewed, shifted activations as produced by preceding layers
        x = rng.gamma(2.0, 2.0, size=(16, 8, 16, 16)) - 1.0
        raw_loss = binarization_loss(x)
        normalised = (x - x.mean(axis=(0, 2, 3), keepdims=True)) / x.std(
            axis=(0, 2, 3), keepdims=True
        )
        bn_loss = binarization_loss(normalised)
        return raw_loss, bn_loss

    raw_loss, bn_loss = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        {"Ordering": "Binarize(raw)", "Binarization MSE": round(raw_loss, 4)},
        {"Ordering": "BN -> Binarize (Fig. 3)",
         "Binarization MSE": round(bn_loss, 4)},
    ]
    publish("fig3_block", format_table(
        rows, title="Figure 3 — effect of BN placement on binarization loss"
    ))
    assert bn_loss < raw_loss


def test_fig3_block_forward_timing(benchmark):
    """Block forward time: BNN block vs float pre-activation block."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(8, 16, 32, 32))
    bnn_block = BNNConvBlock(16, 16, 3, rng=np.random.default_rng(2))
    float_block = FloatConvBlock(16, 16, 3, rng=np.random.default_rng(2))

    def run_both():
        times = {}
        for name, block in (("BNN block", bnn_block),
                            ("float block", float_block)):
            best = float("inf")
            for _ in range(3):
                sw = Stopwatch().start()
                block.forward(x)
                best = min(best, sw.stop())
            times[name] = best
        return times

    times = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [{"Block": name, "Forward (ms)": round(t * 1e3, 2)}
            for name, t in times.items()]
    publish("fig3_block_timing", format_table(
        rows, title="Figure 3 — block forward time (training simulation)"
    ))
    # both must produce finite timings; the training-time simulation is
    # allowed to be slower than float (deployment speed lives in Fig. 1)
    assert all(t > 0 for t in times.values())
