"""Fusion gate — compiled backend vs unfused packed plane throughput.

The pass pipeline (``fold-bn`` → ``hoist-scales`` → ``liveness``) plus
the ``compiled`` backend turn the batch-norm → binarize → XNOR-conv
chain of every layer into one fused kernel: the batch-norm is applied
as a per-channel threshold compare during bit-packing (exactly Eq. 8's
sign test, shifted by the folded affine), the Eq. 14/15 weight scales
are hoisted to compile time, and the binary dot products run through
an exact float32 SGEMM (or a uint16 dot table at stem shapes) instead
of per-window popcount loops.

This benchmark holds the headline claim on the same workload
``BENCH_scan.json`` records (dense synthetic metal layer, window 128 /
stride 64, scale-1 rasters): the compiled backend's **plane**
windows/sec must be at least ``REPRO_BENCH_FUSION_MIN_SPEEDUP`` x the
*unfused* packed backend's — while staying **bit-identical**, the
engine parity contract.

The default bar is 1.0: a *regression* gate.  Pure-NumPy fusion on
this workload measures ~1.05-1.15x — the fused threshold-compare saves
the materialized batch-norm planes, but both engines are bound by the
same f64 activation traffic (bit-identity forbids float32
intermediates), and the fused gather loops are Python, so the big
stage-1 wins are partly given back in interpreter overhead.  The
multiple-x headline needs the Numba jit paths
(``repro.engine.backends.compiled.HAVE_NUMBA``), which this container
does not ship; the gate's job here is to guarantee the compiled
backend never *loses* to the packed one.  Raise the bar via the env
knob on hosts with Numba.

Writes ``BENCH_fusion.json`` at the repo root with the headline
numbers.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.bench import format_table, write_bench_json
from repro.binary.inference import engine_for_backend
from repro.features.downsample import to_network_input
from repro.litho.raster import rasterize
from repro.models.bnn_resnet import build_bnn_resnet

from bench_scan_plane import IMAGE_SIZE, STRIDE, WINDOW, dense_layout
from conftest import publish

REPO_ROOT = Path(__file__).resolve().parent.parent


def fusion_layout_size() -> int:
    """Layout side in nm (shares the scan bench's quick-mode knob)."""
    return int(os.environ.get("REPRO_BENCH_SCAN_SIZE", "2048"))


def min_fusion_speedup() -> float:
    """Acceptance bar for compiled/unfused-packed windows-per-second."""
    return float(os.environ.get("REPRO_BENCH_FUSION_MIN_SPEEDUP", "1.0"))


def _plane_and_origins(layout):
    """Scale-1 network-input plane + snapped origin grid of the sweep."""
    plane = to_network_input(
        rasterize(layout, layout.size, "binary")[None]
    )
    steps = sorted(set(
        list(range(0, layout.size - WINDOW + 1, STRIDE))
        + [layout.size - WINDOW]
    ))
    origins = [(x, y) for y in steps for x in steps]
    return plane, origins


def _plane_scan(engine, plane, origins):
    """One timed full-plane scan; returns (seconds, logits)."""
    start = time.perf_counter()
    logits = engine.plan_scan(plane, IMAGE_SIZE, origins).logits(
        batch_size=256
    )
    return time.perf_counter() - start, logits


def _interleaved_best(engines, plane, origins, repeats=4):
    """Best-of-N per engine with alternating runs.

    Alternating baseline/fused repeats decorrelates the slow drift of a
    shared single-core box (page cache, thermal, sibling jobs) from the
    engine under test — back-to-back blocks can skew the ratio by 10%.
    """
    times = [float("inf")] * len(engines)
    logits = [None] * len(engines)
    for _ in range(repeats):
        for i, engine in enumerate(engines):
            s, out = _plane_scan(engine, plane, origins)
            times[i] = min(times[i], s)
            logits[i] = out
    return times, logits


def test_fusion_plane_speedup():
    """Compiled+fused plane scan vs the unfused packed plane scan."""
    size = fusion_layout_size()
    layout = dense_layout(size)
    model = build_bnn_resnet(
        (8, 16, 32, 64), scaling="xnor", seed=0, stem_stride=2
    )
    plane, origins = _plane_and_origins(layout)
    windows = len(origins)

    baseline_engine = engine_for_backend(model, "packed", passes="none")
    fused_engine = engine_for_backend(model, "compiled", passes="default")

    # full-size warm-up: compiles both plane plans and drives the
    # compiled backend's autotuner through every candidate at the real
    # chunk shapes, so no probe lands inside a timed run
    _plane_scan(baseline_engine, plane, origins)
    for _ in range(2):
        _plane_scan(fused_engine, plane, origins)

    (baseline_s, fused_s), (baseline_logits, fused_logits) = (
        _interleaved_best([baseline_engine, fused_engine], plane, origins)
    )

    baseline_wps = windows / baseline_s
    fused_wps = windows / fused_s
    speedup = fused_wps / baseline_wps
    identical = (
        baseline_logits.tobytes() == fused_logits.tobytes()
        and baseline_logits.shape == fused_logits.shape
    )

    publish("fusion", format_table(
        [{
            "Engine": "packed, passes=none (unfused)",
            "Wall clock (s)": round(baseline_s, 2),
            "Windows/sec": round(baseline_wps, 1),
            "Speedup": "1.0x",
        }, {
            "Engine": "compiled, passes=default (fused)",
            "Wall clock (s)": round(fused_s, 2),
            "Windows/sec": round(fused_wps, 1),
            "Speedup": f"{speedup:.2f}x",
        }],
        title=(f"Fusion gate — {size}nm plane, {windows} windows @ "
               f"stride {STRIDE} (bit-identical: {identical})"),
    ))

    write_bench_json(REPO_ROOT / "BENCH_fusion.json", {
        "layout_size_nm": size,
        "rects": len(layout.rects),
        "window": WINDOW,
        "stride": STRIDE,
        "image_size": IMAGE_SIZE,
        "windows": windows,
        "baseline_backend": "packed",
        "baseline_pipeline": "none",
        "fused_backend": "compiled",
        "fused_pipeline": fused_engine.pipeline,
        "baseline_s": round(baseline_s, 3),
        "fused_s": round(fused_s, 3),
        "baseline_wps": round(baseline_wps, 1),
        "fused_wps": round(fused_wps, 1),
        "speedup": round(speedup, 2),
        "identical": identical,
    })

    # fusion must never change a logit: bit-identity is the contract
    assert identical
    # the acceptance bar (env-lowered in CI quick mode)
    assert speedup >= min_fusion_speedup()
