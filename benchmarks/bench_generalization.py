"""Extension — unseen-pattern generalization (Section 1's motivation).

The paper motivates learning-based detection over pattern matching:
matchers are "relatively fast, but impossible to detect the unseen
patterns", while learned models generalize.  We measure both halves of
that argument: a pattern-matching detector and the BNN are trained on
the five core pattern families and evaluated on clips drawn *only* from
two families neither ever saw (comb fingers, contacted cells).  The
asserted shape: the matcher's recall on unseen families collapses
toward zero while the learned detector stays far above it.
"""

import numpy as np

from repro.bench import format_table
from repro.detect import BNNDetector, PatternMatchDetector
from repro.litho import LithographySimulator, Technology
from repro.litho.patterns import comb_fingers, contacted_cell

from conftest import publish, subsample


def _unseen_dataset(n_hotspot: int, n_nonhotspot: int, image_size: int,
                    seed: int):
    """Quota-fill a dataset from the two held-out families only."""
    from repro.features.downsample import downsample_binary
    from repro.litho.raster import rasterize
    from repro.nn import ArrayDataset

    simulator = LithographySimulator()
    tech = Technology()
    rng = np.random.default_rng(seed)
    generators = [comb_fingers, contacted_cell]
    need = {True: n_hotspot, False: n_nonhotspot}
    images, labels = [], []
    guard = 0
    while need[True] > 0 or need[False] > 0:
        guard += 1
        if guard > 50 * (n_hotspot + n_nonhotspot):
            raise RuntimeError("unseen-family quota not fillable")
        clip = generators[int(rng.integers(2))](rng, tech)
        is_hs = simulator.is_hotspot(clip)
        if need[is_hs] <= 0:
            continue
        need[is_hs] -= 1
        native = rasterize(clip, simulator.resolution_px, mode="binary")
        images.append(downsample_binary(native, image_size))
        labels.append(int(is_hs))
    stacked = np.stack(images)[:, None].astype(np.float32)
    return ArrayDataset(stacked, np.array(labels, dtype=np.int64))


def test_generalization_to_unseen_families(benchmark, iccad_benchmark):
    base = subsample(iccad_benchmark, n_train=600, n_test=10, seed=17)

    def run():
        bnn = BNNDetector(base_width=8, epochs=14, finetune_epochs=4, seed=0)
        bnn.fit(base.train, np.random.default_rng(0))
        matcher = PatternMatchDetector(max_distance_fraction=0.05)
        matcher.fit(base.train, np.random.default_rng(0))
        unseen = _unseen_dataset(40, 120, iccad_benchmark.image_size, seed=23)
        return {
            "bnn_seen": bnn.evaluate(iccad_benchmark.test),
            "bnn_unseen": bnn.evaluate(unseen),
            "matcher_seen": matcher.evaluate(iccad_benchmark.test),
            "matcher_unseen": matcher.evaluate(unseen),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def row(label, metrics):
        negatives = metrics.confusion.tn + metrics.confusion.fp
        return {
            "Detector / distribution": label,
            "Accu (%)": round(100 * metrics.accuracy, 1),
            "FA rate (%)": round(
                100 * metrics.false_alarm / max(negatives, 1), 1
            ),
        }

    rows = [
        row("pattern matching, seen", results["matcher_seen"]),
        row("pattern matching, UNSEEN", results["matcher_unseen"]),
        row("BNN (ours), seen", results["bnn_seen"]),
        row("BNN (ours), UNSEEN", results["bnn_unseen"]),
    ]
    publish("generalization", format_table(
        rows, title="Extension — generalization to unseen pattern families"
    ))
    # Section 1's argument, both halves:
    # the learned detector keeps meaningful recall on unseen families...
    assert results["bnn_unseen"].accuracy > 0.25
    assert results["bnn_unseen"].confusion.tp >= 5
    # ...and beats the matcher there by a wide margin
    assert results["bnn_unseen"].accuracy > (
        results["matcher_unseen"].accuracy + 0.15
    )
