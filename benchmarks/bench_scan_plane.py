"""Full-layout scan — plane-compiled engine vs per-window baseline.

The plane scan engine's claim: rasterizing the layout once and running
the stem fully-convolutionally amortizes everything the per-window path
repeats for every origin — geometry extraction (O(total rects) per
window), rasterization, cache-key hashing and the stem convolution —
while staying **bit-identical** to the per-window scan.

Measured here on a dense synthetic metal layer (pitch-16 wire grating,
horizontal straps and a contact farm — ~14k rectangles at the default
2048nm clip) scanned at window 128 / stride 64 through the serving
front door, so both paths pay their true deployment cost.

Asserted directions:

* plane-path windows/sec  >=  ``REPRO_BENCH_SCAN_MIN_SPEEDUP`` x the
  per-window path (default 3.0; CI quick mode lowers the bar because
  tiny layouts leave nothing to amortize);
* the two scan reports are **bit-identical** — same hits, same scores;
* the tiled lowering keeps the packed-column buffer bounded (peak
  tracked and published, must stay under 64 MiB).

Writes ``BENCH_scan.json`` at the repo root with the headline numbers.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.bench import format_table, write_bench_json
from repro.binary import bitpack
from repro.litho.geometry import Clip, Rect
from repro.models.bnn_resnet import build_bnn_resnet
from repro.serve import HotspotService, ScanRequest

from conftest import publish

REPO_ROOT = Path(__file__).resolve().parent.parent

WINDOW = 128
STRIDE = 64
IMAGE_SIZE = 128  # window px == image px: scale-1 rasters
WORKERS = 4


def scan_layout_size() -> int:
    """Layout side in nm (override for CI quick mode)."""
    return int(os.environ.get("REPRO_BENCH_SCAN_SIZE", "2048"))


def min_speedup() -> float:
    """Acceptance bar for plane/per-window windows-per-second."""
    return float(os.environ.get("REPRO_BENCH_SCAN_MIN_SPEEDUP", "3.0"))


def dense_layout(size: int, seed: int = 0) -> Clip:
    """Dense synthetic metal layer: grating + straps + contact farm."""
    rng = np.random.default_rng(seed)
    layout = Clip(size)
    for x in range(8, size, 16):  # pitch-16 vertical wires, segmented
        for seg in range(0, size, 128):
            if rng.random() < 0.85:
                layout.add(Rect(x, seg + 4, x + 7, seg + 120))
    for y in range(12, size, 32):  # sparser horizontal straps
        for seg in range(0, size, 256):
            if rng.random() < 0.6:
                layout.add(Rect(seg + 8, y, seg + 240, y + 6))
    for _ in range(size * 6):  # contact farm
        x0, y0 = rng.integers(0, size - 12, 2)
        layout.add(Rect(int(x0), int(y0), int(x0) + 8, int(y0) + 8))
    return layout


def _timed_scan(service, request):
    start = time.perf_counter()
    report = service.scan(request)
    return report, time.perf_counter() - start


def test_scan_plane_speedup():
    """Plane-compiled scan vs per-window scan through the service."""
    size = scan_layout_size()
    layout = dense_layout(size)
    model = build_bnn_resnet(
        (8, 16, 32, 64), scaling="xnor", seed=0, stem_stride=2
    )
    request = ScanRequest(layout, window=WINDOW, stride=STRIDE)

    with HotspotService.from_model(model, IMAGE_SIZE,
                                   workers=WORKERS) as service:
        service._plane_scale = lambda *args: None  # force per-window
        baseline, baseline_s = _timed_scan(service, request)

    # track the peak packed-column buffer while the plane path runs
    peak = {"bytes": 0}
    original = bitpack._pack_activation_columns

    def tracking(*args, **kwargs):
        cols = original(*args, **kwargs)
        peak["bytes"] = max(peak["bytes"], cols.nbytes)
        return cols

    bitpack._pack_activation_columns = tracking
    try:
        with HotspotService.from_model(model, IMAGE_SIZE,
                                       workers=WORKERS) as service:
            plane, plane_s = _timed_scan(service, request)
            stats = service.stats()
    finally:
        bitpack._pack_activation_columns = original

    windows = plane.windows_scanned
    baseline_wps = windows / baseline_s
    plane_wps = windows / plane_s
    speedup = plane_wps / baseline_wps
    peak_mib = peak["bytes"] / 2**20
    identical = plane.hits == baseline.hits

    publish("scan_plane", format_table(
        [{
            "Path": "per-window",
            "Wall clock (s)": round(baseline_s, 2),
            "Windows/sec": round(baseline_wps, 1),
            "Speedup": "1.0x",
        }, {
            "Path": "plane-compiled",
            "Wall clock (s)": round(plane_s, 2),
            "Windows/sec": round(plane_wps, 1),
            "Speedup": f"{speedup:.2f}x",
        }],
        title=(f"Full-layout scan — {size}nm clip, {len(layout.rects)} "
               f"rects, {windows} windows @ stride {STRIDE} "
               f"(bit-identical: {identical}, "
               f"peak cols buffer {peak_mib:.1f} MiB)"),
    ))

    write_bench_json(REPO_ROOT / "BENCH_scan.json", {
        "layout_size_nm": size,
        "rects": len(layout.rects),
        "window": WINDOW,
        "stride": STRIDE,
        "image_size": IMAGE_SIZE,
        "workers": WORKERS,
        "windows": windows,
        "per_window_s": round(baseline_s, 3),
        "plane_s": round(plane_s, 3),
        "per_window_wps": round(baseline_wps, 1),
        "plane_wps": round(plane_wps, 1),
        "speedup": round(speedup, 2),
        "identical": identical,
        "peak_cols_mib": round(peak_mib, 2),
    })

    # the plane path is a silent drop-in: reports must be bit-identical
    assert identical
    assert plane.windows_scanned == baseline.windows_scanned
    assert stats["plane_scan_requests_total"] == 1
    # the tiled lowering keeps the column buffer bounded
    assert peak_mib < 64
    # the acceptance bar (env-lowered in CI quick mode)
    assert speedup >= min_speedup()
