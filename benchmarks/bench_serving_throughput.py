"""Serving throughput — single-request latency vs micro-batched service.

The serving layer's claim: wrapping the packed XNOR/popcount engine in
the micro-batching service turns the per-request deployment story of
the paper into real throughput.  Measured here on the shared synthetic
benchmark's test clips, four configurations (float/packed x
single/batched) over the same request set, plus the scan path's raster
cache.

Asserted directions:

* batched packed throughput  >=  3x single-request float throughput
  (the acceptance bar; in practice it is far higher);
* batched and unbatched packed predictions are **bit-identical** —
  micro-batching is plumbing, not a numerics change;
* the sliding-window scan's raster cache converts repeated geometry
  into hits (hit rate > 0 on a layout with repeated cells).
"""

import os
from pathlib import Path

import numpy as np

from repro.bench import format_table, write_bench_json
from repro.detect import BNNDetector
from repro.litho.geometry import Clip, Rect
from repro.serve import (
    HotspotService,
    ScanRequest,
    measure_cluster_serving,
    measure_serving,
    serving_table_rows,
)

from conftest import publish, subsample

REPO_ROOT = Path(__file__).resolve().parent.parent


def _trained_model(benchmark, epochs):
    detector = BNNDetector(base_width=8, epochs=min(epochs, 4),
                           finetune_epochs=0, packed=False, seed=0)
    detector.fit(benchmark.train, np.random.default_rng(0))
    return detector.model


def test_serving_throughput(iccad_benchmark, epochs, benchmark):
    """Single-request vs batched serving, float vs packed backends."""
    bench = subsample(iccad_benchmark, n_train=160, n_test=128)
    model = _trained_model(bench, epochs)
    images = bench.test.images
    if images.ndim == 4:
        images = np.squeeze(images, axis=1)

    results = benchmark.pedantic(
        lambda: measure_serving(model, bench.image_size, images,
                                max_batch=64, max_wait_ms=2.0),
        rounds=1, iterations=1,
    )
    speedup = (results["batched-packed"].clips_per_sec
               / results["single-float"].clips_per_sec)
    publish("serving_throughput", format_table(
        serving_table_rows(results),
        title=(f"Serving throughput — {len(images)} clips "
               f"@{bench.image_size}px (batched packed vs single float "
               f"{speedup:.1f}x)"),
    ))

    write_bench_json(REPO_ROOT / "BENCH_serving.json", {
        "clips": len(images),
        "image_size": bench.image_size,
        "max_batch": 64,
        "max_wait_ms": 2.0,
        "speedup_batched_packed_vs_single_float": round(speedup, 2),
        "mean_batch_size": round(
            results["batched-packed"].mean_batch_size, 2
        ),
        "configs": {
            name: {
                "clips_per_sec": round(result.clips_per_sec, 1),
                "seconds": round(result.seconds, 4),
                "mean_batch_size": round(result.mean_batch_size, 2),
            }
            for name, result in results.items()
        },
    })

    # the acceptance bar: batching + packed backend >= 3x the naive path
    assert speedup >= 3.0
    # micro-batching never changes what the packed engine predicts
    assert np.array_equal(results["batched-packed"].labels,
                          results["single-packed"].labels)
    np.testing.assert_array_equal(results["batched-packed"].scores,
                                  results["single-packed"].scores)
    # the batcher actually coalesced (not a degenerate one-clip loop)
    assert results["batched-packed"].mean_batch_size > 4


def test_serving_scaleout(iccad_benchmark, epochs, benchmark):
    """Multi-process cluster vs single-process service, saturated load.

    Records requests/sec for the best single-process configuration and
    for a supervised worker fleet on the same request set.  The hard
    assertion is the determinism invariant (cluster scores bit-identical
    to single-process); the speedup assertion is gated by
    ``REPRO_BENCH_MIN_SCALEOUT`` because a 1-CPU runner pays the fleet's
    process/shared-memory overhead without gaining parallel compute.
    """
    bench = subsample(iccad_benchmark, n_train=160, n_test=128)
    model = _trained_model(bench, epochs)
    images = bench.test.images
    if images.ndim == 4:
        images = np.squeeze(images, axis=1)

    cpus = os.cpu_count() or 1
    processes = 2 if cpus < 4 else 4  # reduced fleet on small runners
    results = benchmark.pedantic(
        lambda: measure_cluster_serving(model, bench.image_size, images,
                                        processes=processes, max_batch=64),
        rounds=1, iterations=1,
    )
    solo = results["single-process"]
    fleet = results[f"cluster-{processes}"]
    scaleout = fleet.clips_per_sec / solo.clips_per_sec

    publish("serving_scaleout", format_table(
        [{
            "Configuration": result.mode,
            "Clips": result.clips,
            "Time (s)": round(result.seconds, 3),
            "Clips/s": round(result.clips_per_sec, 1),
            "vs 1 process": round(
                result.clips_per_sec / solo.clips_per_sec, 2
            ),
        } for result in (solo, fleet)],
        title=(f"Scale-out — {processes} worker processes on "
               f"{cpus} CPU(s): {scaleout:.2f}x"),
    ))

    write_bench_json(REPO_ROOT / "BENCH_serve_scaleout.json", {
        "clips": len(images),
        "image_size": bench.image_size,
        "processes": processes,
        "max_batch": 64,
        "single_process_clips_per_sec": round(solo.clips_per_sec, 1),
        "cluster_clips_per_sec": round(fleet.clips_per_sec, 1),
        "scaleout_vs_single_process": round(scaleout, 3),
        "predictions_bit_identical": bool(
            np.array_equal(solo.scores, fleet.scores)
        ),
    })

    # the invariant that makes scale-out safe: which process serves a
    # clip never changes its score
    np.testing.assert_array_equal(fleet.scores, solo.scores)
    assert np.array_equal(fleet.labels, solo.labels)
    # speedup bar is environment-gated: meaningless on a 1-CPU runner
    min_scaleout = float(os.environ.get("REPRO_BENCH_MIN_SCALEOUT", "0"))
    assert scaleout >= min_scaleout


def test_scan_cache_effectiveness(iccad_benchmark, epochs):
    """Full-layout sliding-window scan: raster cache and determinism."""
    bench = subsample(iccad_benchmark, n_train=120, n_test=32)
    model = _trained_model(bench, epochs)

    # a layout of repeated cells: gratings stamped on a coarse grid
    layout = Clip(8192)
    for gx in range(0, 8192, 1024):
        for gy in range(0, 8192, 2048):
            for wire in range(4):
                x = gx + 100 + wire * 220
                layout.add(Rect(x, gy + 100, x + 90, gy + 1000))
    request = ScanRequest(layout, window=1024, stride=512)

    # force the per-window path: this test exercises the raster cache,
    # which the plane-compiled scan (benchmarked in bench_scan_plane.py)
    # bypasses entirely
    with HotspotService.from_model(model, bench.image_size,
                                   workers=4) as service:
        service._plane_scale = lambda *args: None
        report = service.scan(request)
        stats = service.stats()
    with HotspotService.from_model(model, bench.image_size,
                                   workers=1) as service:
        serial = service.scan(request)
        plane_stats = service.stats()

    publish("serving_scan_cache", format_table(
        [{
            "Windows": report.windows_scanned,
            "Hotspot windows": len(report.hits),
            "Cache hit rate": stats["cache"]["hit_rate"],
            "Scan time (s)": round(report.latency_ms / 1e3, 3),
        }],
        title="Scan mode — sliding-window sweep with raster cache",
    ))

    assert report.windows_scanned == 225  # 15 x 15 origins
    # repeated cells must hit the raster cache
    assert stats["cache"]["hit_rate"] > 0.3
    # the aligned geometry routes the default service down the
    # plane-compiled path, and neither worker count nor the engine
    # path changes the report
    assert plane_stats["plane_scan_requests_total"] == 1
    assert serial.hits == report.hits
