"""Table 2 — ICCAD-2012 merged benchmark statistics.

Regenerates the benchmark's statistics table at the configured scale and
checks the generated dataset preserves the paper's class imbalance.
The pytest-benchmark measurements time the generation pipeline
(pattern synthesis + lithography simulation + labelling).
"""

import numpy as np
import pytest

from repro.bench import bench_scale, format_table
from repro.litho import PAPER_TABLE2, generate_hotspot_dataset

from conftest import publish


def test_table2_statistics(benchmark, iccad_benchmark):
    """Regenerate Table 2: paper counts next to the scaled counts."""
    stats = iccad_benchmark.stats
    scale = bench_scale()

    def build_rows():
        return [
            {
                "Benchmark": "ICCAD (paper, Table 2)",
                "#Train HS": PAPER_TABLE2["train_hs"],
                "#Train NHS": PAPER_TABLE2["train_nhs"],
                "#Test HS": PAPER_TABLE2["test_hs"],
                "#Test NHS": PAPER_TABLE2["test_nhs"],
            },
            {
                "Benchmark": f"Synthetic (scale {scale:g})",
                "#Train HS": stats.train_hs,
                "#Train NHS": stats.train_nhs,
                "#Test HS": stats.test_hs,
                "#Test NHS": stats.test_nhs,
            },
        ]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    publish("table2_dataset",
            format_table(rows, title="Table 2 — benchmark statistics"))

    # the defining property: the paper's class imbalance is preserved
    paper_train_ratio = PAPER_TABLE2["train_hs"] / PAPER_TABLE2["train_nhs"]
    assert stats.train_hs / stats.train_nhs == pytest.approx(
        paper_train_ratio, rel=0.15
    )
    paper_test_ratio = PAPER_TABLE2["test_hs"] / PAPER_TABLE2["test_nhs"]
    assert stats.test_hs / stats.test_nhs == pytest.approx(
        paper_test_ratio, rel=0.15
    )
    # counts in the datasets match the declared statistics
    assert int(iccad_benchmark.train.labels.sum()) == stats.train_hs
    assert int(iccad_benchmark.test.labels.sum()) == stats.test_hs


def test_benchmark_generation_throughput(benchmark):
    """Time the clip-synthesis + litho-labelling pipeline (8 clips)."""
    counter = iter(range(10_000))

    def generate():
        rng = np.random.default_rng(next(counter))
        return generate_hotspot_dataset(2, 6, rng, image_size=32)

    dataset = benchmark.pedantic(generate, rounds=3, iterations=1)
    assert len(dataset) == 8
