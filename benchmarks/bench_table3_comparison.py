"""Table 3 — performance comparison with the state-of-the-art detectors.

Trains and evaluates all four methods on the shared scaled benchmark
and prints our measured Table 3 next to the paper's.  Absolute numbers
differ (synthetic data, CPU substrate, scaled counts); the *shape* that
must hold is the accuracy ordering

    SPIE'15  <  ICCAD'16  <=  DAC'17  <  Ours (BNN)

with ICCAD'16 producing the most false alarms, as in the paper.
"""

import numpy as np

from repro.bench import format_table, run_detectors
from repro.detect import (
    BNNDetector,
    DAC17Detector,
    ICCAD16Detector,
    SPIE15Detector,
)

from conftest import publish

#: Table 3 of the paper, for side-by-side reporting.
PAPER_TABLE3 = [
    {"Method": "SPIE'15 [11]", "FA#": 2919, "Runtime (s)": 2672,
     "ODST (s)": 53112, "Accu (%)": 84.2},
    {"Method": "ICCAD'16 [14]", "FA#": 4497, "Runtime (s)": 1052,
     "ODST (s)": 70628, "Accu (%)": 97.7},
    {"Method": "DAC'17 [16]", "FA#": 3413, "Runtime (s)": 482,
     "ODST (s)": 59402, "Accu (%)": 98.2},
    {"Method": "Ours", "FA#": 2787, "Runtime (s)": 60,
     "ODST (s)": 52970, "Accu (%)": 99.2},
]


def reference_detectors(epochs: int):
    """The four Table 3 configurations (each at its published
    operating point: accuracy-first with tolerated false alarms)."""
    finetune = max(2, epochs // 3)
    return [
        SPIE15Detector(grid=8, n_estimators=60, max_depth=2, threshold=-0.8),
        ICCAD16Detector(n_selected=96, epochs=epochs, threshold=0.3),
        DAC17Detector(block=4, coefficients=12, stage_widths=(24, 48),
                      epochs=epochs, finetune_epochs=finetune, epsilon=0.3),
        BNNDetector(epochs=epochs, finetune_epochs=finetune, base_width=12,
                    scaling="xnor", epsilon=0.2, target_fa_rate=0.35),
    ]


def test_table3_comparison(benchmark, iccad_benchmark, epochs):
    """Regenerate Table 3 (the paper's headline comparison)."""
    detectors = reference_detectors(max(epochs, 12))

    def run():
        return run_detectors(detectors, iccad_benchmark, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [metrics.row() for metrics in results]
    text = "\n\n".join([
        format_table(PAPER_TABLE3, title="Table 3 (paper, ICCAD-2012 full scale)"),
        format_table(rows, title="Table 3 (ours, synthetic benchmark at scale)"),
    ])
    publish("table3_comparison", text)

    accuracy = {metrics.name: metrics.accuracy for metrics in results}
    false_alarm = {metrics.name: metrics.false_alarm for metrics in results}

    # Shape check 1: accuracy ordering matches the paper.
    assert accuracy["Ours (BNN)"] > accuracy["DAC'17 (CNN)"]
    assert accuracy["DAC'17 (CNN)"] > accuracy["SPIE'15 (AdaBoost)"]
    assert accuracy["ICCAD'16 (Online)"] > accuracy["SPIE'15 (AdaBoost)"]

    # Shape check 2: the online baseline pays with the most false alarms.
    assert false_alarm["ICCAD'16 (Online)"] == max(false_alarm.values())

    # Shape check 3: every learned method beats chance comfortably.
    assert min(accuracy.values()) > 0.3
