"""Extension — the full detector zoo on one benchmark.

Beyond the paper's four Table 3 methods, the library implements the
rest of the related-work spectrum surveyed in Sections 1-2: pattern
matching ([1]-[5]'s class) and SVMs ([8][9][12]'s class).  This
benchmark runs all six detector families on the shared benchmark, the
complete picture Table 3 samples from.  The asserted shape: the deep
detectors beat the shallow learners, which beat pattern matching, on
detection accuracy.
"""

from repro.bench import format_table, run_detectors
from repro.detect import (
    BNNDetector,
    DAC17Detector,
    ICCAD16Detector,
    PatternMatchDetector,
    SPIE15Detector,
    SVMDetector,
)

from conftest import publish


def test_table3_extended(benchmark, iccad_benchmark, epochs):
    epochs = max(epochs, 12)
    finetune = max(2, epochs // 3)
    detectors = [
        PatternMatchDetector(max_distance_fraction=0.05),
        SVMDetector(kernel="linear", grid=8, epochs=epochs),
        SPIE15Detector(grid=8, n_estimators=60, max_depth=2, threshold=-0.8),
        ICCAD16Detector(n_selected=96, epochs=epochs, threshold=0.3),
        DAC17Detector(block=4, coefficients=12, stage_widths=(24, 48),
                      epochs=epochs, finetune_epochs=finetune, epsilon=0.3),
        BNNDetector(epochs=epochs, finetune_epochs=finetune, base_width=12,
                    scaling="xnor", epsilon=0.2, target_fa_rate=0.35),
    ]

    def run():
        return run_detectors(detectors, iccad_benchmark, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [metrics.row() for metrics in results]
    publish("table3_extended", format_table(
        rows, title="Extension — all six detector families"
    ))

    accuracy = {metrics.name: metrics.accuracy for metrics in results}
    # the related-work narrative: deep > shallow-learned > matching
    assert accuracy["Ours (BNN)"] > accuracy["SVM (density)"]
    assert accuracy["DAC'17 (CNN)"] > accuracy["Pattern matching"]
    assert accuracy["Ours (BNN)"] > accuracy["Pattern matching"]