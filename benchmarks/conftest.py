"""Shared fixtures for the benchmark suite.

Every benchmark that needs the ICCAD-2012-shaped dataset pulls the same
cached instance (see ``repro.bench.harness`` for the ``REPRO_BENCH_*``
environment knobs).  Tables are printed to stdout *and* written under
``benchmarks/results/`` so a full run leaves reviewable artifacts.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_epochs, load_benchmark
from repro.litho import HotspotBenchmark
from repro.nn import ArrayDataset

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def iccad_benchmark() -> HotspotBenchmark:
    """The shared scaled ICCAD-2012 benchmark (cached on disk)."""
    return load_benchmark()


@pytest.fixture(scope="session")
def epochs() -> int:
    """Neural-detector epochs (env ``REPRO_BENCH_EPOCHS``)."""
    return bench_epochs()


def subsample(benchmark: HotspotBenchmark, n_train: int, n_test: int,
              seed: int = 0) -> HotspotBenchmark:
    """Stratified subsample for the cheaper ablation benchmarks."""
    rng = np.random.default_rng(seed)

    def pick(dataset: ArrayDataset, n: int) -> ArrayDataset:
        if n >= len(dataset):
            return dataset
        labels = dataset.labels
        pos = np.flatnonzero(labels == 1)
        neg = np.flatnonzero(labels == 0)
        frac = n / len(dataset)
        n_pos = max(4, int(round(len(pos) * frac)))
        idx = np.concatenate([
            rng.choice(pos, size=min(n_pos, len(pos)), replace=False),
            rng.choice(neg, size=min(n - n_pos, len(neg)), replace=False),
        ])
        return dataset.subset(rng.permutation(idx))

    return HotspotBenchmark(
        train=pick(benchmark.train, n_train),
        test=pick(benchmark.test, n_test),
        stats=benchmark.stats,
        image_size=benchmark.image_size,
    )


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
