"""Compare all four hotspot detectors on one benchmark (mini Table 3).

Trains the SPIE'15 AdaBoost, ICCAD'16 online-learning, DAC'17 CNN and
this paper's BNN detectors on the same synthetic benchmark and prints a
Table-3-style comparison.  A scaled-down version of
``benchmarks/bench_table3_comparison.py`` that finishes in a couple of
minutes; the full benchmark uses larger data and longer schedules.

Usage::

    python examples/compare_detectors.py
"""

from repro.bench import bar_chart, format_table, load_benchmark, run_detectors
from repro.detect import (
    BNNDetector,
    DAC17Detector,
    ICCAD16Detector,
    SPIE15Detector,
)


def main() -> None:
    print("Loading (or generating) the benchmark — cached under "
          "~/.cache/repro-hotspot ...")
    benchmark = load_benchmark(scale=0.02, image_size=32)
    print(f"  {benchmark.stats}")

    detectors = [
        SPIE15Detector(grid=8, n_estimators=40, threshold=-0.8),
        ICCAD16Detector(n_selected=64, epochs=10, threshold=0.3),
        DAC17Detector(block=4, coefficients=8, epochs=8, finetune_epochs=3),
        BNNDetector(base_width=8, epochs=8, finetune_epochs=3, stem_stride=1),
    ]
    print("\nTraining and evaluating four detectors "
          "(AdaBoost, online, CNN, BNN)...")
    results = run_detectors(detectors, benchmark, seed=0)

    rows = [metrics.row() for metrics in results]
    print("\n" + format_table(rows, title="Mini Table 3 (synthetic benchmark)"))
    print("\n" + bar_chart(
        {metrics.name: round(100 * metrics.accuracy, 1) for metrics in results},
        unit="%", title="Detection accuracy (hotspot recall)",
    ))
    print("\nColumns follow the paper: FA# = false alarms, Runtime = model "
          "evaluation time,\nODST = (FA+TP) * 10 s of lithography simulation "
          "+ runtime, Accu = hotspot recall.")


if __name__ == "__main__":
    main()
