"""Deploy a trained BNN with the bit-packed XNOR/popcount engine.

Shows the deployment path the paper's speed claim rests on:

1. train the binarized network (float simulation of binarization);
2. checkpoint it to ``.npz`` and reload into a fresh model;
3. compile the model to :class:`repro.binary.PackedBNN` — weights are
   bit-packed once, convolutions run as XNOR + popcount on 64-bit words;
4. verify packed predictions match the float simulation bit for bit,
   and time both paths.

Usage::

    python examples/deploy_packed_model.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.binary import PackedBNN
from repro.detect import BNNDetector
from repro.features.downsample import to_network_input
from repro.litho import generate_iccad2012_like
from repro.nn import load_model, predict_logits, save_model


def main() -> None:
    print("Generating data and training a small BNN...")
    benchmark = generate_iccad2012_like(scale=0.015, image_size=32, seed=3)
    detector = BNNDetector(base_width=8, epochs=8, finetune_epochs=2, seed=0,
                           stem_stride=1)
    detector.fit(benchmark.train, np.random.default_rng(0))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bnn_hotspot.npz"
        save_model(detector.model, path)
        print(f"Checkpointed {detector.model.num_parameters()} parameters "
              f"to {path.name} ({path.stat().st_size // 1024} KiB).")

        fresh = BNNDetector(base_width=8, seed=0, stem_stride=1)
        fresh.model = fresh._build(32)
        load_model(fresh.model, path)
        print("Reloaded the checkpoint into a fresh model.")

    engine = PackedBNN(fresh.model)
    images = to_network_input(benchmark.test.images)

    start = time.perf_counter()
    sim_logits = predict_logits(fresh.model, images)
    sim_time = time.perf_counter() - start

    start = time.perf_counter()
    packed_logits = engine.predict_logits(images)
    packed_time = time.perf_counter() - start

    agree = (sim_logits.argmax(1) == packed_logits.argmax(1)).mean()
    print(f"\nFloat simulation: {sim_time:.2f} s for {len(images)} clips")
    print(f"Packed engine:    {packed_time:.2f} s "
          f"({sim_time / packed_time:.1f}x faster)")
    print(f"Prediction agreement: {agree:.1%} (must be 100%)")
    assert agree == 1.0


if __name__ == "__main__":
    main()
