"""Lithography playground: draw layout clips and watch them print.

Walks through the simulation substrate that labels the benchmark:
rasterise a clip, compute its aerial image, apply the resist threshold
at several process corners, and read the printability report.  Renders
everything as ASCII art — no plotting dependencies.

Usage::

    python examples/litho_playground.py
"""

import numpy as np

from repro.litho import (
    Clip,
    LithographySimulator,
    OpticalModel,
    ProcessCorner,
    Rect,
    rasterize,
)

SHADES = " .:-=+*#%@"


def ascii_image(image: np.ndarray, width: int = 48) -> str:
    """Render a [0, 1] image as ASCII (top row printed first)."""
    step = max(1, image.shape[0] // width)
    small = image[::step, ::step]
    clipped = np.clip(small, 0.0, 1.0)
    rows = []
    for row in clipped[::-1]:  # row 0 is the clip's bottom
        rows.append("".join(SHADES[int(v * (len(SHADES) - 1))] for v in row))
    return "\n".join(rows)


def show_case(name: str, clip: Clip) -> None:
    sim = LithographySimulator()
    pixel_nm = clip.size / sim.resolution_px
    mask = rasterize(clip, sim.resolution_px, mode="area")
    aerial = OpticalModel().aerial_image(mask, pixel_nm)
    printed = sim.simulate_corner(mask, pixel_nm, ProcessCorner(1.0, 1.0))
    report = sim.analyze(clip)

    print(f"\n=== {name} ===")
    print(f"drawn geometry ({len(clip)} rectangles, "
          f"density {clip.density():.2f}):")
    print(ascii_image(rasterize(clip, sim.resolution_px, mode="binary")))
    print("\naerial image (intensity):")
    print(ascii_image(aerial))
    print("\nprinted contour at nominal dose/focus:")
    print(ascii_image(printed.astype(float)))
    verdict = "HOTSPOT" if report.is_hotspot(sim.epe_tolerance_nm) else "clean"
    print(f"\nworst-corner report: max EPE {report.max_epe_nm:.0f} nm, "
          f"bridged={report.bridged}, broken={report.broken}  ->  {verdict}")


def main() -> None:
    # a comfortable isolated wire: prints cleanly
    safe = Clip(1024, [Rect(400, 100, 620, 900)])
    show_case("wide isolated wire (safe)", safe)

    # two wires at sub-minimum spacing: bridges under over-exposure
    bridging = Clip(1024, [
        Rect(400, 100, 520, 900),
        Rect(550, 100, 670, 900),
    ])
    show_case("tight parallel wires (bridging hotspot)", bridging)

    # a sub-resolution contact: vanishes at the defocus corner
    via = Clip(1024, [Rect(490, 490, 545, 545)])
    show_case("tiny isolated via (vanishing hotspot)", via)


if __name__ == "__main__":
    main()
