"""Optical proximity correction on synthetic patterns.

Demonstrates the substrate's OPC module: take patterns that fail as
drawn, correct their masks (rule-based bias/extension, then the
model-based iterative corrector), and watch the printability reports
improve.  This mirrors the production context of the ICCAD 2012 data,
whose layouts were OPC'd before the lithography that labelled them.

Usage::

    python examples/opc_correction.py
"""

import numpy as np

from repro.bench import format_table
from repro.litho import (
    Clip,
    LithographySimulator,
    Rect,
    rule_based_opc,
    sample_clip,
)
from repro.litho.epe import analyze_contours
from repro.litho.opc import IterativeOPC
from repro.litho.raster import rasterize
from repro.litho.resist import nominal_corner


def nominal_report(simulator, target_clip, mask_clip):
    pixel_nm = target_clip.size / simulator.resolution_px
    printed = simulator.simulate_corner(
        rasterize(mask_clip, simulator.resolution_px, "area"),
        pixel_nm, nominal_corner(),
    )
    target = rasterize(target_clip, simulator.resolution_px,
                       "binary").astype(bool)
    return analyze_contours(target, printed, pixel_nm)


def main() -> None:
    simulator = LithographySimulator()
    cases = {
        "narrow wire": Clip(1024, [Rect(470, 100, 555, 900)]),
        "vanishing via": Clip(1024, [Rect(485, 485, 550, 550)]),
        "wire pair": Clip(1024, [Rect(330, 100, 430, 900),
                                 Rect(560, 100, 660, 900)]),
    }
    opc = IterativeOPC(simulator, iterations=4)
    rows = []
    for name, clip in cases.items():
        raw = nominal_report(simulator, clip, clip)
        ruled = nominal_report(simulator, clip, rule_based_opc(clip, bias=14))
        model = nominal_report(simulator, clip, opc.correct(clip))
        rows.append({
            "Pattern": name,
            "Drawn EPE/broken": f"{raw.max_epe_nm:.0f}nm/{raw.broken}",
            "Rule-based": f"{ruled.max_epe_nm:.0f}nm/{ruled.broken}",
            "Model-based": f"{model.max_epe_nm:.0f}nm/{model.broken}",
        })
    print(format_table(rows, title="OPC at the nominal condition "
                                   "(EPE / feature broken)"))

    print("\nHotspot rate over a 30-clip random sample:")
    rng = np.random.default_rng(11)
    clips = [sample_clip(rng) for _ in range(30)]
    raw_rate = sum(simulator.is_hotspot(c) for c in clips)
    corrected = 0
    for clip in clips:
        mask = rule_based_opc(clip)
        pixel_nm = clip.size / simulator.resolution_px
        mask_image = rasterize(mask, simulator.resolution_px, "area")
        target = rasterize(clip, simulator.resolution_px, "binary").astype(bool)
        failed = False
        for corner in simulator.corners:
            printed = simulator.simulate_corner(mask_image, pixel_nm, corner)
            report = analyze_contours(target, printed, pixel_nm)
            if report.is_hotspot(simulator.epe_tolerance_nm):
                failed = True
                break
        corrected += failed
    print(f"  drawn masks:      {raw_rate}/30 hotspots")
    print(f"  rule-based OPC:   {corrected}/30 hotspots")


if __name__ == "__main__":
    main()
