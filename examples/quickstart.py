"""Quickstart: train the paper's BNN hotspot detector end to end.

Generates a small ICCAD-2012-shaped benchmark (synthetic layout clips
labelled by lithography simulation), trains the binarized residual
network with biased learning, and evaluates it with the contest
metrics.  Runs in about a minute on a laptop CPU.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.bench import format_table
from repro.detect import BNNDetector
from repro.litho import generate_iccad2012_like


def main() -> None:
    print("Generating a synthetic ICCAD-2012-shaped benchmark "
          "(lithography simulation labels every clip)...")
    benchmark = generate_iccad2012_like(scale=0.02, image_size=32, seed=1)
    stats = benchmark.stats
    print(f"  train: {stats.train_hs} hotspots / {stats.train_nhs} non-hotspots")
    print(f"  test:  {stats.test_hs} hotspots / {stats.test_nhs} non-hotspots")

    print("\nTraining the binarized residual network "
          "(Algorithm 1 + biased fine-tuning)...")
    detector = BNNDetector(
        base_width=8,       # filter counts double per stage: 8, 16, 32
        epochs=10,
        finetune_epochs=4,  # biased learning phase, eps = 0.2
        seed=0,
    )
    metrics = detector.fit_evaluate(
        benchmark.train, benchmark.test, np.random.default_rng(0)
    )

    print("\nResults (contest metrics — accuracy is hotspot recall):")
    print(format_table([metrics.row()]))
    print("\nPredictions came from the bit-packed XNOR/popcount engine; "
          "detector.engine holds the compiled network.")


if __name__ == "__main__":
    main()
