"""Train the paper's exact network configuration, step by step.

Reproduces Section 3.4 faithfully — the 12-layer binarized residual
network of Figure 2 on 128x128 down-sampled binary clip images, Xavier
initialisation, NAdam, random horizontal/vertical flips, plateau-decayed
learning rate, weight clipping after every step, and the biased
fine-tune with ``eps = 0.2`` — on a small synthetic dataset so the run
finishes in a few minutes on a CPU.  For the scaled benchmark runs the
higher-level :class:`repro.detect.BNNDetector` wraps all of this.

Usage::

    python examples/train_paper_network.py
"""

import numpy as np

from repro.binary import PackedBNN, clip_binary_weights
from repro.detect import biased_targets
from repro.features.downsample import to_network_input
from repro.litho import generate_hotspot_dataset
from repro.models import bnn_resnet12, count_network_layers
from repro.nn import (
    ArrayDataset,
    DataLoader,
    NAdam,
    RandomFlip,
    ReduceLROnPlateau,
    Trainer,
    predict_logits,
)


def main() -> None:
    rng = np.random.default_rng(0)

    print("1. Data: synthetic clips at the paper's l_s = 128 resolution...")
    train = generate_hotspot_dataset(40, 80, rng, image_size=128)
    test = generate_hotspot_dataset(25, 50, np.random.default_rng(9),
                                    image_size=128)
    train_x = to_network_input(train.images)   # {0,1} -> {-1,+1}
    test_x = to_network_input(test.images)

    print("2. Model: the 12-layer binarized residual network (Figure 2)...")
    model = bnn_resnet12(seed=0, base_width=4, scaling="channelwise")
    print(f"   layers: {count_network_layers(model)}, "
          f"parameters: {model.num_parameters()}")

    print("3. Training (Algorithm 1): NAdam + plateau decay + flips + "
          "weight clipping...")
    optimizer = NAdam(model.parameters(), lr=0.01)
    scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
    trainer = Trainer(model, optimizer, scheduler=scheduler,
                      post_step=lambda: clip_binary_weights(model))
    loader = DataLoader(
        ArrayDataset(train_x, train.labels), batch_size=16,
        rng=np.random.default_rng(1),
        augment=RandomFlip(np.random.default_rng(2)),
    )
    val_loader = DataLoader(ArrayDataset(test_x, test.labels), 32,
                            shuffle=False)
    trainer.fit(loader, epochs=6, val_loader=val_loader, verbose=True)

    print("4. Biased fine-tune (Section 3.4.3): non-hotspot targets "
          "softened to [0.8, 0.2]...")
    soft = ArrayDataset(train_x, biased_targets(train.labels, epsilon=0.2))
    optimizer.lr = 0.001
    finetune_loader = DataLoader(soft, batch_size=16,
                                 rng=np.random.default_rng(3),
                                 augment=RandomFlip(np.random.default_rng(4)))
    trainer.fit(finetune_loader, epochs=2, val_loader=val_loader, verbose=True)

    print("5. Deploy: compile to the bit-packed popcount engine...")
    engine = PackedBNN(model)
    predictions = engine.predict_logits(test_x).argmax(1)
    sim_predictions = predict_logits(model, test_x).argmax(1)
    assert (predictions == sim_predictions).all()

    labels = test.labels
    tp = int(((predictions == 1) & (labels == 1)).sum())
    fp = int(((predictions == 1) & (labels == 0)).sum())
    fn = int(((predictions == 0) & (labels == 1)).sum())
    print(f"\nTest set: accuracy (hotspot recall) = {tp / (tp + fn):.2f}, "
          f"false alarms = {fp} / {(labels == 0).sum()}")


if __name__ == "__main__":
    main()
