"""repro — reproduction of "Efficient Layout Hotspot Detection via
Binarized Residual Neural Network" (Jiang et al., DAC 2019).

Subpackages
-----------
``repro.nn``
    From-scratch NumPy deep-learning framework (layers, optimizers,
    training loop) used as the execution substrate.
``repro.binary``
    Binarization math (Eq. 4-15), binary layers, and the bit-packed
    XNOR/popcount inference engine.
``repro.models``
    The 12-layer binarized residual network (Figure 2) and the float
    baselines.
``repro.litho``
    Lithography substrate: geometry, aerial-image simulation,
    printability analysis, and ICCAD-2012-shaped benchmark synthesis.
``repro.features``
    Down-sampled-image preprocessing (Section 3.4.1) plus the DCT /
    CCS / density encodings of the baseline detectors.
``repro.ml``
    Classical ML (CART, AdaBoost, online logistic) for the baselines.
``repro.detect``
    Public hotspot-detection API: the BNN detector, three baselines,
    and the contest metrics (accuracy, false alarm, ODST).
``repro.bench``
    Harness regenerating every table and figure of the paper.
``repro.serve``
    Batched, multi-worker inference service layer over the packed
    engine (model registry, micro-batching, scan workers, metrics).

Quickstart
----------
>>> from repro.bench import load_benchmark
>>> from repro.detect import BNNDetector
>>> import numpy as np
>>> benchmark = load_benchmark(scale=0.01, image_size=32)
>>> detector = BNNDetector(epochs=4)
>>> metrics = detector.fit_evaluate(
...     benchmark.train, benchmark.test, np.random.default_rng(0))
>>> print(metrics.row())
"""

from . import bench, binary, detect, features, litho, ml, models, nn, serve

__version__ = "1.0.0"

__all__ = [
    "bench",
    "binary",
    "detect",
    "features",
    "litho",
    "ml",
    "models",
    "nn",
    "serve",
    "__version__",
]
