"""Benchmark harness: cached dataset loading, detector evaluation and
paper-style table formatting."""

from .harness import (
    bench_envelope,
    bench_epochs,
    bench_image_size,
    bench_scale,
    cache_dir,
    load_benchmark,
    run_detectors,
    write_bench_json,
)
from .plots import ascii_roc, bar_chart
from .stats import SeedSummary, bootstrap_ci, run_over_seeds, summarize_values
from .tables import format_table
from .timing import Stopwatch, stopwatch

__all__ = [
    "bench_envelope",
    "bench_epochs",
    "bench_image_size",
    "bench_scale",
    "write_bench_json",
    "cache_dir",
    "load_benchmark",
    "run_detectors",
    "format_table",
    "ascii_roc",
    "bar_chart",
    "SeedSummary",
    "bootstrap_ci",
    "run_over_seeds",
    "summarize_values",
    "Stopwatch",
    "stopwatch",
]
