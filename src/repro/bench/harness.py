"""Experiment harness: cached benchmark data and detector evaluation.

Regenerating the synthetic ICCAD-2012-shaped benchmark costs tens of
seconds, so :func:`load_benchmark` caches generated datasets as ``.npz``
under a cache directory and every benchmark script shares them.

Default configuration (small enough for a single-core CI box) can be
overridden with environment variables:

* ``REPRO_BENCH_SCALE`` — Table 2 scale factor (default 0.05);
* ``REPRO_BENCH_IMAGE`` — dataset image side (default 64);
* ``REPRO_BENCH_EPOCHS`` — neural-detector training epochs (default 20);
* ``REPRO_CACHE_DIR`` — cache location (default ``~/.cache/repro-hotspot``).

``REPRO_BENCH_SCALE=1 REPRO_BENCH_IMAGE=128`` reproduces the paper's
full configuration given enough compute.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from ..detect.base import HotspotDetector
from ..litho.benchmark import (
    BenchmarkStats,
    HotspotBenchmark,
    generate_iccad2012_like,
)
from ..nn.data import ArrayDataset

__all__ = [
    "bench_scale",
    "bench_image_size",
    "bench_epochs",
    "bench_envelope",
    "write_bench_json",
    "cache_dir",
    "load_benchmark",
    "run_detectors",
]


def bench_scale() -> float:
    """Benchmark Table 2 scale factor (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def bench_image_size() -> int:
    """Benchmark image side (env ``REPRO_BENCH_IMAGE``)."""
    return int(os.environ.get("REPRO_BENCH_IMAGE", "64"))


def bench_epochs() -> int:
    """Neural-detector training epochs (env ``REPRO_BENCH_EPOCHS``)."""
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "20"))


def bench_envelope() -> dict:
    """Provenance header shared by every ``BENCH_*.json`` artifact.

    Records what produced the numbers — git commit, UTC timestamp,
    interpreter and numpy versions, host CPU count — so results from
    different machines and revisions can be compared without guessing.
    Never raises: outside a git checkout the commit is ``"unknown"``.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        commit = "unknown"
    return {
        "git_commit": commit,
        "timestamp_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
    }


def write_bench_json(path: str | os.PathLike, payload: dict) -> Path:
    """Write a ``BENCH_*.json`` artifact with the standard envelope.

    ``payload`` lands at the top level; the :func:`bench_envelope`
    provenance is nested under ``"env"`` (payload wins on collision,
    which benchmarks should not rely on).
    """
    path = Path(path)
    document = {"env": bench_envelope(), **payload}
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def cache_dir() -> Path:
    """Benchmark dataset cache directory (env ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro-hotspot"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_path(scale: float, image_size: int, seed: int, downsample: str) -> Path:
    return cache_dir() / f"iccad2012_s{scale:g}_i{image_size}_r{seed}_{downsample}.npz"


def load_benchmark(
    scale: float | None = None,
    image_size: int | None = None,
    seed: int = 2012,
    downsample: str = "binary",
    cache: bool = True,
) -> HotspotBenchmark:
    """Load (or generate and cache) an ICCAD-2012-shaped benchmark."""
    scale = scale if scale is not None else bench_scale()
    image_size = image_size if image_size is not None else bench_image_size()
    path = _cache_path(scale, image_size, seed, downsample)
    if cache and path.exists():
        with np.load(path) as archive:
            stats = BenchmarkStats(*(int(v) for v in archive["stats"]))
            return HotspotBenchmark(
                train=ArrayDataset(archive["train_images"], archive["train_labels"]),
                test=ArrayDataset(archive["test_images"], archive["test_labels"]),
                stats=stats,
                image_size=image_size,
            )
    benchmark = generate_iccad2012_like(
        scale=scale, image_size=image_size, seed=seed, downsample=downsample
    )
    if cache:
        np.savez_compressed(
            path,
            train_images=benchmark.train.images,
            train_labels=benchmark.train.labels,
            test_images=benchmark.test.images,
            test_labels=benchmark.test.labels,
            stats=np.array(
                [
                    benchmark.stats.train_hs,
                    benchmark.stats.train_nhs,
                    benchmark.stats.test_hs,
                    benchmark.stats.test_nhs,
                ]
            ),
        )
    return benchmark


def run_detectors(
    detectors: list[HotspotDetector],
    benchmark: HotspotBenchmark,
    seed: int = 0,
    litho_seconds: float = 10.0,
):
    """Train and evaluate each detector on the benchmark.

    Returns a list of :class:`~repro.detect.metrics.DetectionMetrics`,
    one per detector, in input order — the rows of Table 3.
    """
    results = []
    for detector in detectors:
        rng = np.random.default_rng(seed)
        results.append(
            detector.fit_evaluate(
                benchmark.train, benchmark.test, rng, litho_seconds=litho_seconds
            )
        )
    return results
