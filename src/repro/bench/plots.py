"""ASCII plotting for terminal reports.

The benchmark harness and CLI run on headless boxes; these renderers
turn the common result shapes — bar comparisons and ROC curves — into
plain-text figures that read well in a log file.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bar_chart", "ascii_roc"]


def bar_chart(
    values: dict[str, float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart of labelled non-negative values.

    Bars are scaled to the largest value; each row shows the label, the
    bar and the numeric value.
    """
    if not values:
        return title or ""
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart requires non-negative values")
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def ascii_roc(
    fa_rate: np.ndarray,
    recall: np.ndarray,
    width: int = 41,
    height: int = 17,
    title: str | None = None,
) -> str:
    """Render an ROC curve on a character grid.

    The x axis is the false-alarm rate, the y axis recall, both on
    [0, 1]; the diagonal (chance) is drawn with dots, the curve with
    ``*``.
    """
    fa_rate = np.asarray(fa_rate, dtype=np.float64)
    recall = np.asarray(recall, dtype=np.float64)
    if fa_rate.shape != recall.shape or fa_rate.ndim != 1:
        raise ValueError("fa_rate and recall must be equal-length vectors")
    grid = [[" "] * width for _ in range(height)]
    for i in range(min(width, height)):  # chance diagonal
        x = round(i * (width - 1) / max(height - 1, 1))
        grid[i][x] = "."
    # densify the curve by linear interpolation between points
    xs = np.linspace(0.0, 1.0, 4 * width)
    ys = np.interp(xs, fa_rate, recall)
    for x_value, y_value in zip(xs, ys):
        col = round(x_value * (width - 1))
        row = round(np.clip(y_value, 0, 1) * (height - 1))
        grid[row][col] = "*"
    lines = [title] if title else []
    lines.append("recall")
    for row in range(height - 1, -1, -1):
        prefix = "1.0 " if row == height - 1 else ("0.0 " if row == 0 else "    ")
        lines.append(prefix + "".join(grid[row]))
    lines.append("    0.0" + " " * (width - 10) + "1.0")
    lines.append("    " + "false-alarm rate".center(width))
    return "\n".join(lines)
