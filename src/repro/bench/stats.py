"""Multi-seed statistics for benchmark results.

Single-seed numbers on a scaled benchmark are noisy; these helpers run
an experiment across seeds and summarise with mean, standard deviation
and a bootstrap confidence interval — the form results should be quoted
in when comparing detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["SeedSummary", "summarize_values", "run_over_seeds",
           "bootstrap_ci"]


@dataclass(frozen=True)
class SeedSummary:
    """Aggregate of one metric across seeds."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (f"{self.mean:.3f} +/- {self.std:.3f} "
                f"(95% CI [{self.ci_low:.3f}, {self.ci_high:.3f}], "
                f"n={len(self.values)})")


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval of the mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("bootstrap_ci needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(values, size=(n_resamples, values.size),
                           replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)),
            float(np.quantile(means, 1.0 - alpha)))


def summarize_values(values: Sequence[float],
                     confidence: float = 0.95) -> SeedSummary:
    """Mean / std / bootstrap CI of a metric across seeds."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("summarize_values needs at least one value")
    low, high = bootstrap_ci(arr, confidence=confidence)
    return SeedSummary(
        values=tuple(float(v) for v in arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        ci_low=low,
        ci_high=high,
    )


def run_over_seeds(
    experiment: Callable[[int], dict[str, float]],
    seeds: Sequence[int],
) -> dict[str, SeedSummary]:
    """Run ``experiment(seed)`` per seed and summarise each metric.

    ``experiment`` returns a flat metric dict; every run must produce
    the same keys.
    """
    if not seeds:
        raise ValueError("run_over_seeds needs at least one seed")
    per_metric: dict[str, list[float]] = {}
    keys: set[str] | None = None
    for seed in seeds:
        metrics = experiment(int(seed))
        if keys is None:
            keys = set(metrics)
        elif set(metrics) != keys:
            raise ValueError(
                f"seed {seed} produced keys {sorted(metrics)} != {sorted(keys)}"
            )
        for key, value in metrics.items():
            per_metric.setdefault(key, []).append(float(value))
    return {key: summarize_values(vals) for key, vals in per_metric.items()}
