"""Plain-text table formatting in the paper's layout."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned text table (insertion-ordered
    columns from the first row)."""
    if not rows:
        return title or ""
    columns = list(rows[0])
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    def line(parts: list[str]) -> str:
        """Format one aligned table row."""
        return " | ".join(part.ljust(width) for part, width in zip(parts, widths))
    out = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)
