"""Wall-clock helpers for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Stopwatch", "stopwatch"]


class Stopwatch:
    """Accumulating wall-clock timer."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> "Stopwatch":
        """Start (or resume) the timer."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the accumulated time."""
        if self._start is None:
            raise RuntimeError("stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@contextmanager
def stopwatch():
    """Context manager yielding a :class:`Stopwatch` running inside it."""
    sw = Stopwatch().start()
    try:
        yield sw
    finally:
        if sw._start is not None:
            sw.stop()
