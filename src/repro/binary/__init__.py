"""Binarization subsystem: quantization math, binary layers and the
bit-packed inference engine (Sections 3.2-3.4 of the paper)."""

from . import bitpack, quantize
from .binary_conv import SCALING_MODES, BinaryConv2D
from .binary_dense import BinaryDense
from .block import BNNConvBlock, clip_binary_weights
from .fixed_point import Int8Conv2D, dequantize_int8, fake_quantize, quantize_int8
from .inference import FloatEngine, PackedBNN, PlaneScanPlan
from .ternary import TernaryConv2D, ternarize_weights

__all__ = [
    "bitpack",
    "quantize",
    "SCALING_MODES",
    "BinaryConv2D",
    "BinaryDense",
    "BNNConvBlock",
    "clip_binary_weights",
    "Int8Conv2D",
    "dequantize_int8",
    "fake_quantize",
    "quantize_int8",
    "FloatEngine",
    "PackedBNN",
    "PlaneScanPlan",
    "TernaryConv2D",
    "ternarize_weights",
]
