"""Binary convolution layer (Sections 3.2-3.4 of the paper).

:class:`BinaryConv2D` keeps a real-valued master filter bank ``W``; each
forward pass binarizes both the filters and the incoming tensor and
scales the result (Eq. 15)::

    T_out = alpha_B * (sign(T_in) (*) sign(W_B)) . alpha_T

Three activation-scaling modes are supported:

``"channelwise"``
    The paper's scheme (Eq. 14): one scaling factor per *input channel*
    per window, computed by averaging ``|T_in|`` locally with the ``K``
    kernel.  Implemented exactly by scaling the binarized im2col
    columns, which realises
    ``out(k, p) = alpha_B(k) * sum_c alpha_T(c, p) * <sign(x_c), sign(w_kc)>``.
``"xnor"``
    XNOR-Net's channel-averaged map ``K = A (*) k`` — one factor per
    window shared across channels.
``"none"``
    Pure BinaryNet convolution with only the per-filter weight scale.

Backward follows the paper: the straight-through estimator for both
sign functions (Eq. 10), the hand-derived weight rule (Eq. 13), and —
as in the XNOR-Net reference implementation — the scaling maps are
treated as constants with respect to the input.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.module import Module, Parameter
from . import quantize

__all__ = ["BinaryConv2D", "SCALING_MODES"]

SCALING_MODES = ("channelwise", "xnor", "none")


class BinaryConv2D(Module):
    """Binarized 2-D convolution with learned real-valued master weights.

    Parameters
    ----------
    in_channels, out_channels, kernel_size, stride, padding:
        Convolution geometry (square kernels, zero padding).
    scaling:
        Activation scaling mode, one of :data:`SCALING_MODES`.
    rng:
        Generator for Xavier initialisation of the master weights.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        scaling: str = "channelwise",
        rng: np.random.Generator | None = None,
    ):
        if scaling not in SCALING_MODES:
            raise ValueError(f"scaling must be one of {SCALING_MODES}, got {scaling!r}")
        rng = rng if rng is not None else np.random.default_rng()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.xavier_uniform(shape, rng))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.scaling = scaling
        self._cache: dict | None = None

    # -- scaling helpers ------------------------------------------------

    def _alpha_cols(self, x: np.ndarray) -> np.ndarray | None:
        """Activation scaling factors, expanded to im2col row layout.

        Returns ``None`` for ``scaling="none"``; otherwise an array
        broadcastable against the ``(c*k*k, P)`` column matrix.
        """
        k = self.kernel_size
        if self.scaling == "none":
            return None
        if self.scaling == "channelwise":
            alpha = quantize.input_scale_channelwise(
                x, k, k, self.stride, self.padding
            )  # (c, P)
            return np.repeat(alpha, k * k, axis=0)  # (c*k*k, P)
        alpha = quantize.input_scale_xnor(x, k, k, self.stride, self.padding)  # (1, P)
        return alpha  # broadcasts over all rows

    # -- forward / backward ---------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        n, c_in, h, w = x.shape
        if c_in != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c_in}")
        k = self.kernel_size
        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)

        # Binary convolutions pad with -1 ("empty" in the +/-1 domain):
        # the packed inference engine then needs no validity mask and is
        # bit-exact with this training-time simulation.
        x_binary = quantize.sign(x)
        cols = F.im2col(x_binary, k, k, self.stride, self.padding, pad_value=-1.0)
        alpha_cols = self._alpha_cols(x)
        cols_scaled = cols if alpha_cols is None else cols * alpha_cols

        w_binary, alpha_w = quantize.binarize_weights(self.weight.data)
        w_mat = alpha_w[:, None] * w_binary.reshape(self.out_channels, -1)

        out = w_mat @ cols_scaled
        out = out.reshape(self.out_channels, n, out_h, out_w).transpose(1, 0, 2, 3)

        if training:
            self._cache = {
                "x_shape": x.shape,
                "cols_scaled": cols_scaled,
                "alpha_cols": alpha_cols,
                "w_mat": w_mat,
                "alpha_w": alpha_w,
                "ste_mask": np.abs(x) < 1.0,
            }
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._cache is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        cache = self._cache
        grad_mat = grad.transpose(1, 0, 2, 3).reshape(self.out_channels, -1)

        # Gradient w.r.t. the estimated weight W~ = alpha_W * sign(W),
        # then the real-valued master weights via Eq. (13).
        grad_w_est = (grad_mat @ cache["cols_scaled"].T).reshape(self.weight.shape)
        self.weight.grad += quantize.weight_ste_grad(
            self.weight.data, grad_w_est, cache["alpha_w"]
        )

        # Gradient w.r.t. the input: through the (constant) scaling map,
        # the im2col scatter, and the straight-through sign (Eq. 10).
        grad_cols = cache["w_mat"].T @ grad_mat
        if cache["alpha_cols"] is not None:
            grad_cols = grad_cols * cache["alpha_cols"]
        k = self.kernel_size
        grad_x = F.col2im(
            grad_cols, cache["x_shape"], k, k, self.stride, self.padding
        )
        return grad_x * cache["ste_mask"]

    # -- constraints -----------------------------------------------------

    def clip_weights(self) -> None:
        """Clamp the master weights to [-1, 1].

        Standard BinaryNet practice: keeps the straight-through window
        ``|W| < 1`` of Eq. (10) active so weights remain trainable.
        """
        np.clip(self.weight.data, -1.0, 1.0, out=self.weight.data)
