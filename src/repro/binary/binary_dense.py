"""Binarized fully connected layer.

The classification head of the paper's network stays full-precision (as
in XNOR-Net and BMXNet); :class:`BinaryDense` is provided for the
fully-binarized ablation and for the packed inference engine's dense
fast path.
"""

from __future__ import annotations

import numpy as np

from ..nn import init
from ..nn.module import Module, Parameter
from . import quantize

__all__ = ["BinaryDense"]


class BinaryDense(Module):
    """Binarized affine layer ``y = (sign(x) * alpha_x) @ (alpha_w * sign(W))``.

    ``W`` has shape ``(in, out)``; one weight scale per output unit and
    one activation scale per input row (the dense analogue of Eq. 8).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        scaling: bool = True,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.scaling = scaling
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        x_binary = quantize.sign(x)
        w = self.weight.data
        w_binary = quantize.sign(w)
        n_in = w.shape[0]
        alpha_w = np.abs(w).mean(axis=0)  # (out,)
        if self.scaling:
            alpha_x = np.abs(x).mean(axis=1, keepdims=True)  # (batch, 1)
            x_est = x_binary * alpha_x
        else:
            alpha_x = None
            x_est = x_binary
        w_est = w_binary * alpha_w
        out = x_est @ w_est
        if training:
            self._cache = {
                "x_est": x_est,
                "w_est": w_est,
                "alpha_w": alpha_w,
                "alpha_x": alpha_x,
                "ste_mask": np.abs(x) < 1.0,
                "n_in": n_in,
            }
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._cache is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        cache = self._cache
        w = self.weight.data
        grad_w_est = cache["x_est"].T @ grad
        ste_w = (np.abs(w) < 1.0).astype(w.dtype)
        # dense analogue of Eq. (13): per-column scale alpha_w, n = in_features
        self.weight.grad += grad_w_est * (
            1.0 / cache["n_in"] + cache["alpha_w"] * ste_w
        )
        grad_x_est = grad @ cache["w_est"].T
        if cache["alpha_x"] is not None:
            grad_x_est = grad_x_est * cache["alpha_x"]
        return grad_x_est * cache["ste_mask"]

    def clip_weights(self) -> None:
        """Clamp the master weights to [-1, 1] (see BinaryConv2D)."""
        np.clip(self.weight.data, -1.0, 1.0, out=self.weight.data)
