"""Bit-packed {-1,+1} linear algebra.

This is the engine behind the paper's speed claim: after binarization a
dot product of two {-1,+1} vectors of length ``n`` collapses to

    dot = n - 2 * popcount(xor(a_bits, b_bits))

so 64 multiply-accumulates become one XOR plus one popcount on a
``uint64`` word.  Bits encode ``+1 -> 1`` and ``-1 -> 0``.  Binary
convolutions pad inputs with ``-1`` (see
:class:`~repro.binary.binary_conv.BinaryConv2D`), so no validity mask is
needed and packed results are bit-exact with the float simulation.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..nn import functional as F

__all__ = [
    "WORD_BITS",
    "popcount",
    "popcount_table16",
    "pack_signs",
    "pack_channels",
    "pack_filters",
    "pack_activation_plane",
    "packed_dot",
    "packed_matmul",
    "packed_conv_dots",
    "binary_conv2d_packed",
    "binary_conv2d_packed_tiled",
    "binary_conv2d_packed_channelwise",
]

WORD_BITS = 64

# One popcount per 16-bit chunk: a 64 KiB table halves the lookups (and
# the intermediate array) of the classic byte-table fallback.  Built by
# the SWAR bit-trick vectorised over all 2^16 values.
def _build_table16() -> np.ndarray:
    t = np.arange(1 << 16, dtype=np.uint32)
    t = (t & 0x5555) + ((t >> 1) & 0x5555)
    t = (t & 0x3333) + ((t >> 2) & 0x3333)
    t = (t & 0x0F0F) + ((t >> 4) & 0x0F0F)
    return ((t & 0x00FF) + (t >> 8)).astype(np.uint8)


_TABLE16 = _build_table16()


def popcount_table16(x: np.ndarray) -> np.ndarray:
    """Per-element population count via a 16-bit lookup table.

    Fallback for NumPy builds without ``np.bitwise_count`` (pre-2.0):
    each element is viewed as ``itemsize / 2`` unsigned 16-bit chunks
    gathered through one shared 65536-entry table — two lookups per
    ``uint16``-packed word, four per ``uint64`` word — instead of
    per-byte work.  Returns ``uint64`` counts with the input's shape.
    """
    x = np.ascontiguousarray(x)
    if x.dtype.itemsize == 1:
        return _TABLE16[x.astype(np.uint8)].astype(np.uint64)
    chunks = x.view(np.uint16).reshape(x.shape + (x.dtype.itemsize // 2,))
    return _TABLE16[chunks].sum(axis=-1, dtype=np.uint64)


# np.bitwise_count arrived in NumPy 2.0; older installs use the table.
popcount = getattr(np, "bitwise_count", popcount_table16)


def pack_signs(x: np.ndarray) -> np.ndarray:
    """Pack a {-1,+1} array along its last axis into ``uint64`` words.

    ``x`` of shape ``(..., n)`` becomes ``(..., ceil(n/64))``.  Positive
    entries set their bit; tail padding bits of the last word stay 0.
    Because the tail is 0 in *both* operands of any subsequent
    :func:`packed_dot`, it never produces a mismatch, and the
    ``n - 2*hamming`` formula (with the true ``n``) stays exact.
    """
    bits = np.asarray(x) > 0
    packed8 = np.packbits(bits, axis=-1, bitorder="little")
    n_bytes = packed8.shape[-1]
    target = ((n_bytes + 7) // 8) * 8
    if target != n_bytes:
        pad = np.zeros(bits.shape[:-1] + (target - n_bytes,), dtype=np.uint8)
        packed8 = np.concatenate([packed8, pad], axis=-1)
    return np.ascontiguousarray(packed8).view(np.uint64)


def packed_dot(a: np.ndarray, b: np.ndarray, n: int) -> np.ndarray:
    """Dot product of packed {-1,+1} vectors along the last axis.

    ``a`` and ``b`` are broadcast-compatible packed arrays; ``n`` is the
    true (unpadded) vector length.  Returns ``n - 2 * hamming`` as
    ``int64``.  Tail padding bits are zero in both operands, so they
    never contribute to the Hamming distance.
    """
    hamming = popcount(np.bitwise_xor(a, b)).sum(axis=-1, dtype=np.int64)
    return n - 2 * hamming


def packed_matmul(a_packed: np.ndarray, b_packed: np.ndarray, n: int) -> np.ndarray:
    """All-pairs packed dot products.

    ``a_packed`` has shape ``(rows, words)``, ``b_packed`` shape
    ``(cols, words)``; returns ``(rows, cols)`` of int64 dot products.
    Loops over the smaller operand to bound temporary memory.
    """
    rows, cols = a_packed.shape[0], b_packed.shape[0]
    out = np.empty((rows, cols), dtype=np.int64)
    if rows <= cols:
        for i in range(rows):
            out[i, :] = packed_dot(a_packed[i], b_packed, n)
    else:
        for j in range(cols):
            out[:, j] = packed_dot(a_packed, b_packed[j], n)
    return out


def pack_channels(x: np.ndarray) -> np.ndarray:
    """Pack an activation tensor along its channel axis by sign.

    ``(n, c, h, w)`` becomes ``(n, ceil(c/64), h, w)`` ``uint64`` with
    channel ``i``'s sign bit (``x >= 0``, matching ``quantize.sign``'s
    zero convention) in bit ``i % 64`` of word ``i // 64``.  This is the
    channel-major layout the deep-layer convolution path gathers from:
    one im2col word stands for up to 64 input channels.
    """
    # (n, h, w, c) bool, C-contiguous, so packbits runs along unit stride
    bits = np.moveaxis(x, 1, -1) >= 0
    packed = pack_signs(bits)  # (n, h, w, words)
    return np.ascontiguousarray(np.moveaxis(packed, -1, 1))


def _taps_per_word(in_channels: int) -> int:
    """How many kernel taps share one 64-bit word.

    With ``c <= 64`` input channels, each tap's channel bits occupy only
    ``c`` bits, so ``floor(64 / c)`` taps are packed densely into one
    word (the 1-channel stem fits a whole 3x3 receptive field in 9
    bits); with ``c > 64`` each tap needs ``ceil(c/64)`` words of its
    own and taps are not merged.
    """
    if in_channels > WORD_BITS:
        return 1
    return WORD_BITS // in_channels


def _conv_words(in_channels: int, kernel_size: int) -> int:
    """Words per receptive field under the dense tap packing."""
    taps = kernel_size * kernel_size
    if in_channels > WORD_BITS:
        return taps * ((in_channels + WORD_BITS - 1) // WORD_BITS)
    per_word = _taps_per_word(in_channels)
    return (taps + per_word - 1) // per_word


def pack_filters(w_sign: np.ndarray) -> np.ndarray:
    """Pack a {-1,+1} filter bank for :func:`binary_conv2d_packed`.

    Bit layout matches the activation packing of the convolution: for
    ``c <= 64``, word ``g`` holds taps ``g*t .. g*t + t - 1`` (row-major
    over the kernel) with tap ``j``'s channel bits at offset ``j * c``;
    for ``c > 64``, channel-major words per tap.  Returns
    ``(c_out, words)`` ``uint64``.
    """
    c_out, c, kh, kw = w_sign.shape
    bits = np.moveaxis(w_sign, 1, -1) >= 0            # (c_out, kh, kw, c)
    if c > WORD_BITS:
        packed = pack_signs(bits)                     # (c_out, kh, kw, cw)
        return np.ascontiguousarray(
            packed.transpose(0, 3, 1, 2)
        ).reshape(c_out, -1)
    tap_words = pack_signs(bits)[..., 0]              # (c_out, kh, kw)
    per_word = _taps_per_word(c)
    out = np.zeros((c_out, _conv_words(c, kh)), dtype=np.uint64)
    for tap, (dy, dx) in enumerate(
        (dy, dx) for dy in range(kh) for dx in range(kw)
    ):
        group, slot = divmod(tap, per_word)
        out[:, group] |= tap_words[:, dy, dx] << np.uint64(slot * c)
    return out


def _pack_activation_columns(
    x: np.ndarray, kernel_size: int, stride: int, padding: int
) -> np.ndarray:
    """Dense tap-packed im2col columns: ``(words, n*oh*ow)`` uint64.

    ``x`` is binarized by sign bit (``>= 0``); spatial -1 padding packs
    to all-zero words, so no validity masks are needed.
    """
    n, c, h, w = x.shape
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    if c * k * k <= 16:
        # tiny receptive fields (the 1-channel stem): build uint16
        # words straight from the sign bits — a quarter of the memory
        # traffic of 64-bit words.
        bits = np.pad(
            x >= 0,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=False,
        )
        words = np.zeros((n, oh, ow), dtype=np.uint16)
        index = 0
        for dy in range(k):
            for dx in range(k):
                for channel in range(c):
                    window = bits[
                        :, channel,
                        dy : dy + stride * oh : stride,
                        dx : dx + stride * ow : stride,
                    ]
                    words |= window.astype(np.uint16) << np.uint16(index)
                    index += 1
        return words.reshape(1, -1)
    x_packed = pack_channels(x)                       # (n, cw, h, w)
    if c > WORD_BITS:
        return F.im2col(x_packed, k, k, stride, padding, pad_value=0)
    padded = np.pad(
        x_packed[:, 0],
        ((0, 0), (padding, padding), (padding, padding)),
    )
    per_word = _taps_per_word(c)
    words = np.zeros((_conv_words(c, k), n, oh, ow), dtype=np.uint64)
    for tap, (dy, dx) in enumerate(
        (dy, dx) for dy in range(k) for dx in range(k)
    ):
        group, slot = divmod(tap, per_word)
        window = padded[
            :, dy : dy + stride * oh : stride, dx : dx + stride * ow : stride
        ]
        words[group] |= window << np.uint64(slot * c)
    return words.reshape(words.shape[0], -1)


def pack_activation_plane(
    x: np.ndarray, kernel_size: int, stride: int
) -> np.ndarray:
    """Packed im2col grid of a whole feature plane, *valid* positions.

    Packs the sign bits of ``x`` (shape ``(1, c, h, w)``) once and lowers
    them to the dense tap-packed column layout of
    :func:`binary_conv2d_packed`, keeping the spatial grid: the result
    has shape ``(words, oh, ow)`` where ``(oh, ow)`` is the valid
    (padding-free) output geometry.  A scan window whose receptive
    fields lie inside the plane reads its activation columns as a plain
    slice of this shared grid — the packing cost is paid once per plane
    instead of once per overlapping window.
    """
    n, c, h, w = x.shape
    if n != 1:
        raise ValueError(f"expected a single plane (1, c, h, w), got {x.shape}")
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, 0)
    ow = F.conv_output_size(w, k, stride, 0)
    cols = _pack_activation_columns(x, k, stride, 0)
    return cols.reshape(cols.shape[0], oh, ow)


@lru_cache(maxsize=8)
def _dot_table16(w_bytes: bytes, n_bits: int) -> np.ndarray:
    """Per-filter dot tables over every 16-bit activation word.

    For receptive fields that fit one ``uint16`` word (the 1-channel
    3x3 stem), the XNOR dot against filter ``f`` is a pure function of
    the activation word ``v``: ``n_bits - 2 * popcount(v ^ w_f)``.
    Tabulating all 2^16 values turns the convolution core into one
    gather per filter — no XOR, popcount, or wide temporaries on the
    hot path.  Keyed by the packed filter bytes so the table is built
    once per compiled layer.
    """
    w = np.frombuffer(w_bytes, dtype=np.uint16)
    values = np.arange(1 << 16, dtype=np.uint16)
    hamming = _TABLE16[values[None, :] ^ w[:, None]]
    return (n_bits - 2 * hamming.astype(np.int16)).astype(np.int16)


def packed_conv_dots(
    cols: np.ndarray, w_packed: np.ndarray, n_bits: int
) -> np.ndarray:
    """Integer dot products of packed activation columns and filters.

    ``cols`` is a ``(words, P)`` column matrix (from
    :func:`binary_conv2d_packed`'s internal lowering or a
    :func:`pack_activation_plane` slice), ``w_packed`` a ``(c_out,
    words)`` filter bank sharing the same bit layout.  Returns ``(c_out,
    P)`` dot products ``n_bits - 2 * hamming`` as an integer array —
    exact integers, so any caller computing the same receptive fields
    gets bit-identical results regardless of how the columns were
    gathered (the dtype may be a narrow integer type on fast paths).
    """
    if cols.dtype != w_packed.dtype:
        # narrow-word fast path: all bits fit the columns' dtype
        w_packed = w_packed.astype(cols.dtype)
    n_words, n_cols = cols.shape
    out_channels = w_packed.shape[0]
    if cols.dtype == np.uint16 and n_words == 1 and out_channels <= 64:
        table = _dot_table16(w_packed.astype(np.uint16).tobytes(), n_bits)
        return table[:, cols[0]]
    hamming = np.zeros((out_channels, n_cols), dtype=np.int64)
    if out_channels <= n_words:
        # few filters: one full-column pass per filter
        for filt in range(out_channels):
            hamming[filt] = popcount(
                np.bitwise_xor(cols, w_packed[filt][:, None])
            ).sum(axis=0, dtype=np.int64)
    else:
        # few words: accumulate word by word, each pass fully vectorised
        for word in range(n_words):
            hamming += popcount(
                np.bitwise_xor(cols[word][None, :], w_packed[:, word][:, None])
            )
    return n_bits - 2 * hamming


def binary_conv2d_packed(
    x_sign: np.ndarray,
    w_packed: np.ndarray,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
    in_channels: int | None = None,
) -> np.ndarray:
    """Packed binary convolution, channel-summed (XNOR-Net fast path).

    Parameters
    ----------
    x_sign:
        Input tensor, binarized internally by sign bit (``>= 0``,
        matching ``quantize.sign``); shape ``(n, c, h, w)``.
    w_packed:
        Filters packed by :func:`pack_filters`.
    out_channels, kernel_size, stride, padding:
        Convolution geometry.
    in_channels:
        True input channel count (defaults to ``x_sign.shape[1]``).

    Returns
    -------
    np.ndarray
        Integer dot products of shape ``(n, c_out, oh, ow)`` (callers
        apply the scaling factors of Eq. 15 afterwards).

    Notes
    -----
    Unused word bits are 0 in both operands (they never mismatch) and
    -1 spatial padding packs to all-zero words, so the
    ``n - 2 * hamming`` identity holds with the true bit count
    ``n = c * kh * kw``.
    """
    n, c, h, w = x_sign.shape
    if in_channels is None:
        in_channels = c
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    n_bits = in_channels * k * k

    cols = _pack_activation_columns(x_sign, k, stride, padding)
    out = packed_conv_dots(cols, w_packed, n_bits)
    # order="C": the transposed copy must be C-contiguous so every
    # downstream reduction sees one canonical memory layout — numpy's
    # strided reductions accumulate in layout-dependent order, and a
    # channels-innermost buffer here would make results depend on how
    # callers batched the inputs (breaking the engine's bit-identity
    # guarantees across batch sizes and the plane scan path).
    return out.reshape(out_channels, n, oh, ow).transpose(1, 0, 2, 3).astype(
        np.float64, order="C"
    )


def binary_conv2d_packed_tiled(
    x_sign: np.ndarray,
    w_packed: np.ndarray,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
    in_channels: int | None = None,
    max_cols: int = 1 << 20,
) -> np.ndarray:
    """:func:`binary_conv2d_packed` with a bounded ``cols`` buffer.

    The one-shot lowering materialises ``words x (n * oh * ow)`` packed
    columns, which for a full-layout plane can dwarf the plane itself.
    This variant splits the *output rows* into tiles of at most
    ``max_cols`` columns each, lowers and multiplies one tile at a time,
    and stitches the results.  Each tile sees exactly the same receptive
    fields (the input is pre-padded with -1, the binary domain's
    "empty", and tiles are cut on output-row boundaries), and the dot
    products are exact integers — the output is bit-identical to the
    untiled kernel.
    """
    n, c, h, w = x_sign.shape
    if in_channels is None:
        in_channels = c
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    n_bits = in_channels * k * k
    rows_per_tile = max(1, max_cols // max(1, n * ow))
    if rows_per_tile >= oh:
        return binary_conv2d_packed(
            x_sign, w_packed, out_channels, k, stride, padding, in_channels
        )
    padded = np.pad(
        x_sign,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        constant_values=-1.0,
    )
    out = np.empty((n, out_channels, oh, ow), dtype=np.float64)
    for r0 in range(0, oh, rows_per_tile):
        r1 = min(r0 + rows_per_tile, oh)
        strip = padded[:, :, r0 * stride : (r1 - 1) * stride + k, :]
        cols = _pack_activation_columns(strip, k, stride, 0)
        dots = packed_conv_dots(cols, w_packed, n_bits)
        out[:, :, r0:r1, :] = dots.reshape(
            out_channels, n, r1 - r0, ow
        ).transpose(1, 0, 2, 3)
    return out


def binary_conv2d_packed_channelwise(
    x_sign: np.ndarray,
    w_packed_per_channel: np.ndarray,
    alpha_cols: np.ndarray,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Packed binary convolution with per-input-channel scaling (Eq. 14).

    The paper's channelwise scaling requires channel-resolved partial
    dot products, so filters are packed *per channel*:
    ``w_packed_per_channel`` has shape ``(c_out, c, words_kk)`` packed
    from each ``(kh*kw,)`` slice.  ``alpha_cols`` is the
    ``(c, P)`` scaling map from
    :func:`repro.binary.quantize.input_scale_channelwise`.

    Slower than :func:`binary_conv2d_packed` (the popcount runs per
    channel) but still multiplication-free in the binary core; returns
    the scaled output ``(n, c_out, oh, ow)``.
    """
    n, c, h, w = x_sign.shape
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    cols = F.im2col(x_sign.astype(np.int8), k, k, stride, padding, pad_value=-1)
    n_kk = k * k
    # (c, kh*kw, P) -> per-channel packed columns (c, P, words)
    cols_pc = pack_signs(cols.reshape(c, n_kk, -1).transpose(0, 2, 1))
    out = np.empty((out_channels, cols_pc.shape[1]), dtype=np.float64)
    for filt in range(out_channels):
        # (c, P): channel-resolved partial dots
        partial = n_kk - 2 * popcount(
            np.bitwise_xor(cols_pc, w_packed_per_channel[filt][:, None, :])
        ).sum(axis=-1, dtype=np.int64)
        out[filt] = (partial * alpha_cols).sum(axis=0)
    # C-contiguous for the same layout-canonicalisation reason as
    # binary_conv2d_packed.
    return np.ascontiguousarray(
        out.reshape(out_channels, n, oh, ow).transpose(1, 0, 2, 3)
    )
