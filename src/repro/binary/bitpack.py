"""Bit-packed {-1,+1} linear algebra.

This is the engine behind the paper's speed claim: after binarization a
dot product of two {-1,+1} vectors of length ``n`` collapses to

    dot = n - 2 * popcount(xor(a_bits, b_bits))

so 64 multiply-accumulates become one XOR plus one popcount on a
``uint64`` word.  Bits encode ``+1 -> 1`` and ``-1 -> 0``.  Binary
convolutions pad inputs with ``-1`` (see
:class:`~repro.binary.binary_conv.BinaryConv2D`), so no validity mask is
needed and packed results are bit-exact with the float simulation.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F

__all__ = [
    "WORD_BITS",
    "popcount",
    "pack_signs",
    "pack_channels",
    "pack_filters",
    "packed_dot",
    "packed_matmul",
    "binary_conv2d_packed",
    "binary_conv2d_packed_channelwise",
]

WORD_BITS = 64

# np.bitwise_count arrived in NumPy 2.0; keep a lookup-table fallback so
# the library still runs on 1.x installs.
if hasattr(np, "bitwise_count"):
    popcount = np.bitwise_count
else:  # pragma: no cover - exercised only on old NumPy
    _TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def popcount(x: np.ndarray) -> np.ndarray:
        """Per-element population count for unsigned integer arrays."""
        b = x.view(np.uint8).reshape(x.shape + (x.dtype.itemsize,))
        return _TABLE[b].sum(axis=-1).astype(np.uint64)


def pack_signs(x: np.ndarray) -> np.ndarray:
    """Pack a {-1,+1} array along its last axis into ``uint64`` words.

    ``x`` of shape ``(..., n)`` becomes ``(..., ceil(n/64))``.  Positive
    entries set their bit; tail padding bits of the last word stay 0.
    Because the tail is 0 in *both* operands of any subsequent
    :func:`packed_dot`, it never produces a mismatch, and the
    ``n - 2*hamming`` formula (with the true ``n``) stays exact.
    """
    bits = np.asarray(x) > 0
    packed8 = np.packbits(bits, axis=-1, bitorder="little")
    n_bytes = packed8.shape[-1]
    target = ((n_bytes + 7) // 8) * 8
    if target != n_bytes:
        pad = np.zeros(bits.shape[:-1] + (target - n_bytes,), dtype=np.uint8)
        packed8 = np.concatenate([packed8, pad], axis=-1)
    return np.ascontiguousarray(packed8).view(np.uint64)


def packed_dot(a: np.ndarray, b: np.ndarray, n: int) -> np.ndarray:
    """Dot product of packed {-1,+1} vectors along the last axis.

    ``a`` and ``b`` are broadcast-compatible packed arrays; ``n`` is the
    true (unpadded) vector length.  Returns ``n - 2 * hamming`` as
    ``int64``.  Tail padding bits are zero in both operands, so they
    never contribute to the Hamming distance.
    """
    hamming = popcount(np.bitwise_xor(a, b)).sum(axis=-1, dtype=np.int64)
    return n - 2 * hamming


def packed_matmul(a_packed: np.ndarray, b_packed: np.ndarray, n: int) -> np.ndarray:
    """All-pairs packed dot products.

    ``a_packed`` has shape ``(rows, words)``, ``b_packed`` shape
    ``(cols, words)``; returns ``(rows, cols)`` of int64 dot products.
    Loops over the smaller operand to bound temporary memory.
    """
    rows, cols = a_packed.shape[0], b_packed.shape[0]
    out = np.empty((rows, cols), dtype=np.int64)
    if rows <= cols:
        for i in range(rows):
            out[i, :] = packed_dot(a_packed[i], b_packed, n)
    else:
        for j in range(cols):
            out[:, j] = packed_dot(a_packed, b_packed[j], n)
    return out


def pack_channels(x: np.ndarray) -> np.ndarray:
    """Pack an activation tensor along its channel axis by sign.

    ``(n, c, h, w)`` becomes ``(n, ceil(c/64), h, w)`` ``uint64`` with
    channel ``i``'s sign bit (``x >= 0``, matching ``quantize.sign``'s
    zero convention) in bit ``i % 64`` of word ``i // 64``.  This is the
    channel-major layout the deep-layer convolution path gathers from:
    one im2col word stands for up to 64 input channels.
    """
    # (n, h, w, c) bool, C-contiguous, so packbits runs along unit stride
    bits = np.moveaxis(x, 1, -1) >= 0
    packed = pack_signs(bits)  # (n, h, w, words)
    return np.ascontiguousarray(np.moveaxis(packed, -1, 1))


def _taps_per_word(in_channels: int) -> int:
    """How many kernel taps share one 64-bit word.

    With ``c <= 64`` input channels, each tap's channel bits occupy only
    ``c`` bits, so ``floor(64 / c)`` taps are packed densely into one
    word (the 1-channel stem fits a whole 3x3 receptive field in 9
    bits); with ``c > 64`` each tap needs ``ceil(c/64)`` words of its
    own and taps are not merged.
    """
    if in_channels > WORD_BITS:
        return 1
    return WORD_BITS // in_channels


def _conv_words(in_channels: int, kernel_size: int) -> int:
    """Words per receptive field under the dense tap packing."""
    taps = kernel_size * kernel_size
    if in_channels > WORD_BITS:
        return taps * ((in_channels + WORD_BITS - 1) // WORD_BITS)
    per_word = _taps_per_word(in_channels)
    return (taps + per_word - 1) // per_word


def pack_filters(w_sign: np.ndarray) -> np.ndarray:
    """Pack a {-1,+1} filter bank for :func:`binary_conv2d_packed`.

    Bit layout matches the activation packing of the convolution: for
    ``c <= 64``, word ``g`` holds taps ``g*t .. g*t + t - 1`` (row-major
    over the kernel) with tap ``j``'s channel bits at offset ``j * c``;
    for ``c > 64``, channel-major words per tap.  Returns
    ``(c_out, words)`` ``uint64``.
    """
    c_out, c, kh, kw = w_sign.shape
    bits = np.moveaxis(w_sign, 1, -1) >= 0            # (c_out, kh, kw, c)
    if c > WORD_BITS:
        packed = pack_signs(bits)                     # (c_out, kh, kw, cw)
        return np.ascontiguousarray(
            packed.transpose(0, 3, 1, 2)
        ).reshape(c_out, -1)
    tap_words = pack_signs(bits)[..., 0]              # (c_out, kh, kw)
    per_word = _taps_per_word(c)
    out = np.zeros((c_out, _conv_words(c, kh)), dtype=np.uint64)
    for tap, (dy, dx) in enumerate(
        (dy, dx) for dy in range(kh) for dx in range(kw)
    ):
        group, slot = divmod(tap, per_word)
        out[:, group] |= tap_words[:, dy, dx] << np.uint64(slot * c)
    return out


def _pack_activation_columns(
    x: np.ndarray, kernel_size: int, stride: int, padding: int
) -> np.ndarray:
    """Dense tap-packed im2col columns: ``(words, n*oh*ow)`` uint64.

    ``x`` is binarized by sign bit (``>= 0``); spatial -1 padding packs
    to all-zero words, so no validity masks are needed.
    """
    n, c, h, w = x.shape
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    if c * k * k <= 16:
        # tiny receptive fields (the 1-channel stem): build uint16
        # words straight from the sign bits — a quarter of the memory
        # traffic of 64-bit words.
        bits = np.pad(
            x >= 0,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=False,
        )
        words = np.zeros((n, oh, ow), dtype=np.uint16)
        index = 0
        for dy in range(k):
            for dx in range(k):
                for channel in range(c):
                    window = bits[
                        :, channel,
                        dy : dy + stride * oh : stride,
                        dx : dx + stride * ow : stride,
                    ]
                    words |= window.astype(np.uint16) << np.uint16(index)
                    index += 1
        return words.reshape(1, -1)
    x_packed = pack_channels(x)                       # (n, cw, h, w)
    if c > WORD_BITS:
        return F.im2col(x_packed, k, k, stride, padding, pad_value=0)
    padded = np.pad(
        x_packed[:, 0],
        ((0, 0), (padding, padding), (padding, padding)),
    )
    per_word = _taps_per_word(c)
    words = np.zeros((_conv_words(c, k), n, oh, ow), dtype=np.uint64)
    for tap, (dy, dx) in enumerate(
        (dy, dx) for dy in range(k) for dx in range(k)
    ):
        group, slot = divmod(tap, per_word)
        window = padded[
            :, dy : dy + stride * oh : stride, dx : dx + stride * ow : stride
        ]
        words[group] |= window << np.uint64(slot * c)
    return words.reshape(words.shape[0], -1)


def binary_conv2d_packed(
    x_sign: np.ndarray,
    w_packed: np.ndarray,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
    in_channels: int | None = None,
) -> np.ndarray:
    """Packed binary convolution, channel-summed (XNOR-Net fast path).

    Parameters
    ----------
    x_sign:
        Input tensor, binarized internally by sign bit (``>= 0``,
        matching ``quantize.sign``); shape ``(n, c, h, w)``.
    w_packed:
        Filters packed by :func:`pack_filters`.
    out_channels, kernel_size, stride, padding:
        Convolution geometry.
    in_channels:
        True input channel count (defaults to ``x_sign.shape[1]``).

    Returns
    -------
    np.ndarray
        Integer dot products of shape ``(n, c_out, oh, ow)`` (callers
        apply the scaling factors of Eq. 15 afterwards).

    Notes
    -----
    Unused word bits are 0 in both operands (they never mismatch) and
    -1 spatial padding packs to all-zero words, so the
    ``n - 2 * hamming`` identity holds with the true bit count
    ``n = c * kh * kw``.
    """
    n, c, h, w = x_sign.shape
    if in_channels is None:
        in_channels = c
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    n_bits = in_channels * k * k

    cols = _pack_activation_columns(x_sign, k, stride, padding)
    if cols.dtype != w_packed.dtype:
        # narrow-word fast path: all bits fit the columns' dtype
        w_packed = w_packed.astype(cols.dtype)
    n_words, n_cols = cols.shape
    hamming = np.zeros((out_channels, n_cols), dtype=np.int64)
    if out_channels <= n_words:
        # few filters: one full-column pass per filter
        for filt in range(out_channels):
            hamming[filt] = popcount(
                np.bitwise_xor(cols, w_packed[filt][:, None])
            ).sum(axis=0, dtype=np.int64)
    else:
        # few words: accumulate word by word, each pass fully vectorised
        for word in range(n_words):
            hamming += popcount(
                np.bitwise_xor(cols[word][None, :], w_packed[:, word][:, None])
            )
    out = n_bits - 2 * hamming
    return out.reshape(out_channels, n, oh, ow).transpose(1, 0, 2, 3).astype(
        np.float64
    )


def binary_conv2d_packed_channelwise(
    x_sign: np.ndarray,
    w_packed_per_channel: np.ndarray,
    alpha_cols: np.ndarray,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Packed binary convolution with per-input-channel scaling (Eq. 14).

    The paper's channelwise scaling requires channel-resolved partial
    dot products, so filters are packed *per channel*:
    ``w_packed_per_channel`` has shape ``(c_out, c, words_kk)`` packed
    from each ``(kh*kw,)`` slice.  ``alpha_cols`` is the
    ``(c, P)`` scaling map from
    :func:`repro.binary.quantize.input_scale_channelwise`.

    Slower than :func:`binary_conv2d_packed` (the popcount runs per
    channel) but still multiplication-free in the binary core; returns
    the scaled output ``(n, c_out, oh, ow)``.
    """
    n, c, h, w = x_sign.shape
    k = kernel_size
    oh = F.conv_output_size(h, k, stride, padding)
    ow = F.conv_output_size(w, k, stride, padding)
    cols = F.im2col(x_sign.astype(np.int8), k, k, stride, padding, pad_value=-1)
    n_kk = k * k
    # (c, kh*kw, P) -> per-channel packed columns (c, P, words)
    cols_pc = pack_signs(cols.reshape(c, n_kk, -1).transpose(0, 2, 1))
    out = np.empty((out_channels, cols_pc.shape[1]), dtype=np.float64)
    for filt in range(out_channels):
        # (c, P): channel-resolved partial dots
        partial = n_kk - 2 * popcount(
            np.bitwise_xor(cols_pc, w_packed_per_channel[filt][:, None, :])
        ).sum(axis=-1, dtype=np.int64)
        out[filt] = (partial * alpha_cols).sum(axis=0)
    return out.reshape(out_channels, n, oh, ow).transpose(1, 0, 2, 3)
