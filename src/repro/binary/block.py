"""The paper's convolution block (Figure 3): BatchNorm -> Binarize -> BinaryConv.

Batch normalisation is placed *before* binarization, following XNOR-Net,
to reduce the information lost by quantizing to one bit.  The explicit
Binarizing layer of Figure 3 is fused into :class:`BinaryConv2D`, which
binarizes its incoming tensor internally — the activation scaling
factors of Eq. (14) need the pre-binarization magnitudes ``|T_in|``, so
fusing keeps a single source of truth for both the sign and the scale.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.module import Module
from .binary_conv import BinaryConv2D

__all__ = ["BNNConvBlock", "clip_binary_weights"]


class BNNConvBlock(Module):
    """One BN -> Binarize -> BinaryConv block of the paper's network."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        scaling: str = "channelwise",
        rng: np.random.Generator | None = None,
    ):
        if padding is None:
            padding = kernel_size // 2  # "same" padding for odd kernels
        self.bn = BatchNorm2D(in_channels)
        self.conv = BinaryConv2D(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            scaling=scaling,
            rng=rng,
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        return self.conv.forward(self.bn.forward(x, training), training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        return self.bn.backward(self.conv.backward(grad))


def clip_binary_weights(model: Module) -> None:
    """Clamp the master weights of every binarized layer in ``model``.

    Call after each optimizer step (BinaryNet practice) to keep the
    straight-through window of Eq. (10) active.
    """
    stack = [model]
    while stack:
        module = stack.pop()
        clip = getattr(module, "clip_weights", None)
        if callable(clip):
            clip()
        stack.extend(module.children())
