"""8-bit fixed-point quantization (the int8 point of Section 2.2).

The paper's background cites Vanhoucke et al.'s 8-bit activation
quantization as the mild end of the precision spectrum.  This module
provides symmetric per-tensor int8 quantization (simulated: quantize,
dequantize, compute in float — the standard "fake quantization" used to
evaluate accuracy impact) and a drop-in conv layer, completing the
float -> int8 -> ternary -> binary ladder.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.module import Module, Parameter

__all__ = ["quantize_int8", "dequantize_int8", "fake_quantize", "Int8Conv2D"]


def quantize_int8(x: np.ndarray) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor quantization to int8.

    Returns ``(q, scale)`` with ``q = round(x / scale)`` clamped to
    [-127, 127] and ``scale = max|x| / 127`` (zero tensors get scale 1).
    """
    peak = float(np.abs(x).max())
    scale = peak / 127.0 if peak > 0 else 1.0
    q = np.clip(np.round(x / scale), -127, 127).astype(np.int8)
    return q, scale


def dequantize_int8(q: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_int8` (up to rounding error)."""
    return q.astype(np.float64) * scale


def fake_quantize(x: np.ndarray) -> np.ndarray:
    """Round-trip through int8: the standard quantization simulation."""
    q, scale = quantize_int8(x)
    return dequantize_int8(q, scale)


class Int8Conv2D(Module):
    """Convolution with int8-quantized weights and activations.

    Forward quantizes both operands through int8 (simulated in float);
    backward is straight-through (rounding treated as identity), the
    standard rule for quantization-aware training.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.xavier_uniform(shape, rng))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        x_q = fake_quantize(x)
        w_q = fake_quantize(self.weight.data)
        out, cols = F.conv2d_forward(x_q, w_q, None, self.stride, self.padding)
        if training:
            self._cache = {"cols": cols, "x_shape": x.shape, "w_q": w_q}
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._cache is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        cache = self._cache
        grad_x, grad_w, _ = F.conv2d_backward(
            grad, cache["cols"], cache["x_shape"], cache["w_q"],
            self.stride, self.padding, with_bias=False,
        )
        self.weight.grad += grad_w  # straight-through rounding
        return grad_x
