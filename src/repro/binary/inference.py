"""Packed inference engine: compile a trained BNN to popcount kernels.

:class:`PackedBNN` walks a trained model and replaces every
:class:`~repro.binary.binary_conv.BinaryConv2D` with a bit-packed
XNOR/popcount kernel (weights are packed once at compile time), every
batch-norm with a frozen per-channel affine transform, and keeps the
small float layers (pooling, dense head) as-is.  The compiled engine is
numerically identical to ``model.forward(training=False)`` — verified by
the test suite — while running the convolution cores on 64-bit words.

This mirrors the deployment story of the paper: training simulates
binarization in float, inference runs on binary arithmetic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn import functional as F
from ..nn.layers.activations import HardTanh, ReLU, SignSTE, sign
from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.layers.container import Sequential
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.dropout import Dropout
from ..nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from ..nn.layers.residual import ResidualBlock
from ..nn.layers.shape import Flatten
from ..nn.module import Module
from . import bitpack, quantize
from .binary_conv import BinaryConv2D
from .binary_dense import BinaryDense
from .block import BNNConvBlock

__all__ = ["PackedBNN", "FloatEngine"]

_Fn = Callable[[np.ndarray], np.ndarray]


def _compile_batchnorm(layer: BatchNorm2D) -> _Fn:
    """Freeze running statistics into one per-channel affine transform."""
    scale = layer.gamma.data / np.sqrt(layer.running_var + layer.eps)
    shift = layer.beta.data - layer.running_mean * scale

    def run(x: np.ndarray) -> np.ndarray:
        """Execute the compiled layer on a batch."""
        shape = [1] * x.ndim
        shape[1] = scale.size
        return x * scale.reshape(shape) + shift.reshape(shape)

    return run


def _compile_binary_conv(layer: BinaryConv2D) -> _Fn:
    """Pack the binarized filters once; run popcount kernels at call time."""
    weight = layer.weight.data
    c_out = layer.out_channels
    k = layer.kernel_size
    stride, padding = layer.stride, layer.padding
    w_binary, alpha_w = quantize.binarize_weights(weight)
    mode = layer.scaling

    if mode == "channelwise":
        w_packed = bitpack.pack_signs(w_binary.reshape(c_out, weight.shape[1], k * k))

        def run(x: np.ndarray) -> np.ndarray:
            """Execute the compiled layer on a batch."""
            alpha_cols = quantize.input_scale_channelwise(x, k, k, stride, padding)
            out = bitpack.binary_conv2d_packed_channelwise(
                sign(x), w_packed, alpha_cols, c_out, k, stride, padding
            )
            return out * alpha_w[None, :, None, None]

        return run

    w_packed = bitpack.pack_filters(w_binary)
    c_in = weight.shape[1]

    def run(x: np.ndarray) -> np.ndarray:
        # binary_conv2d_packed binarizes by sign bit internally
        """Execute the compiled layer on a batch."""
        dots = bitpack.binary_conv2d_packed(
            x, w_packed, c_out, k, stride, padding, in_channels=c_in
        )
        out = dots * alpha_w[None, :, None, None]
        if mode == "xnor":
            n, _, oh, ow = out.shape
            alpha_map = quantize.input_scale_xnor(x, k, k, stride, padding)
            out = out * alpha_map.reshape(n, 1, oh, ow)
        return out

    return run


def _compile_binary_dense(layer: BinaryDense) -> _Fn:
    """Packed dense layer: one popcount dot per output unit."""
    w = layer.weight.data
    n_in = w.shape[0]
    alpha_w = np.abs(w).mean(axis=0)
    w_packed = bitpack.pack_signs(sign(w).T)  # (out, words)
    scaling = layer.scaling

    def run(x: np.ndarray) -> np.ndarray:
        """Execute the compiled layer on a batch."""
        x_packed = bitpack.pack_signs(sign(x))
        dots = bitpack.packed_matmul(x_packed, w_packed, n_in).astype(np.float64)
        out = dots * alpha_w
        if scaling:
            out = out * np.abs(x).mean(axis=1, keepdims=True)
        return out

    return run


def _compile(module: Module) -> _Fn:
    """Recursively compile a module tree into a plain callable."""
    if isinstance(module, Sequential):
        fns = [_compile(layer) for layer in module.layers]

        def run_seq(x: np.ndarray) -> np.ndarray:
            """Execute the compiled layers in order."""
            for fn in fns:
                x = fn(x)
            return x

        return run_seq
    if isinstance(module, ResidualBlock):
        main = _compile(module.main)
        shortcut = _compile(module.shortcut) if module.shortcut is not None else None

        def run_res(x: np.ndarray) -> np.ndarray:
            """Execute the compiled residual block (main + shortcut)."""
            out = main(x)
            return out + (x if shortcut is None else shortcut(x))

        return run_res
    if isinstance(module, BNNConvBlock):
        bn = _compile_batchnorm(module.bn)
        conv = _compile_binary_conv(module.conv)
        return lambda x: conv(bn(x))
    if isinstance(module, BinaryConv2D):
        return _compile_binary_conv(module)
    if isinstance(module, BinaryDense):
        return _compile_binary_dense(module)
    if isinstance(module, BatchNorm2D):
        return _compile_batchnorm(module)
    if isinstance(module, Conv2D):
        weight = module.weight.data.copy()
        bias = module.bias.data.copy() if module.bias is not None else None
        stride, padding = module.stride, module.padding
        return lambda x: F.conv2d_forward(x, weight, bias, stride, padding)[0]
    if isinstance(module, Dense):
        weight = module.weight.data.copy()
        bias = module.bias.data.copy() if module.bias is not None else None
        # einsum (unoptimized) accumulates each output element in a fixed
        # per-row loop order, unlike `x @ weight` where BLAS picks
        # different kernels (gemv vs gemm) by batch size — keeping the
        # engine's outputs bit-identical however requests are batched.
        if bias is None:
            return lambda x: np.einsum("nk,kc->nc", x, weight)
        return lambda x: np.einsum("nk,kc->nc", x, weight) + bias
    if isinstance(module, MaxPool2D):
        return lambda x: F.maxpool2d_forward(x, module.kernel_size, module.stride)[0]
    if isinstance(module, AvgPool2D):
        return lambda x: F.avgpool2d_forward(x, module.kernel_size, module.stride)
    if isinstance(module, GlobalAvgPool2D):
        return lambda x: x.mean(axis=(2, 3))
    if isinstance(module, Flatten):
        return lambda x: x.reshape(x.shape[0], -1)
    if isinstance(module, ReLU):
        return lambda x: np.maximum(x, 0.0)
    if isinstance(module, HardTanh):
        return lambda x: np.clip(x, -1.0, 1.0)
    if isinstance(module, SignSTE):
        return sign
    if isinstance(module, Dropout):
        return lambda x: x  # identity at inference
    raise TypeError(f"PackedBNN cannot compile layer type {type(module).__name__}")


class PackedBNN:
    """A trained model compiled to bit-packed inference kernels.

    Parameters
    ----------
    model:
        A trained module tree built from the layer types of
        :mod:`repro.nn` and :mod:`repro.binary`.  Weights are snapshot
        at construction; later training of ``model`` does not affect the
        compiled engine.
    """

    def __init__(self, model: Module):
        self._fn = _compile(model)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the compiled network on a batch."""
        return self._fn(x)

    __call__ = forward

    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference over a full array of images."""
        outputs = [
            self._fn(images[start : start + batch_size])
            for start in range(0, images.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)


class FloatEngine:
    """Float-simulation inference with the :class:`PackedBNN` interface.

    Wraps ``model.forward(training=False)`` so callers that only need
    ``forward`` / ``predict_logits`` — the serving layer's model
    registry in particular — can fall back to the float model when a
    network contains layers the packed compiler does not support, or
    when the float path is explicitly requested for comparison runs.
    Unlike :class:`PackedBNN` this is a live view of ``model``, not a
    weight snapshot.
    """

    def __init__(self, model: Module):
        self._model = model

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the float model on a batch (inference mode)."""
        return self._model.forward(x, training=False)

    __call__ = forward

    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference over a full array of images."""
        outputs = [
            self.forward(images[start : start + batch_size])
            for start in range(0, images.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)
