"""Packed inference engine: compile a trained BNN to popcount kernels.

:class:`PackedBNN` walks a trained model and replaces every
:class:`~repro.binary.binary_conv.BinaryConv2D` with a bit-packed
XNOR/popcount kernel (weights are packed once at compile time), every
batch-norm with a frozen per-channel affine transform, and keeps the
small float layers (pooling, dense head) as-is.  The compiled engine is
numerically identical to ``model.forward(training=False)`` — verified by
the test suite — while running the convolution cores on 64-bit words.

This mirrors the deployment story of the paper: training simulates
binarization in float, inference runs on binary arithmetic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn import functional as F
from ..nn.layers.activations import HardTanh, ReLU, SignSTE, sign
from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.layers.container import Sequential
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.dropout import Dropout
from ..nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from ..nn.layers.residual import ResidualBlock
from ..nn.layers.shape import Flatten
from ..nn.module import Module
from . import bitpack, quantize
from .binary_conv import BinaryConv2D
from .binary_dense import BinaryDense
from .block import BNNConvBlock

__all__ = ["PackedBNN", "PlaneScanPlan", "FloatEngine"]

_Fn = Callable[[np.ndarray], np.ndarray]

# Layer types that act element-wise (per pixel, per channel): applying
# them to a full plane and then slicing a window is bit-identical to
# slicing first.  The plane scan engine runs any such prefix directly
# on the plane.
_POINTWISE_LAYERS = (BatchNorm2D, ReLU, HardTanh, SignSTE, Dropout)


def _compile_batchnorm(layer: BatchNorm2D) -> _Fn:
    """Freeze running statistics into one per-channel affine transform."""
    scale = layer.gamma.data / np.sqrt(layer.running_var + layer.eps)
    shift = layer.beta.data - layer.running_mean * scale

    def run(x: np.ndarray) -> np.ndarray:
        """Execute the compiled layer on a batch."""
        shape = [1] * x.ndim
        shape[1] = scale.size
        out = x * scale.reshape(shape)
        out += shift.reshape(shape)  # in-place: one fewer full-size temp
        return out

    return run


def _compile_binary_conv(layer: BinaryConv2D) -> _Fn:
    """Pack the binarized filters once; run popcount kernels at call time."""
    weight = layer.weight.data
    c_out = layer.out_channels
    k = layer.kernel_size
    stride, padding = layer.stride, layer.padding
    w_binary, alpha_w = quantize.binarize_weights(weight)
    mode = layer.scaling

    if mode == "channelwise":
        w_packed = bitpack.pack_signs(w_binary.reshape(c_out, weight.shape[1], k * k))

        def run(x: np.ndarray) -> np.ndarray:
            """Execute the compiled layer on a batch."""
            alpha_cols = quantize.input_scale_channelwise(x, k, k, stride, padding)
            out = bitpack.binary_conv2d_packed_channelwise(
                sign(x), w_packed, alpha_cols, c_out, k, stride, padding
            )
            return out * alpha_w[None, :, None, None]

        return run

    w_packed = bitpack.pack_filters(w_binary)
    c_in = weight.shape[1]

    def run(x: np.ndarray) -> np.ndarray:
        # binary_conv2d_packed binarizes by sign bit internally
        """Execute the compiled layer on a batch."""
        dots = bitpack.binary_conv2d_packed(
            x, w_packed, c_out, k, stride, padding, in_channels=c_in
        )
        out = dots * alpha_w[None, :, None, None]
        if mode == "xnor":
            n, _, oh, ow = out.shape
            alpha_map = quantize.input_scale_xnor(x, k, k, stride, padding)
            out *= alpha_map.reshape(n, 1, oh, ow)  # in-place, bit-equal
        return out

    return run


def _compile_binary_dense(layer: BinaryDense) -> _Fn:
    """Packed dense layer: one popcount dot per output unit."""
    w = layer.weight.data
    n_in = w.shape[0]
    alpha_w = np.abs(w).mean(axis=0)
    w_packed = bitpack.pack_signs(sign(w).T)  # (out, words)
    scaling = layer.scaling

    def run(x: np.ndarray) -> np.ndarray:
        """Execute the compiled layer on a batch."""
        x_packed = bitpack.pack_signs(sign(x))
        dots = bitpack.packed_matmul(x_packed, w_packed, n_in).astype(np.float64)
        out = dots * alpha_w
        if scaling:
            out = out * np.abs(x).mean(axis=1, keepdims=True)
        return out

    return run


def _compile(module: Module) -> _Fn:
    """Recursively compile a module tree into a plain callable."""
    if isinstance(module, Sequential):
        fns = [_compile(layer) for layer in module.layers]

        def run_seq(x: np.ndarray) -> np.ndarray:
            """Execute the compiled layers in order."""
            for fn in fns:
                x = fn(x)
            return x

        return run_seq
    if isinstance(module, ResidualBlock):
        main = _compile(module.main)
        shortcut = _compile(module.shortcut) if module.shortcut is not None else None

        def run_res(x: np.ndarray) -> np.ndarray:
            """Execute the compiled residual block (main + shortcut)."""
            out = main(x)
            return out + (x if shortcut is None else shortcut(x))

        return run_res
    if isinstance(module, BNNConvBlock):
        bn = _compile_batchnorm(module.bn)
        conv = _compile_binary_conv(module.conv)
        return lambda x: conv(bn(x))
    if isinstance(module, BinaryConv2D):
        return _compile_binary_conv(module)
    if isinstance(module, BinaryDense):
        return _compile_binary_dense(module)
    if isinstance(module, BatchNorm2D):
        return _compile_batchnorm(module)
    if isinstance(module, Conv2D):
        weight = module.weight.data.copy()
        bias = module.bias.data.copy() if module.bias is not None else None
        stride, padding = module.stride, module.padding
        return lambda x: F.conv2d_forward(x, weight, bias, stride, padding)[0]
    if isinstance(module, Dense):
        weight = module.weight.data.copy()
        bias = module.bias.data.copy() if module.bias is not None else None
        # einsum (unoptimized) accumulates each output element in a fixed
        # per-row loop order, unlike `x @ weight` where BLAS picks
        # different kernels (gemv vs gemm) by batch size — keeping the
        # engine's outputs bit-identical however requests are batched.
        if bias is None:
            return lambda x: np.einsum("nk,kc->nc", x, weight)
        return lambda x: np.einsum("nk,kc->nc", x, weight) + bias
    if isinstance(module, MaxPool2D):
        return lambda x: F.maxpool2d_forward(x, module.kernel_size, module.stride)[0]
    if isinstance(module, AvgPool2D):
        return lambda x: F.avgpool2d_forward(x, module.kernel_size, module.stride)
    if isinstance(module, GlobalAvgPool2D):
        return lambda x: x.mean(axis=(2, 3))
    if isinstance(module, Flatten):
        return lambda x: x.reshape(x.shape[0], -1)
    if isinstance(module, ReLU):
        return lambda x: np.maximum(x, 0.0)
    if isinstance(module, HardTanh):
        return lambda x: np.clip(x, -1.0, 1.0)
    if isinstance(module, SignSTE):
        return sign
    if isinstance(module, Dropout):
        return lambda x: x  # identity at inference
    raise TypeError(f"PackedBNN cannot compile layer type {type(module).__name__}")


def _stem_plane_spec(layers: list[Module], layer_fns: list[_Fn]) -> dict | None:
    """Describe the network prefix the plane scan engine can amortize.

    Walks the top-level layers of a :class:`Sequential` model: an
    optional run of element-wise layers, then the stem convolution (a
    bare :class:`BinaryConv2D` or a :class:`BNNConvBlock`, whose
    batch-norm is element-wise and joins the prefix).  Returns ``None``
    — meaning :class:`PlaneScanPlan` falls back to whole-window slicing
    — when the stem is anything else, takes more than one input channel
    (layout planes are single-channel) or uses an exotic
    ``padding >= kernel_size`` geometry.
    """
    pre: list[_Fn] = []
    idx = 0
    while idx < len(layers) and isinstance(layers[idx], _POINTWISE_LAYERS):
        pre.append(layer_fns[idx])
        idx += 1
    if idx >= len(layers):
        return None
    stem = layers[idx]
    if isinstance(stem, BNNConvBlock):
        conv = stem.conv
        pre = pre + [_compile_batchnorm(stem.bn)]
    elif isinstance(stem, BinaryConv2D):
        conv = stem
    else:
        return None
    if conv.in_channels != 1 or conv.padding >= conv.kernel_size:
        return None
    w_binary, alpha_w = quantize.binarize_weights(conv.weight.data)
    return {
        "pre": pre,
        "rest": layer_fns[idx + 1 :],
        "w_packed": bitpack.pack_filters(w_binary),
        "alpha_w": alpha_w,
        "k": conv.kernel_size,
        "stride": conv.stride,
        "padding": conv.padding,
        "c_out": conv.out_channels,
        "scaling": conv.scaling,
    }


class PlaneScanPlan:
    """A compiled sliding-window scan over one rasterized plane.

    Built by :meth:`PackedBNN.plan_scan`.  The plan pre-computes, once
    per plane, everything the stem convolution shares between
    overlapping windows:

    * the element-wise prefix (batch-norm of the stem block) applied to
      the whole plane;
    * per *phase* — the residue ``(origin - padding) mod stride`` along
      each axis — a valid (padding-free) grid of integer XNOR/popcount
      dot products covering every in-plane receptive field, via the
      tiled packed convolution;
    * the matching grid of activation scaling means (Eq. 14/15 of the
      paper), via the tap-ordered :func:`~repro.binary.quantize.box_sums`.

    :meth:`logits` then assembles each window's stem output from plane
    slices (interior cells) plus thin border strips recomputed per
    window with the window's own -1 padding, and runs the remaining
    layers batched.  Because the dot products are exact integers and
    every float operation is element-wise in the same order as the
    per-window kernels, the result is **bit-identical** to
    ``predict_logits`` on the stacked window slices — that equivalence
    is what lets the serving layer swap this path in silently.

    When the model has no plane-able stem the plan still works: it
    slices whole windows out of the plane and runs the full compiled
    network per batch (still amortizing rasterisation).
    """

    def __init__(
        self,
        plane: np.ndarray,
        window: int,
        origins,
        stem: dict | None,
        fn: _Fn,
    ):
        plane = np.asarray(plane, dtype=np.float64)
        if plane.ndim == 2:
            plane = plane[None, None]
        if plane.ndim != 4 or plane.shape[0] != 1:
            raise ValueError(
                f"expected one plane (h, w) or (1, c, h, w), got {plane.shape}"
            )
        self._plane = plane
        self._window = int(window)
        self._origins = [(int(x), int(y)) for x, y in origins]
        height, width = plane.shape[2], plane.shape[3]
        for ox, oy in self._origins:
            if not (0 <= ox <= width - self._window
                    and 0 <= oy <= height - self._window):
                raise ValueError(
                    f"window origin ({ox}, {oy}) out of plane bounds"
                )
        self._fn = fn
        self._stem = stem if plane.shape[1] == 1 else None
        if self._stem is None:
            return
        k, s, p = stem["k"], stem["stride"], stem["padding"]
        oh = F.conv_output_size(self._window, k, s, p)
        self._oh = oh
        # interior rows/cols: output cells whose receptive field lies
        # fully inside the window (no padding contribution)
        i0 = min(-(-p // s), oh)
        i1 = (self._window + p - k) // s + 1
        self._i0, self._i1 = i0, max(min(i1, oh), i0)
        x = plane
        for f in stem["pre"]:
            x = f(x)
        self._plane_bn = x
        self._plane_abs = np.abs(x) if stem["scaling"] != "none" else None
        self._n_bits = k * k
        self._phases: dict[tuple[int, int], tuple] = {}
        for ox, oy in self._origins:
            self._phase_grids((oy - p) % s, (ox - p) % s)

    @property
    def uses_plane_stem(self) -> bool:
        """Whether the stem runs fully-convolutionally on the plane."""
        return self._stem is not None

    def _phase_grids(self, phy: int, phx: int) -> tuple:
        """Valid-conv dot and scaling grids for one origin phase."""
        grids = self._phases.get((phy, phx))
        if grids is not None:
            return grids
        stem = self._stem
        k, s = stem["k"], stem["stride"]
        sub = self._plane_bn[:, :, phy:, phx:]
        dots = bitpack.binary_conv2d_packed_tiled(
            sub, stem["w_packed"], stem["c_out"], k, s, 0, in_channels=1
        )[0]
        alpha = None
        if self._plane_abs is not None:
            alpha = quantize.box_sums(
                self._plane_abs[:, :, phy:, phx:], k, k, s
            )[0, 0] / (k * k)
        grids = (dots, alpha)
        self._phases[(phy, phx)] = grids
        return grids

    def _border_strip(
        self,
        chunk: list[tuple[int, int]],
        plane: np.ndarray,
        fill: float,
        lo: int,
        hi: int,
        rows: bool,
    ) -> np.ndarray:
        """Batched slice of the -1/0-padded window views, one side.

        Returns rows ``[lo, hi)`` (or columns, when ``rows`` is false) of
        each window's padded view — the exact strip the whole-window
        assembly would cut, without materialising the windows.
        ``fill`` is the padding value (-1 in the sign domain, 0 for the
        |x| plane).
        """
        p, w = self._stem["padding"], self._window
        wp = w + 2 * p
        shape = (
            (len(chunk), 1, hi - lo, wp) if rows else (len(chunk), 1, wp, hi - lo)
        )
        strip = np.full(shape, fill)
        # overlap of the strip with the window interior, in padded coords
        y0, y1 = max(lo, p), min(hi, p + w)
        if y1 <= y0:
            return strip
        for b, (ox, oy) in enumerate(chunk):
            if rows:
                strip[b, 0, y0 - lo : y1 - lo, p : p + w] = plane[
                    0, 0, oy + y0 - p : oy + y1 - p, ox : ox + w
                ]
            else:
                strip[b, 0, p : p + w, y0 - lo : y1 - lo] = plane[
                    0, 0, oy : oy + w, ox + y0 - p : ox + y1 - p
                ]
        return strip

    def _stem_chunk(self, chunk: list[tuple[int, int]]) -> np.ndarray:
        """Assemble stem outputs for a chunk of windows; run the rest."""
        stem = self._stem
        k, s, p = stem["k"], stem["stride"], stem["padding"]
        c_out, oh = stem["c_out"], self._oh
        i0, i1 = self._i0, self._i1
        w = self._window
        dots = np.empty((len(chunk), c_out, oh, oh), dtype=np.float64)
        alpha = (
            np.empty((len(chunk), 1, oh, oh), dtype=np.float64)
            if self._plane_abs is not None
            else None
        )
        for b, (ox, oy) in enumerate(chunk):
            phy, phx = (oy - p) % s, (ox - p) % s
            plane_dots, plane_alpha = self._phase_grids(phy, phx)
            qy, qx = (oy - p - phy) // s, (ox - p - phx) // s
            if i1 > i0:
                dots[b, :, i0:i1, i0:i1] = plane_dots[
                    :, qy + i0 : qy + i1, qx + i0 : qx + i1
                ]
                if alpha is not None:
                    alpha[b, 0, i0:i1, i0:i1] = plane_alpha[
                        qy + i0 : qy + i1, qx + i0 : qx + i1
                    ]
        if i0 > 0 or i1 < oh:
            # border cells read each window's own -1 padding: recompute
            # them from thin strips of the padded window views, batched
            # across the whole chunk (one packed conv and one box-sum
            # per border side, not per window).  Only the strips are
            # materialised — k-ish rows or columns per side, never the
            # full padded windows.
            for a0, a1, rows in (
                (0, i0, True), (i1, oh, True), (0, i0, False), (i1, oh, False),
            ):
                if a1 <= a0:
                    continue
                lo, hi = a0 * s, (a1 - 1) * s + k
                src = self._border_strip(
                    chunk, self._plane_bn, -1.0, lo, hi, rows
                )
                cols = bitpack._pack_activation_columns(src, k, s, 0)
                shape = (
                    (c_out, len(chunk), a1 - a0, oh)
                    if rows
                    else (c_out, len(chunk), oh, a1 - a0)
                )
                strip = bitpack.packed_conv_dots(
                    cols, stem["w_packed"], self._n_bits
                ).reshape(shape).transpose(1, 0, 2, 3)
                if rows:
                    dots[:, :, a0:a1, :] = strip
                else:
                    dots[:, :, :, a0:a1] = strip
                if alpha is None:
                    continue
                a_src = self._border_strip(
                    chunk, self._plane_abs, 0.0, lo, hi, rows
                )
                a_strip = quantize.box_sums(a_src, k, k, s) / (k * k)
                if rows:
                    alpha[:, :, a0:a1, :] = a_strip
                else:
                    alpha[:, :, :, a0:a1] = a_strip
        # scaling-factor application replicates the per-window kernels'
        # multiply order exactly (element-wise, so batch-independent)
        alpha_w = stem["alpha_w"][None, :, None, None]
        mode = stem["scaling"]
        if mode == "xnor":
            out = dots * alpha_w
            out *= alpha
        elif mode == "channelwise":
            out = dots * alpha
            out *= alpha_w
        else:
            out = dots * alpha_w
        for f in stem["rest"]:
            out = f(out)
        return out

    def logits(self, origins=None, batch_size: int = 256) -> np.ndarray:
        """Class logits for ``origins`` (default: all plan origins).

        ``origins`` may be any subset of the plan's origins — the
        serving layer shards contiguous ranges across workers — and the
        plan is read-only after construction, so concurrent calls are
        safe.  Returns ``(len(origins), num_classes)``.
        """
        chosen = (
            self._origins
            if origins is None
            else [(int(x), int(y)) for x, y in origins]
        )
        if not chosen:
            return np.empty((0, 0), dtype=np.float64)
        w = self._window
        outputs = []
        for start in range(0, len(chosen), batch_size):
            chunk = chosen[start : start + batch_size]
            if self._stem is not None:
                outputs.append(self._stem_chunk(chunk))
            else:
                batch = np.stack(
                    [
                        self._plane[0, :, oy : oy + w, ox : ox + w]
                        for ox, oy in chunk
                    ]
                )
                outputs.append(self._fn(batch))
        return np.concatenate(outputs, axis=0)


class PackedBNN:
    """A trained model compiled to bit-packed inference kernels.

    Parameters
    ----------
    model:
        A trained module tree built from the layer types of
        :mod:`repro.nn` and :mod:`repro.binary`.  Weights are snapshot
        at construction; later training of ``model`` does not affect the
        compiled engine.
    """

    def __init__(self, model: Module):
        if isinstance(model, Sequential):
            layer_fns = [_compile(layer) for layer in model.layers]

            def run_seq(x: np.ndarray) -> np.ndarray:
                """Execute the compiled layers in order."""
                for fn in layer_fns:
                    x = fn(x)
                return x

            self._fn: _Fn = run_seq
            self._stem_spec = _stem_plane_spec(list(model.layers), layer_fns)
        else:
            self._fn = _compile(model)
            self._stem_spec = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the compiled network on a batch."""
        return self._fn(x)

    __call__ = forward

    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference over a full array of images."""
        outputs = [
            self._fn(images[start : start + batch_size])
            for start in range(0, images.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def plan_scan(self, plane: np.ndarray, window: int, origins) -> PlaneScanPlan:
        """Compile a sliding-window scan over a rasterized plane.

        ``plane`` is the full-layout network input (``(h, w)`` or
        ``(1, c, h, w)``, already in the ±1 domain); ``window`` the
        window side in plane pixels; ``origins`` the ``(x, y)`` pixel
        origins of the windows to score.  The returned
        :class:`PlaneScanPlan` yields logits bit-identical to
        ``predict_logits`` on the stacked window slices.
        """
        return PlaneScanPlan(plane, window, origins, self._stem_spec, self._fn)

    def scan_plane(
        self, plane: np.ndarray, window: int, origins, batch_size: int = 256
    ) -> np.ndarray:
        """One-shot :meth:`plan_scan` + :meth:`PlaneScanPlan.logits`."""
        return self.plan_scan(plane, window, origins).logits(
            batch_size=batch_size
        )


class FloatEngine:
    """Float-simulation inference with the :class:`PackedBNN` interface.

    Wraps ``model.forward(training=False)`` so callers that only need
    ``forward`` / ``predict_logits`` — the serving layer's model
    registry in particular — can fall back to the float model when a
    network contains layers the packed compiler does not support, or
    when the float path is explicitly requested for comparison runs.
    Unlike :class:`PackedBNN` this is a live view of ``model``, not a
    weight snapshot.
    """

    def __init__(self, model: Module):
        self._model = model

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the float model on a batch (inference mode)."""
        return self._model.forward(x, training=False)

    __call__ = forward

    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference over a full array of images."""
        outputs = [
            self.forward(images[start : start + batch_size])
            for start in range(0, images.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)
