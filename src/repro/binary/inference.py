"""Inference engines: lowered IR programs behind stable engine classes.

Every engine here is a thin shell over the :mod:`repro.engine` stack —
a trained model is lowered **once** to the typed op-graph IR
(:func:`repro.engine.lower.lower`), compiled by a named backend from
the registry, and executed with per-op timing hooks:

* :class:`PackedBNN` — the ``"packed"`` backend: bit-packed
  XNOR/popcount kernels, the paper's deployment story (training
  simulates binarization in float, inference runs on binary
  arithmetic).
* :class:`FloatEngine` — the ``"float"`` backend: deployment float
  MACs over sign values, bit-identical to packed (exact integer dots);
  falls back to a live view of ``model.forward(training=False)`` when
  the model contains layers the IR cannot represent.
* :class:`ProgramEngine` — the generic base usable with any registered
  backend name (:func:`engine_for_backend`).
* :class:`PlaneScanPlan` — the plane-compiled sliding-window scan,
  built on the stem the IR finder exposes
  (:func:`repro.engine.lower.find_plane_stem`).

Compiled engines are numerically identical to
``model.forward(training=False)`` — verified by the test suite — and
bit-identical to *each other* (verified by ``repro.engine.parity``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..engine.backends import get_backend
from ..engine.executor import Executor, OpTimings
from ..engine.ir import FusedBinaryConvOp, Program
from ..engine.lower import (
    LoweringError,
    find_plane_stem,
    lower,
    pipeline_signature,
    run_pipeline,
)
from ..nn import functional as F
from ..nn.module import Module
from . import bitpack, quantize

__all__ = [
    "PackedBNN",
    "PlaneScanPlan",
    "FloatEngine",
    "ProgramEngine",
    "engine_for_backend",
]

_Fn = Callable[[np.ndarray], np.ndarray]


def _stem_plane_spec(
    program: Program, executor: Executor, timings: OpTimings
) -> dict | None:
    """Describe the program prefix the plane scan engine can amortize.

    Uses :func:`~repro.engine.lower.find_plane_stem` to locate the stem
    convolution — an optional run of element-wise nodes, then a
    single-input-channel binary convolution with ordinary geometry.
    Returns ``None`` (plan falls back to whole-window slicing) when no
    such stem exists.

    ``pre`` holds the *out-of-place* kernel functions of the prefix
    (the cached plane must never be mutated); ``rest`` wraps the
    remaining kernels in a sub-executor that owns its input (the plan
    hands it freshly assembled stem outputs), sharing the engine's
    timing table so plane scans show up in the per-op breakdown.
    """
    index = find_plane_stem(program)
    if index is None:
        return None
    node = program[index]
    pre = [kernel.fn for kernel in executor.kernels[:index]]
    if isinstance(node, FusedBinaryConvOp):
        # the stem's batch-norm lives inside the fused node now; the
        # plane path still needs it as an element-wise prefix, with the
        # exact out-of-place expressions of the shared batch-norm kernel
        if node.bn_scale is not None:
            scale, shift = node.bn_scale, node.bn_shift

            def bn_plane(x: np.ndarray) -> np.ndarray:
                shape = [1] * x.ndim
                shape[1] = scale.size
                out = x * scale.reshape(shape)
                out += shift.reshape(shape)
                return out

            pre.append(bn_plane)
        if node.w_binary is not None:
            w_binary, alpha_w = node.w_binary, node.alpha_w
        else:
            w_binary, alpha_w = quantize.binarize_weights(node.weight)
    else:
        w_binary, alpha_w = quantize.binarize_weights(node.weight)
    rest_exec = Executor(executor.kernels[index + 1:], timings)
    return {
        "pre": pre,
        "rest": [lambda out: rest_exec.run(out, owned=True)],
        "w_packed": bitpack.pack_filters(w_binary),
        "alpha_w": alpha_w,
        "k": node.kernel_size,
        "stride": node.stride,
        "padding": node.padding,
        "c_out": node.out_channels,
        "scaling": node.scaling,
    }


class PlaneScanPlan:
    """A compiled sliding-window scan over one rasterized plane.

    Built by :meth:`ProgramEngine.plan_scan`.  The plan pre-computes,
    once per plane, everything the stem convolution shares between
    overlapping windows:

    * the element-wise prefix (batch-norm of the stem block) applied to
      the whole plane;
    * per *phase* — the residue ``(origin - padding) mod stride`` along
      each axis — a valid (padding-free) grid of integer XNOR/popcount
      dot products covering every in-plane receptive field, via the
      tiled packed convolution;
    * the matching grid of activation scaling means (Eq. 14/15 of the
      paper), via the tap-ordered :func:`~repro.binary.quantize.box_sums`.

    :meth:`logits` then assembles each window's stem output from plane
    slices (interior cells) plus thin border strips recomputed per
    window with the window's own -1 padding, and runs the remaining
    layers batched.  Because the dot products are exact integers and
    every float operation is element-wise in the same order as the
    per-window kernels, the result is **bit-identical** to
    ``predict_logits`` on the stacked window slices — that equivalence
    is what lets the serving layer swap this path in silently.

    When the model has no plane-able stem the plan still works: it
    slices whole windows out of the plane and runs the full compiled
    network per batch (still amortizing rasterisation).
    """

    def __init__(
        self,
        plane: np.ndarray,
        window: int,
        origins,
        stem: dict | None,
        fn: _Fn,
        backend: str = "",
        pipeline: str = "",
    ):
        #: provenance: the backend name and pass-pipeline signature of
        #: the engine that compiled this plan.  Scan reports and durable
        #: journals record both, so a resume refuses to mix artifacts
        #: produced under different compilation pipelines.
        self.backend = backend
        self.pipeline = pipeline
        plane = np.asarray(plane, dtype=np.float64)
        if plane.ndim == 2:
            plane = plane[None, None]
        if plane.ndim != 4 or plane.shape[0] != 1:
            raise ValueError(
                f"expected one plane (h, w) or (1, c, h, w), got {plane.shape}"
            )
        self._plane = plane
        self._window = int(window)
        self._origins = [(int(x), int(y)) for x, y in origins]
        height, width = plane.shape[2], plane.shape[3]
        for ox, oy in self._origins:
            if not (0 <= ox <= width - self._window
                    and 0 <= oy <= height - self._window):
                raise ValueError(
                    f"window origin ({ox}, {oy}) out of plane bounds"
                )
        self._fn = fn
        self._stem = stem if plane.shape[1] == 1 else None
        if self._stem is None:
            return
        k, s, p = stem["k"], stem["stride"], stem["padding"]
        oh = F.conv_output_size(self._window, k, s, p)
        self._oh = oh
        # interior rows/cols: output cells whose receptive field lies
        # fully inside the window (no padding contribution)
        i0 = min(-(-p // s), oh)
        i1 = (self._window + p - k) // s + 1
        self._i0, self._i1 = i0, max(min(i1, oh), i0)
        x = plane
        for f in stem["pre"]:
            x = f(x)
        self._plane_bn = x
        self._plane_abs = np.abs(x) if stem["scaling"] != "none" else None
        self._n_bits = k * k
        self._phases: dict[tuple[int, int], tuple] = {}
        for ox, oy in self._origins:
            self._phase_grids((oy - p) % s, (ox - p) % s)

    @property
    def uses_plane_stem(self) -> bool:
        """Whether the stem runs fully-convolutionally on the plane."""
        return self._stem is not None

    def _phase_grids(self, phy: int, phx: int) -> tuple:
        """Valid-conv dot and scaling grids for one origin phase."""
        grids = self._phases.get((phy, phx))
        if grids is not None:
            return grids
        stem = self._stem
        k, s = stem["k"], stem["stride"]
        sub = self._plane_bn[:, :, phy:, phx:]
        dots = bitpack.binary_conv2d_packed_tiled(
            sub, stem["w_packed"], stem["c_out"], k, s, 0, in_channels=1
        )[0]
        alpha = None
        if self._plane_abs is not None:
            alpha = quantize.box_sums(
                self._plane_abs[:, :, phy:, phx:], k, k, s
            )[0, 0] / (k * k)
        grids = (dots, alpha)
        self._phases[(phy, phx)] = grids
        return grids

    def _border_strip(
        self,
        chunk: list[tuple[int, int]],
        plane: np.ndarray,
        fill: float,
        lo: int,
        hi: int,
        rows: bool,
    ) -> np.ndarray:
        """Batched slice of the -1/0-padded window views, one side.

        Returns rows ``[lo, hi)`` (or columns, when ``rows`` is false) of
        each window's padded view — the exact strip the whole-window
        assembly would cut, without materialising the windows.
        ``fill`` is the padding value (-1 in the sign domain, 0 for the
        |x| plane).
        """
        p, w = self._stem["padding"], self._window
        wp = w + 2 * p
        shape = (
            (len(chunk), 1, hi - lo, wp) if rows else (len(chunk), 1, wp, hi - lo)
        )
        strip = np.full(shape, fill)
        # overlap of the strip with the window interior, in padded coords
        y0, y1 = max(lo, p), min(hi, p + w)
        if y1 <= y0:
            return strip
        for b, (ox, oy) in enumerate(chunk):
            if rows:
                strip[b, 0, y0 - lo : y1 - lo, p : p + w] = plane[
                    0, 0, oy + y0 - p : oy + y1 - p, ox : ox + w
                ]
            else:
                strip[b, 0, p : p + w, y0 - lo : y1 - lo] = plane[
                    0, 0, oy : oy + w, ox + y0 - p : ox + y1 - p
                ]
        return strip

    def _stem_chunk(self, chunk: list[tuple[int, int]]) -> np.ndarray:
        """Assemble stem outputs for a chunk of windows; run the rest."""
        stem = self._stem
        k, s, p = stem["k"], stem["stride"], stem["padding"]
        c_out, oh = stem["c_out"], self._oh
        i0, i1 = self._i0, self._i1
        w = self._window
        dots = np.empty((len(chunk), c_out, oh, oh), dtype=np.float64)
        alpha = (
            np.empty((len(chunk), 1, oh, oh), dtype=np.float64)
            if self._plane_abs is not None
            else None
        )
        if i1 > i0:
            # per-window slice copies: each assignment is a strided
            # memcpy out of the shared phase grid, which beats any
            # fancy-indexed batch gather (those materialise a
            # (c_out, B, ni, ni) temporary plus a transposed copy)
            for b, (ox, oy) in enumerate(chunk):
                phy, phx = (oy - p) % s, (ox - p) % s
                plane_dots, plane_alpha = self._phase_grids(phy, phx)
                qy, qx = (oy - p - phy) // s, (ox - p - phx) // s
                dots[b, :, i0:i1, i0:i1] = plane_dots[
                    :, qy + i0 : qy + i1, qx + i0 : qx + i1
                ]
                if alpha is not None:
                    alpha[b, 0, i0:i1, i0:i1] = plane_alpha[
                        qy + i0 : qy + i1, qx + i0 : qx + i1
                    ]
        if i0 > 0 or i1 < oh:
            # border cells read each window's own -1 padding: recompute
            # them from thin strips of the padded window views, batched
            # across the whole chunk (one packed conv and one box-sum
            # per border side, not per window).  Only the strips are
            # materialised — k-ish rows or columns per side, never the
            # full padded windows.
            for a0, a1, rows in (
                (0, i0, True), (i1, oh, True), (0, i0, False), (i1, oh, False),
            ):
                if a1 <= a0:
                    continue
                lo, hi = a0 * s, (a1 - 1) * s + k
                src = self._border_strip(
                    chunk, self._plane_bn, -1.0, lo, hi, rows
                )
                cols = bitpack._pack_activation_columns(src, k, s, 0)
                shape = (
                    (c_out, len(chunk), a1 - a0, oh)
                    if rows
                    else (c_out, len(chunk), oh, a1 - a0)
                )
                strip = bitpack.packed_conv_dots(
                    cols, stem["w_packed"], self._n_bits
                ).reshape(shape).transpose(1, 0, 2, 3)
                if rows:
                    dots[:, :, a0:a1, :] = strip
                else:
                    dots[:, :, :, a0:a1] = strip
                if alpha is None:
                    continue
                a_src = self._border_strip(
                    chunk, self._plane_abs, 0.0, lo, hi, rows
                )
                a_strip = quantize.box_sums(a_src, k, k, s) / (k * k)
                if rows:
                    alpha[:, :, a0:a1, :] = a_strip
                else:
                    alpha[:, :, :, a0:a1] = a_strip
        # scaling-factor application replicates the per-window kernels'
        # multiply order exactly (element-wise, so batch-independent)
        alpha_w = stem["alpha_w"][None, :, None, None]
        mode = stem["scaling"]
        if mode == "xnor":
            out = dots * alpha_w
            out *= alpha
        elif mode == "channelwise":
            out = dots * alpha
            out *= alpha_w
        else:
            out = dots * alpha_w
        for f in stem["rest"]:
            out = f(out)
        return out

    def logits(self, origins=None, batch_size: int = 256) -> np.ndarray:
        """Class logits for ``origins`` (default: all plan origins).

        ``origins`` may be any subset of the plan's origins — the
        serving layer shards contiguous ranges across workers — and the
        plan is read-only after construction, so concurrent calls are
        safe.  Returns ``(len(origins), num_classes)``.
        """
        chosen = (
            self._origins
            if origins is None
            else [(int(x), int(y)) for x, y in origins]
        )
        if not chosen:
            return np.empty((0, 0), dtype=np.float64)
        w = self._window
        outputs = []
        for start in range(0, len(chosen), batch_size):
            chunk = chosen[start : start + batch_size]
            if self._stem is not None:
                outputs.append(self._stem_chunk(chunk))
            else:
                batch = np.stack(
                    [
                        self._plane[0, :, oy : oy + w, ox : ox + w]
                        for ox, oy in chunk
                    ]
                )
                outputs.append(self._fn(batch))
        return np.concatenate(outputs, axis=0)


class ProgramEngine:
    """A trained model lowered to IR and compiled by a named backend.

    Construction snapshots the model: :func:`~repro.engine.lower.lower`
    copies weights and batch-norm statistics into the IR, the backend
    packs/binarizes them once, and later training of ``model`` does not
    affect the compiled engine.

    Per-op wall-clock timings accumulate in :attr:`op_times` across
    every ``forward`` / ``predict_logits`` / plane-scan call (the table
    is thread-safe; serving drives engines from multiple threads); read
    them with :meth:`op_timings` and clear with
    :meth:`reset_op_timings`.
    """

    def __init__(
        self,
        model: Module,
        backend: str,
        passes: str | list[str] | tuple[str, ...] | None = "default",
    ):
        #: canonical signature of the pass pipeline the program was
        #: compiled under (``"none"`` when run verbatim) — recorded on
        #: scan plans, reports, and checkpoints as provenance
        self.pipeline: str = pipeline_signature(passes)
        self.program: Program | None = run_pipeline(lower(model), passes)
        self.backend_name = backend
        self.op_times = OpTimings()
        self._executor: Executor | None = get_backend(backend).compile(
            self.program, self.op_times
        )
        self._fn: _Fn = self._executor
        self._stem_spec = _stem_plane_spec(
            self.program, self._executor, self.op_times
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the compiled network on a batch."""
        return self._fn(x)

    __call__ = forward

    def predict_logits(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference over a full array of images."""
        outputs = [
            self._fn(images[start : start + batch_size])
            for start in range(0, images.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def plan_scan(self, plane: np.ndarray, window: int, origins) -> PlaneScanPlan:
        """Compile a sliding-window scan over a rasterized plane.

        ``plane`` is the full-layout network input (``(h, w)`` or
        ``(1, c, h, w)``, already in the ±1 domain); ``window`` the
        window side in plane pixels; ``origins`` the ``(x, y)`` pixel
        origins of the windows to score.  The returned
        :class:`PlaneScanPlan` yields logits bit-identical to
        ``predict_logits`` on the stacked window slices.
        """
        return PlaneScanPlan(
            plane, window, origins, self._stem_spec, self._fn,
            backend=self.backend_name, pipeline=self.pipeline,
        )

    def scan_plane(
        self, plane: np.ndarray, window: int, origins, batch_size: int = 256
    ) -> np.ndarray:
        """One-shot :meth:`plan_scan` + :meth:`PlaneScanPlan.logits`."""
        return self.plan_scan(plane, window, origins).logits(
            batch_size=batch_size
        )

    def op_timings(self) -> list[dict[str, object]]:
        """Cumulative per-op timing rows (program order) since the last
        :meth:`reset_op_timings`."""
        return self.op_times.snapshot()

    def reset_op_timings(self) -> None:
        """Zero the per-op timing table."""
        self.op_times.reset()


class PackedBNN(ProgramEngine):
    """A trained model compiled to bit-packed inference kernels.

    The ``"packed"`` backend: every binary convolution runs as
    XNOR/popcount on 64-bit words (with the table16 fast path for
    single-word stems), batch-norms are frozen per-channel affines, and
    the small float layers (pooling, dense head) run as-is.

    Parameters
    ----------
    model:
        A trained module tree built from the layer types of
        :mod:`repro.nn` and :mod:`repro.binary`.  Weights are snapshot
        at construction; later training of ``model`` does not affect the
        compiled engine.
    """

    def __init__(self, model: Module, passes="default"):
        super().__init__(model, "packed", passes)


class FloatEngine(ProgramEngine):
    """Float-arithmetic inference with the :class:`PackedBNN` interface.

    Compiles the model through the ``"float"`` backend — deployment
    float MACs over sign values, **bit-identical** to the packed
    backend (see ``repro.engine.parity``) — so comparison runs exercise
    the same lowered program on a different arithmetic substrate.

    When the model contains layers the IR cannot represent, this engine
    degrades to its historical behavior: a *live* (non-snapshot) view
    of ``model.forward(training=False)``, which by definition runs any
    layer the model itself can.  The serving registry reports that
    condition as a fallback reason.
    """

    def __init__(self, model: Module, passes="default"):
        self._model = model
        try:
            super().__init__(model, "float", passes)
            self._live = False
        except LoweringError:
            self._live = True
            self.program = None
            self.pipeline = "none"
            self.backend_name = "float"
            self.op_times = OpTimings()
            self._executor = None
            self._stem_spec = None
            self._fn = lambda x: self._model.forward(x, training=False)

    @property
    def is_live(self) -> bool:
        """Whether this engine is a live model view (no compiled IR)."""
        return self._live


def engine_for_backend(
    model: Module, backend: str, passes="default"
) -> ProgramEngine:
    """Build the engine class serving a named backend.

    ``"packed"`` and ``"float"`` map to their dedicated classes (which
    the serving layer type-checks and documents); any other registered
    backend gets a generic :class:`ProgramEngine`.  Unknown names raise
    ``ValueError`` listing the registered backends.  ``passes`` selects
    the optimization pipeline (``"default"``, ``"none"``, or a list of
    pass names — see :mod:`repro.engine.passes`).
    """
    if backend == "packed":
        return PackedBNN(model, passes)
    if backend == "float":
        return FloatEngine(model, passes)
    return ProgramEngine(model, backend, passes)
