"""Binarization math (Section 3.2 of the paper).

Implements the closed-form solution of the binarization-loss
minimisation (Eq. 4-9) and the straight-through weight gradient rule
(Eq. 13):

* ``sign(C)`` is the optimal binary vector and ``mean(|C|)`` the optimal
  scaling factor for ``min ||C - alpha * C_B||^2`` (Eq. 7).
* Weights use one scalar scale per filter, ``alpha_W = ||W||_1 / n``.
* Activations use **per-input-channel** scaling factors, computed by a
  local averaging convolution over ``|T_in|`` (Eq. 14) — the paper's
  refinement over XNOR-Net's channel-averaged map.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.activations import sign

__all__ = [
    "sign",
    "optimal_scale",
    "binarize_weights",
    "weight_ste_grad",
    "box_mean",
    "box_sums",
    "input_scale_channelwise",
    "input_scale_xnor",
]


def optimal_scale(c: np.ndarray, axis=None) -> np.ndarray:
    """Optimal scaling factor ``alpha* = ||C||_1 / n`` (Eq. 7).

    Minimises ``||C - alpha * sign(C)||^2`` for fixed sign pattern; with
    ``axis`` given, one factor per slice along the remaining axes.
    """
    return np.abs(c).mean(axis=axis)


def binarize_weights(weight: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Binarize a filter bank ``(c_out, c_in, kh, kw)``.

    Returns ``(w_binary, alpha_w)`` with ``w_binary = sign(W)`` and one
    scalar ``alpha_w`` per output filter (Eq. 8), shaped ``(c_out,)``.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4-D filter bank, got shape {weight.shape}")
    w_binary = sign(weight)
    alpha_w = optimal_scale(weight, axis=(1, 2, 3))
    return w_binary, alpha_w


def weight_ste_grad(
    weight: np.ndarray, grad_estimated: np.ndarray, alpha_w: np.ndarray
) -> np.ndarray:
    """Gradient of the loss w.r.t. the real-valued weights (Eq. 13).

    ``grad_estimated`` is the gradient w.r.t. the estimated (binarized
    and scaled) weight ``W~ = alpha_W * sign(W)``; the chain rule through
    the scale and the straight-through sign gives the element-wise
    factor ``1/n + alpha_W * 1_{|W| < 1}``, with ``n`` the kernel size.
    """
    n = weight[0].size  # c_in * kh * kw, per-filter kernel length
    alpha = alpha_w.reshape(-1, 1, 1, 1)
    ste_mask = (np.abs(weight) < 1.0).astype(weight.dtype)
    return grad_estimated * (1.0 / n + alpha * ste_mask)


def box_sums(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Sliding-window sums over the two trailing axes, *valid* positions.

    Accumulates the ``kh * kw`` shifted strided views of ``x`` in a fixed
    tap order (row-major over the kernel).  Because every output cell
    adds exactly its own receptive-field values in the same order, the
    result for a cell depends only on those values — never on the
    surrounding context — so a window cut from a larger plane yields
    bit-identical sums to the same computation on the window alone.
    The plane-compiled scan engine relies on this to share one scaling
    map across overlapping windows.
    """
    oh = (x.shape[-2] - kh) // stride + 1
    ow = (x.shape[-1] - kw) // stride + 1
    out = np.zeros(x.shape[:-2] + (oh, ow), dtype=np.result_type(x, np.float64))
    for dy in range(kh):
        for dx in range(kw):
            out += x[..., dy : dy + stride * oh : stride,
                     dx : dx + stride * ow : stride]
    return out


def box_mean(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Sliding-window mean over the two trailing axes (zero padding).

    Computes the ``K = 1/(kh*kw)`` averaging convolution of Section
    3.4.3 via :func:`box_sums` — ``kh * kw`` shifted adds per output
    cell in a fixed tap order.  Input ``(..., h, w)`` gives output
    ``(..., oh, ow)`` with the main convolution's geometry.
    """
    padded = np.pad(
        x, [(0, 0)] * (x.ndim - 2) + [(padding, padding)] * 2, mode="constant"
    )
    return box_sums(padded, kh, kw, stride) / (kh * kw)


def _local_mean_cols(
    x_abs: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Average ``|T_in|`` over each kernel window, per channel (Eq. 14).

    Returns shape ``(c, n * oh * ow)`` — matching im2col column order
    (batch-major, then output row, then output column).
    """
    means = box_mean(x_abs, kh, kw, stride, padding)  # (n, c, oh, ow)
    n, c = means.shape[:2]
    return means.transpose(1, 0, 2, 3).reshape(c, -1)


def input_scale_channelwise(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Per-channel activation scaling map ``alpha_T(c)`` (Eq. 14).

    Returns shape ``(c, n * oh * ow)`` in im2col column order; entry
    ``(c, j)`` is the mean of ``|x[channel c]|`` over receptive field
    ``j``.  Padding contributes zeros, matching a zero-padded main
    convolution.
    """
    return _local_mean_cols(np.abs(x), kh, kw, stride, padding)


def input_scale_xnor(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """XNOR-Net activation scaling map: channel-averaged ``A (*) K``.

    One scale per spatial window shared by every input channel; returned
    with shape ``(1, n * oh * ow)`` so it broadcasts against the
    channelwise variant.
    """
    # Sequential per-channel accumulation: bitwise equal to
    # ``np.abs(x).mean(axis=1)`` (numpy reduces an outer axis
    # slice-by-slice in order) but avoids materialising |x| for the
    # whole batch at once — the largest temporary in the deep layers.
    c = x.shape[1]
    a = np.abs(x[:, 0:1])
    for channel in range(1, c):
        a += np.abs(x[:, channel : channel + 1])
    if c > 1:
        a /= c
    return _local_mean_cols(a, kh, kw, stride, padding)
