"""Binarization math (Section 3.2 of the paper).

Implements the closed-form solution of the binarization-loss
minimisation (Eq. 4-9) and the straight-through weight gradient rule
(Eq. 13):

* ``sign(C)`` is the optimal binary vector and ``mean(|C|)`` the optimal
  scaling factor for ``min ||C - alpha * C_B||^2`` (Eq. 7).
* Weights use one scalar scale per filter, ``alpha_W = ||W||_1 / n``.
* Activations use **per-input-channel** scaling factors, computed by a
  local averaging convolution over ``|T_in|`` (Eq. 14) — the paper's
  refinement over XNOR-Net's channel-averaged map.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.activations import sign

__all__ = [
    "sign",
    "optimal_scale",
    "binarize_weights",
    "weight_ste_grad",
    "box_mean",
    "input_scale_channelwise",
    "input_scale_xnor",
]


def optimal_scale(c: np.ndarray, axis=None) -> np.ndarray:
    """Optimal scaling factor ``alpha* = ||C||_1 / n`` (Eq. 7).

    Minimises ``||C - alpha * sign(C)||^2`` for fixed sign pattern; with
    ``axis`` given, one factor per slice along the remaining axes.
    """
    return np.abs(c).mean(axis=axis)


def binarize_weights(weight: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Binarize a filter bank ``(c_out, c_in, kh, kw)``.

    Returns ``(w_binary, alpha_w)`` with ``w_binary = sign(W)`` and one
    scalar ``alpha_w`` per output filter (Eq. 8), shaped ``(c_out,)``.
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4-D filter bank, got shape {weight.shape}")
    w_binary = sign(weight)
    alpha_w = optimal_scale(weight, axis=(1, 2, 3))
    return w_binary, alpha_w


def weight_ste_grad(
    weight: np.ndarray, grad_estimated: np.ndarray, alpha_w: np.ndarray
) -> np.ndarray:
    """Gradient of the loss w.r.t. the real-valued weights (Eq. 13).

    ``grad_estimated`` is the gradient w.r.t. the estimated (binarized
    and scaled) weight ``W~ = alpha_W * sign(W)``; the chain rule through
    the scale and the straight-through sign gives the element-wise
    factor ``1/n + alpha_W * 1_{|W| < 1}``, with ``n`` the kernel size.
    """
    n = weight[0].size  # c_in * kh * kw, per-filter kernel length
    alpha = alpha_w.reshape(-1, 1, 1, 1)
    ste_mask = (np.abs(weight) < 1.0).astype(weight.dtype)
    return grad_estimated * (1.0 / n + alpha * ste_mask)


def box_mean(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Sliding-window mean over the two trailing axes (zero padding).

    Computes the ``K = 1/(kh*kw)`` averaging convolution of Section
    3.4.3 with an integral image (two cumulative sums), so the scaling
    maps cost O(pixels) instead of an im2col pass.  Input ``(..., h, w)``
    gives output ``(..., oh, ow)`` with the main convolution's geometry.
    """
    padded = np.pad(
        x,
        [(0, 0)] * (x.ndim - 2) + [(padding + 1, padding), (padding + 1, padding)],
        mode="constant",
    )
    integral = padded.cumsum(axis=-2).cumsum(axis=-1)
    h = x.shape[-2] + 2 * padding
    w = x.shape[-1] + 2 * padding
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    rows = np.arange(oh) * stride
    cols = np.arange(ow) * stride
    top, bottom = rows[:, None], rows[:, None] + kh
    left, right = cols[None, :], cols[None, :] + kw
    sums = (
        integral[..., bottom, right]
        - integral[..., top, right]
        - integral[..., bottom, left]
        + integral[..., top, left]
    )
    return sums / (kh * kw)


def _local_mean_cols(
    x_abs: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Average ``|T_in|`` over each kernel window, per channel (Eq. 14).

    Returns shape ``(c, n * oh * ow)`` — matching im2col column order
    (batch-major, then output row, then output column).
    """
    means = box_mean(x_abs, kh, kw, stride, padding)  # (n, c, oh, ow)
    n, c = means.shape[:2]
    return means.transpose(1, 0, 2, 3).reshape(c, -1)


def input_scale_channelwise(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Per-channel activation scaling map ``alpha_T(c)`` (Eq. 14).

    Returns shape ``(c, n * oh * ow)`` in im2col column order; entry
    ``(c, j)`` is the mean of ``|x[channel c]|`` over receptive field
    ``j``.  Padding contributes zeros, matching a zero-padded main
    convolution.
    """
    return _local_mean_cols(np.abs(x), kh, kw, stride, padding)


def input_scale_xnor(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """XNOR-Net activation scaling map: channel-averaged ``A (*) K``.

    One scale per spatial window shared by every input channel; returned
    with shape ``(1, n * oh * ow)`` so it broadcasts against the
    channelwise variant.
    """
    a = np.abs(x).mean(axis=1, keepdims=True)
    return _local_mean_cols(a, kh, kw, stride, padding)
