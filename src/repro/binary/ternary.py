"""Ternary-weight convolution (the {+1, 0, -1} point of Section 2.2).

The paper's background positions binarization among other quantization
schemes — notably ternary weights (Hwang & Sung's +1/0/-1 nets).  This
layer implements Ternary Weight Networks-style quantization so the
quantization ladder (float -> int8 -> ternary -> binary) can be
measured end to end on the hotspot task:

* threshold ``delta = 0.7 * mean|W|`` per filter;
* weights inside ``[-delta, delta]`` quantize to 0, the rest to sign;
* one scaling factor per filter: the mean magnitude of the surviving
  (non-zero) weights — the L2-optimal choice given the pattern.

Activations stay full precision (the usual TWN setting), so the layer
slots into otherwise-float networks.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn import init
from ..nn.module import Module, Parameter

__all__ = ["ternarize_weights", "TernaryConv2D"]


def ternarize_weights(
    weight: np.ndarray, threshold_factor: float = 0.7
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a filter bank to {+1, 0, -1} with per-filter scales.

    Returns ``(w_ternary, alpha)`` with ``alpha`` shaped ``(c_out,)``.
    Filters whose weights all fall below threshold keep a zero pattern
    and zero scale (they contribute nothing until they regrow).
    """
    if weight.ndim != 4:
        raise ValueError(f"expected 4-D filter bank, got shape {weight.shape}")
    magnitude = np.abs(weight)
    delta = threshold_factor * magnitude.mean(axis=(1, 2, 3), keepdims=True)
    pattern = np.where(magnitude > delta, np.sign(weight), 0.0)
    survivors = np.abs(pattern).sum(axis=(1, 2, 3))
    kept_mass = (magnitude * np.abs(pattern)).sum(axis=(1, 2, 3))
    alpha = np.divide(kept_mass, survivors,
                      out=np.zeros_like(kept_mass), where=survivors > 0)
    return pattern, alpha


class TernaryConv2D(Module):
    """Convolution with ternarized weights and full-precision activations.

    Training uses the straight-through estimator through the
    quantization, mirroring :class:`~repro.binary.binary_conv.BinaryConv2D`:
    the real-valued master weights receive the gradient of the estimated
    (ternary, scaled) weights.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        threshold_factor: float = 0.7,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.xavier_uniform(shape, rng))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.threshold_factor = threshold_factor
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        pattern, alpha = ternarize_weights(self.weight.data,
                                           self.threshold_factor)
        w_est = alpha.reshape(-1, 1, 1, 1) * pattern
        out, cols = F.conv2d_forward(x, w_est, None, self.stride, self.padding)
        if training:
            self._cache = {
                "cols": cols,
                "x_shape": x.shape,
                "w_est": w_est,
            }
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._cache is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        cache = self._cache
        grad_x, grad_w_est, _ = F.conv2d_backward(
            grad, cache["cols"], cache["x_shape"], cache["w_est"],
            self.stride, self.padding, with_bias=False,
        )
        # straight-through: pass the estimated-weight gradient to the
        # master weights unchanged (the TWN training rule)
        self.weight.grad += grad_w_est
        return grad_x

    def clip_weights(self) -> None:
        """Clamp master weights to [-1, 1] (keeps quantization centred)."""
        np.clip(self.weight.data, -1.0, 1.0, out=self.weight.data)

    def sparsity(self) -> float:
        """Fraction of weights currently quantized to zero."""
        pattern, _ = ternarize_weights(self.weight.data, self.threshold_factor)
        return float((pattern == 0).mean())
