"""Full-chip streaming scan with bounded memory + incremental ECO re-scan.

The monolithic serving path (:meth:`repro.serve.service.HotspotService.
scan`) rasterizes a whole clip as one plane — fine for verification
clips, quadratic-memory-impossible for a chip.  This package streams
the same sweep instead:

* :mod:`~repro.chip.tiling` cuts the origin grid into halo-correct
  tiles sized from a byte budget;
* :mod:`~repro.chip.index` serves each tile's geometry from a bucketed
  spatial index, in raster accumulation order;
* :mod:`~repro.chip.scanner` rasterizes and scores tile by tile —
  bit-identical to the monolithic scan, peak plane memory bounded —
  and re-scans only the windows a layout edit dirtied
  (:mod:`~repro.chip.eco`);
* :mod:`~repro.chip.heatmap` is the aggregated per-origin result.

``python -m repro.chip.parity`` is the CI gate holding both
bit-identity lines (streamed-vs-monolithic, re-scan-vs-scratch) on
every engine backend.
"""

from .eco import DirtyRegionTracker
from .heatmap import HotspotHeatmap, HotspotSite
from .index import RectIndex
from .scanner import (
    DEFAULT_TILE_BUDGET,
    ChipScanJob,
    ChipScanner,
    ChipScanResult,
)
from .tiling import TileGrid, TileSpec, origin_steps, plan_tiles

__all__ = [
    "ChipScanJob",
    "ChipScanner",
    "ChipScanResult",
    "DEFAULT_TILE_BUDGET",
    "DirtyRegionTracker",
    "HotspotHeatmap",
    "HotspotSite",
    "RectIndex",
    "TileGrid",
    "TileSpec",
    "origin_steps",
    "plan_tiles",
]
