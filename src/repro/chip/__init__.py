"""Full-chip streaming scan with bounded memory + incremental ECO re-scan.

The monolithic serving path (:meth:`repro.serve.service.HotspotService.
scan`) rasterizes a whole clip as one plane — fine for verification
clips, quadratic-memory-impossible for a chip.  This package streams
the same sweep instead:

* :mod:`~repro.chip.tiling` cuts the origin grid into halo-correct
  tiles sized from a byte budget;
* :mod:`~repro.chip.index` serves each tile's geometry from a bucketed
  spatial index, in raster accumulation order;
* :mod:`~repro.chip.scanner` rasterizes and scores tile by tile —
  bit-identical to the monolithic scan, peak plane memory bounded —
  and re-scans only the windows a layout edit dirtied
  (:mod:`~repro.chip.eco`);
* :mod:`~repro.chip.heatmap` is the aggregated per-origin result;
* :mod:`~repro.chip.journal` + :mod:`~repro.chip.durable` make long
  scans crash-safe: a checksummed tile-completion journal, kill-anywhere
  resume, retry with deterministic backoff, and poison-window
  quarantine by spatial bisection.

``python -m repro.chip.parity`` is the CI gate holding both
bit-identity lines (streamed-vs-monolithic, re-scan-vs-scratch) on
every engine backend; ``--chaos`` adds the durability gate
(kill/resume bit-identity, torn/corrupt journal refusal, bounded
retries, minimal quarantine).
"""

from .durable import DurableChipScan, RetryPolicy, ScanPreemptedError
from .eco import DirtyRegionTracker
from .heatmap import HotspotHeatmap, HotspotSite
from .index import RectIndex
from .journal import (
    JournalContents,
    JournalCorruptError,
    JournalError,
    JournalMismatchError,
    JournalTruncatedError,
    ScanJournal,
    TileRecord,
    journal_header,
    layout_fingerprint,
    read_journal,
    snapshot_journal,
)
from .scanner import (
    DEFAULT_TILE_BUDGET,
    ChipScanJob,
    ChipScanner,
    ChipScanResult,
)
from .tiling import TileGrid, TileSpec, origin_steps, plan_tiles, split_tile

__all__ = [
    "ChipScanJob",
    "ChipScanner",
    "ChipScanResult",
    "DEFAULT_TILE_BUDGET",
    "DirtyRegionTracker",
    "DurableChipScan",
    "HotspotHeatmap",
    "HotspotSite",
    "JournalContents",
    "JournalCorruptError",
    "JournalError",
    "JournalMismatchError",
    "JournalTruncatedError",
    "RectIndex",
    "RetryPolicy",
    "ScanJournal",
    "ScanPreemptedError",
    "TileGrid",
    "TileRecord",
    "TileSpec",
    "journal_header",
    "layout_fingerprint",
    "origin_steps",
    "plan_tiles",
    "read_journal",
    "snapshot_journal",
    "split_tile",
]
