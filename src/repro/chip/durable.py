"""Durable chip-scan jobs: journaled resume, retry/backoff, quarantine.

:class:`DurableChipScan` wraps a :class:`~repro.chip.scanner.ChipScanner`
sweep in the robustness layer long scans need (mirroring what
``repro.train`` gives training):

* **Crash safety** — every completed tile is appended to a
  :class:`~repro.chip.journal.ScanJournal` (checksummed, fsynced)
  before the scan moves on.  Kill the process anywhere, run again with
  ``resume=True``, and the journaled tiles are *replayed* while only
  the pending tiles are re-scored — the final heatmap is bit-identical
  to an uninterrupted run (the engine is bit-exact, so replay vs
  re-compute is indistinguishable).
* **Retry with backoff** — tile failures are classified transient vs
  permanent by :class:`RetryPolicy`; transients are re-attempted in
  later *waves* with capped exponential backoff and deterministic
  jitter (seeded, keyed by attempt — never wall clock), bounded both
  per tile (``max_retries``) and per job (``retry_budget``).
* **Poison quarantine** — a tile that keeps failing is *bisected*
  (:func:`~repro.chip.tiling.split_tile`, the spatial arm of the batch
  bisection idea): each half is scored independently, recursing until
  the failure is cornered in single windows, which are quarantined
  (NaN + listed).  Every window outside the poison region scores
  bit-identically to a fault-free run.
* **Graceful preemption** — SIGINT/SIGTERM (with
  ``handle_signals=True``, main thread only) or an explicit
  :meth:`DurableChipScan.request_preemption` finishes the in-flight
  tile, flushes the journal, and raises :class:`ScanPreemptedError`
  naming the resumable journal — exactly the train loop's contract.

The chaos gate (``python -m repro.chip.parity --chaos``) holds all
four properties in CI.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..litho.geometry import Clip
from .journal import JournalCorruptError, ScanJournal, journal_header
from .scanner import DEFAULT_TILE_BUDGET, ChipScanJob, ChipScanResult
from .tiling import TileSpec, split_tile

__all__ = ["DurableChipScan", "RetryPolicy", "ScanPreemptedError"]


class ScanPreemptedError(RuntimeError):
    """A durable scan stopped gracefully on request (resumable).

    ``journal`` names the flushed journal; ``completed`` of ``total``
    tiles are already recorded there, so re-running with
    ``resume=True`` continues instead of starting over.
    """

    def __init__(self, message: str, journal, completed: int, total: int):
        super().__init__(message)
        self.journal = journal
        self.completed = completed
        self.total = total


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for tile failures.

    ``permanent`` exception types (deterministic programming errors —
    bad geometry, shape bugs) are never retried: the same inputs would
    fail the same way.  Everything else is presumed transient (worker
    died, I/O hiccup, injected fault) and re-attempted up to
    ``max_retries`` times per tile, capped globally by ``retry_budget``
    re-attempts per job so a sick fleet cannot retry forever.

    The backoff before attempt ``k`` (1-based) is capped exponential
    with deterministic jitter::

        min(max_delay_s, base_delay_s * 2**(k-1)) * (0.5 + 0.5 * u)

    where ``u`` is drawn from a generator seeded by ``(seed, key, k)``
    — a pure function of the policy and the retry position, never of
    wall clock, so a chaos run's schedule is exactly reproducible.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    retry_budget: int = 64
    seed: int = 0
    permanent: tuple[type, ...] = (ValueError, TypeError)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying."""
        return not isinstance(exc, self.permanent)

    def delay_s(self, attempt: int, key: int = 0) -> float:
        """Deterministically jittered backoff before retry ``attempt``."""
        if attempt < 1:
            return 0.0
        base = min(self.max_delay_s,
                   self.base_delay_s * (2.0 ** (attempt - 1)))
        u = float(np.random.default_rng(
            (self.seed, key, attempt)
        ).random())
        return base * (0.5 + 0.5 * u)


@dataclass
class _Progress:
    """Mutable per-run accounting threaded through the scoring passes."""

    scores: np.ndarray
    journal: ScanJournal
    quarantined: set = field(default_factory=set)
    replayed: int = 0
    scored: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    total: int = 0

    @property
    def completed(self) -> int:
        return self.replayed + self.scored


class DurableChipScan:
    """One journaled, retrying, resumable streaming sweep.

    Parameters mirror :meth:`ChipScanner.scan` plus the durability
    knobs; :meth:`run` returns the same :class:`ChipScanResult` a plain
    scan would, with the durability counters in ``result.stats``
    (``resumed``, ``tiles_replayed``, ``tiles_scored``,
    ``tile_retries``, ``backoff_s``, ``quarantined_windows``,
    ``journal``).

    ``sleep`` and ``tile_hook`` are test seams: ``sleep`` receives the
    backoff delays (patch it to keep chaos tests fast), ``tile_hook``
    is called with the tile index after each tile is durably journaled
    (the chaos harness's kill vector — raising from it models a crash
    at a tile boundary, *after* the fsync).  ``wave_size`` bounds how
    many tiles a concurrent wave (``run(parallel=...)``) scores
    between journal flushes — the most scoring work a crash or
    preemption can lose; the sequential path journals every tile.
    """

    def __init__(
        self,
        scanner,
        layout: Clip,
        window: int,
        stride: int,
        tile_budget: int = DEFAULT_TILE_BUDGET,
        journal=None,
        resume: bool = False,
        policy: RetryPolicy | None = None,
        token: str | None = None,
        handle_signals: bool = False,
        sleep=time.sleep,
        tile_hook=None,
        wave_size: int = 32,
    ):
        if journal is None:
            raise ValueError("a durable scan needs a journal= path")
        if wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        self.scanner = scanner
        self.layout = layout
        self.window = window
        self.stride = stride
        self.tile_budget = tile_budget
        self.journal_path = journal
        self.resume = resume
        self.policy = policy if policy is not None else RetryPolicy()
        self.token = token
        self.handle_signals = handle_signals
        self._sleep = sleep
        self._tile_hook = tile_hook
        self.wave_size = wave_size
        self._preempted = False
        self._preempt_reason = "preemption requested"
        self._score_fn = None  # bound to the compiled job in run()

    # -- preemption ------------------------------------------------------

    def request_preemption(
        self, reason: str = "preemption requested"
    ) -> None:
        """Stop after the in-flight tile; the journal stays resumable."""
        self._preempt_reason = reason
        self._preempted = True

    def _install_signal_handlers(self):
        if not self.handle_signals:
            return []
        if threading.current_thread() is not threading.main_thread():
            return []
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            def handler(sig, frame, _name=signal.Signals(signum).name):
                self.request_preemption(f"received {_name}")
            try:
                installed.append((signum, signal.signal(signum, handler)))
            except (ValueError, OSError):  # pragma: no cover - platform
                break
        return installed

    @staticmethod
    def _restore_signal_handlers(handlers) -> None:
        for signum, previous in handlers:
            signal.signal(signum, previous)

    def _check_preempt(self, progress: _Progress) -> None:
        if self._preempted:
            raise ScanPreemptedError(
                f"{self._preempt_reason}; journal {progress.journal.path} "
                f"holds {progress.completed} of {progress.total} tiles — "
                f"resume to continue",
                journal=progress.journal.path,
                completed=progress.completed,
                total=progress.total,
            )

    # -- the run ---------------------------------------------------------

    def run(self, parallel=None) -> ChipScanResult:
        """Execute (or resume) the sweep; returns a full scan result.

        ``parallel`` optionally scores one retry wave concurrently:
        called as ``parallel(tiles, score_fn)`` it must return one
        entry per tile — the score block or the exception that killed
        it (the serving layer backs this with its worker pool).  The
        default scores sequentially; both are bit-identical.
        """
        started = time.perf_counter()
        job = self.scanner.compile(
            self.layout, self.window, self.stride, self.tile_budget,
            token=self.token,
        )
        engine = self.scanner.engine
        header = journal_header(
            self.layout, job.grid, self.scanner.image_size,
            backend=getattr(engine, "backend_name", ""),
            pipeline=getattr(engine, "pipeline", ""),
        )
        if self.resume:
            journal, contents = ScanJournal.resume(
                self.journal_path, header
            )
        else:
            journal = ScanJournal.create(self.journal_path, header)
            contents = None
        progress = _Progress(
            scores=job.empty_scores(), journal=journal,
            total=len(job.tiles),
        )
        pending: list[tuple[int, TileSpec]] = []
        for index, tile in enumerate(job.tiles):
            record = contents.tiles.get(index) if contents else None
            if record is None:
                pending.append((index, tile))
                continue
            block = np.asarray(record.scores)
            shape = (tile.iy1 - tile.iy0, tile.ix1 - tile.ix0)
            if block.shape != shape:
                raise JournalCorruptError(
                    f"journal {journal.path}: tile {index} holds a "
                    f"{block.shape} block, grid expects {shape}"
                )
            progress.scores[tile.iy0:tile.iy1, tile.ix0:tile.ix1] = block
            progress.quarantined.update(record.quarantined)
            progress.replayed += 1
        resumed = progress.replayed > 0
        self._score_fn = job.score_tile
        handlers = self._install_signal_handlers()
        try:
            self._scan_pending(job, pending, progress, parallel)
        finally:
            self._restore_signal_handlers(handlers)
            journal.close()
        return ChipScanResult(
            layout=self.layout, heatmap=job.heatmap(progress.scores),
            job=job, tile_budget=job.grid.tile_budget,
            tiles=len(job.tiles), windows=job.grid.n_windows,
            peak_tile_bytes=job.peak_tile_bytes,
            wall_s=time.perf_counter() - started, token=self.token,
            stats={
                "resumed": resumed,
                "tiles_replayed": progress.replayed,
                "tiles_scored": progress.scored,
                "tile_retries": progress.retries,
                "backoff_s": progress.backoff_s,
                "quarantined_windows": tuple(sorted(progress.quarantined)),
                "journal": str(journal.path),
            },
        )

    # -- scoring passes --------------------------------------------------

    def _commit(
        self,
        job: ChipScanJob,
        progress: _Progress,
        index: int,
        tile: TileSpec,
        block: np.ndarray,
        quarantined: tuple[tuple[int, int], ...] = (),
    ) -> None:
        """Fill the grid and durably journal one resolved tile."""
        progress.scores[tile.iy0:tile.iy1, tile.ix0:tile.ix1] = block
        progress.journal.append_tile(index, block, quarantined)
        progress.quarantined.update(quarantined)
        progress.scored += 1
        if self._tile_hook is not None:
            self._tile_hook(index)

    def _score_wave(self, tiles: list[TileSpec], parallel) -> list:
        """Score one wave concurrently; one block-or-exception per tile."""
        out = list(parallel(tiles, self._score_fn))
        if len(out) != len(tiles):
            raise RuntimeError(
                f"parallel hook returned {len(out)} results for "
                f"{len(tiles)} tiles"
            )
        return out

    def _scan_pending(
        self,
        job: ChipScanJob,
        pending: list[tuple[int, TileSpec]],
        progress: _Progress,
        parallel,
    ) -> None:
        policy = self.policy
        persistent: list[tuple[int, TileSpec, BaseException]] = []
        remaining = list(pending)
        attempt = 0
        while remaining:
            if attempt > 0:
                delay = policy.delay_s(attempt)
                progress.backoff_s += delay
                if delay > 0.0:
                    self._sleep(delay)
            next_round: list[tuple[int, TileSpec]] = []

            def settle(index, tile, outcome):
                if isinstance(outcome, BaseException):
                    if (policy.is_transient(outcome)
                            and attempt < policy.max_retries
                            and progress.retries < policy.retry_budget):
                        progress.retries += 1
                        next_round.append((index, tile))
                    else:
                        persistent.append((index, tile, outcome))
                    return
                self._commit(job, progress, index, tile,
                             np.asarray(outcome))

            if parallel is None:
                # sequential: score then commit tile by tile, so a
                # preemption (or a crash) loses at most one tile's
                # scoring work — never a whole wave's
                for index, tile in remaining:
                    if self._preempted:
                        break  # stays pending; journal already flushed
                    try:
                        outcome = self._score_fn(tile)
                    except Exception as exc:  # noqa: BLE001
                        outcome = exc
                    settle(index, tile, outcome)
            else:
                # concurrent: bounded chunks, journaled between chunks,
                # so a crash or preemption mid-scan loses at most
                # wave_size tiles of scoring work — never the whole
                # sweep's
                for start in range(0, len(remaining), self.wave_size):
                    if self._preempted:
                        break  # uncommitted tiles stay pending
                    batch = remaining[start:start + self.wave_size]
                    wave = self._score_wave(
                        [tile for _, tile in batch], parallel
                    )
                    for (index, tile), outcome in zip(batch, wave):
                        settle(index, tile, outcome)
            self._check_preempt(progress)
            remaining = next_round
            attempt += 1
        # persistently-failing tiles: corner the poison by bisection
        for index, tile, _exc in sorted(persistent, key=lambda t: t[0]):
            block = np.full(
                (tile.iy1 - tile.iy0, tile.ix1 - tile.ix0), np.nan
            )
            quarantined = self._bisect_into(job, tile, progress, block)
            self._commit(job, progress, index, tile, block,
                         tuple(sorted(quarantined)))
            self._check_preempt(progress)

    def _attempt_tile(
        self, tile: TileSpec, progress: _Progress
    ) -> np.ndarray:
        """Score one (sub-)tile with budget-bounded transient retries."""
        policy = self.policy
        attempt = 0
        while True:
            try:
                return np.asarray(self._score_fn(tile))
            except Exception as exc:  # noqa: BLE001 - classified here
                if (not policy.is_transient(exc)
                        or attempt >= policy.max_retries
                        or progress.retries >= policy.retry_budget):
                    raise
                attempt += 1
                progress.retries += 1
                delay = policy.delay_s(attempt, key=tile.ix0 * 65536
                                       + tile.iy0)
                progress.backoff_s += delay
                if delay > 0.0:
                    self._sleep(delay)

    def _bisect_into(
        self,
        job: ChipScanJob,
        tile: TileSpec,
        progress: _Progress,
        block: np.ndarray,
        parent: TileSpec | None = None,
    ) -> list[tuple[int, int]]:
        """Recursively score ``tile``, writing into the parent ``block``.

        Returns the quarantined origin indices.  Sub-tile scoring is
        bit-identical to scoring the same windows in the parent tile
        (:func:`split_tile` keeps sub-regions halo-correct), so every
        window outside the final quarantine matches a fault-free run.
        """
        root = parent if parent is not None else tile
        try:
            scored = self._attempt_tile(tile, progress)
        except Exception:  # noqa: BLE001 - quarantine path
            if tile.n_origins == 1:
                # smallest tile: one window; NaN in block already
                return [(tile.ix0, tile.iy0)]
            first, second = split_tile(job.grid, tile)
            return (
                self._bisect_into(job, first, progress, block, root)
                + self._bisect_into(job, second, progress, block, root)
            )
        block[tile.iy0 - root.iy0:tile.iy1 - root.iy0,
              tile.ix0 - root.ix0:tile.ix1 - root.ix0] = scored
        return []
