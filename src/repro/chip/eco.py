"""Dirty-region tracking for incremental (ECO) re-scans.

After a layout edit, almost every window of a full-chip sweep is
untouched: a window's classification reads exactly the pixels of its
own ``window x window`` nm extent (that *is* the network's receptive
field — the plane-compiled stem recomputes window borders with the
window's own padding, so nothing outside the window ever reaches the
logits).  A window therefore needs re-scoring **iff** its extent
overlaps a region whose geometry changed.

:class:`DirtyRegionTracker` turns an edit list into that exact window
set: per edited rectangle (both positions of a move), a bisection over
the sweep's origin steps yields the half-open index ranges of
overlapping windows per axis, and the union over edits is the dirty
set.  Everything else keeps its previous score bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence

import numpy as np

from ..litho.fullchip import LayoutEdit
from ..litho.geometry import Rect

__all__ = ["DirtyRegionTracker"]


class DirtyRegionTracker:
    """Maps layout edits to the window set whose scores can change."""

    def __init__(self, steps: Sequence[int], window: int):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.steps = list(steps)
        self.window = window

    def dirty_rects(self, edits: Iterable[LayoutEdit]) -> list[Rect]:
        """The nm regions whose raster content the edits can change."""
        rects: list[Rect] = []
        for edit in edits:
            rects.extend(edit.dirty_rects())
        return rects

    def _axis_range(self, lo: int, hi: int) -> tuple[int, int]:
        """Index range of origins whose window ``[s, s + w)`` overlaps
        the open nm interval ``(lo, hi)`` — strict overlap, because a
        rectangle touching a window's border contributes zero coverage
        to its raster."""
        start = bisect_right(self.steps, lo - self.window)
        stop = bisect_left(self.steps, hi)
        return start, stop

    def dirty_windows(
        self, edits: Iterable[LayoutEdit]
    ) -> list[tuple[int, int]]:
        """Origin-grid indices ``(i, j)`` needing re-scoring, sorted
        row-major (j, then i) — the sweep's window order."""
        dirty: set[tuple[int, int]] = set()
        for rect in self.dirty_rects(edits):
            x0, x1 = self._axis_range(rect.x0, rect.x1)
            y0, y1 = self._axis_range(rect.y0, rect.y1)
            for j in range(y0, y1):
                for i in range(x0, x1):
                    dirty.add((i, j))
        return sorted(dirty, key=lambda ij: (ij[1], ij[0]))

    @staticmethod
    def unscored_windows(scores: np.ndarray) -> list[tuple[int, int]]:
        """Origin indices ``(i, j)`` of NaN (never-scored) heatmap
        entries, sorted row-major like :meth:`dirty_windows`.

        A degraded scan leaves failed tiles NaN; a re-scan folds these
        into its dirty set so a recovered tile is scored instead of
        propagating NaN forever.
        """
        return [
            (int(i), int(j)) for j, i in np.argwhere(np.isnan(scores))
        ]

    def dirty_fraction(self, edits: Iterable[LayoutEdit]) -> float:
        """Dirty windows as a fraction of the sweep (bench axis)."""
        total = len(self.steps) ** 2
        return len(self.dirty_windows(edits)) / total if total else 0.0
