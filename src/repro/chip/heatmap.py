"""Hotspot heatmap: the aggregated result of a full-chip sweep.

The streaming scan never materialises "all windows" anywhere — what it
keeps is one float64 score per origin, arranged on the sweep's origin
grid.  :class:`HotspotHeatmap` is that grid plus enough geometry to map
it back to nanometres: per-origin scores (hotspot logit minus
non-hotspot logit, exactly the serving layer's decision score),
hotspot extraction at a decision bias, and summary statistics.
``NaN`` entries mark origins that were never scored (failed tiles of a
degraded scan).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HotspotSite", "HotspotHeatmap"]


@dataclass(frozen=True)
class HotspotSite:
    """One window flagged as a hotspot (layout coordinates, nm)."""

    x0: int
    y0: int
    x1: int
    y1: int
    score: float


@dataclass
class HotspotHeatmap:
    """Per-origin logit map of one sweep.

    ``scores[j, i]`` is the decision score of the window at origin
    ``(steps[i], steps[j])`` — row-major like the serving layer's
    origin order, so flattening the grid reproduces the monolithic
    scan's window order exactly.
    """

    layout_size: int
    window: int
    stride: int
    steps: tuple[int, ...]
    scores: np.ndarray

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        expected = (len(self.steps), len(self.steps))
        if self.scores.shape != expected:
            raise ValueError(
                f"scores shape {self.scores.shape} does not match the "
                f"{expected} origin grid"
            )

    @property
    def n_windows(self) -> int:
        """Origins in the sweep (scored or not)."""
        return self.scores.size

    @property
    def n_unscored(self) -> int:
        """Origins never scored (NaN entries; 0 for a healthy scan)."""
        return int(np.isnan(self.scores).sum())

    def hits(self, bias: float = 0.0) -> list[HotspotSite]:
        """Windows whose score exceeds ``bias``, in row-major order."""
        flagged = np.argwhere(np.nan_to_num(self.scores, nan=-np.inf) > bias)
        w = self.window
        return [
            HotspotSite(self.steps[i], self.steps[j],
                        self.steps[i] + w, self.steps[j] + w,
                        float(self.scores[j, i]))
            for j, i in flagged
        ]

    def summary(self, bias: float = 0.0) -> dict[str, object]:
        """Headline statistics of the sweep."""
        scored = self.scores[~np.isnan(self.scores)]
        hotspots = int((scored > bias).sum())
        return {
            "layout_size_nm": self.layout_size,
            "window": self.window,
            "stride": self.stride,
            "windows": self.n_windows,
            "unscored": self.n_unscored,
            "hotspots": hotspots,
            "hotspot_rate": (hotspots / scored.size) if scored.size else 0.0,
            "score_min": float(scored.min()) if scored.size else 0.0,
            "score_max": float(scored.max()) if scored.size else 0.0,
            "score_mean": float(scored.mean()) if scored.size else 0.0,
        }

    def copy(self) -> "HotspotHeatmap":
        """Deep copy (the ECO merge path mutates the copy's scores)."""
        return HotspotHeatmap(
            layout_size=self.layout_size, window=self.window,
            stride=self.stride, steps=self.steps,
            scores=self.scores.copy(),
        )

    def equals(self, other: "HotspotHeatmap") -> bool:
        """Bit-exact equality (NaN-aware) of geometry and scores."""
        return (
            self.layout_size == other.layout_size
            and self.window == other.window
            and self.stride == other.stride
            and self.steps == other.steps
            and np.array_equal(self.scores, other.scores, equal_nan=True)
        )

    def save_npz(self, path) -> None:
        """Persist the heatmap as an ``.npz`` archive."""
        np.savez_compressed(
            path,
            layout_size=np.int64(self.layout_size),
            window=np.int64(self.window),
            stride=np.int64(self.stride),
            steps=np.asarray(self.steps, dtype=np.int64),
            scores=self.scores,
        )

    @classmethod
    def load_npz(cls, path) -> "HotspotHeatmap":
        """Inverse of :meth:`save_npz`."""
        with np.load(path) as archive:
            return cls(
                layout_size=int(archive["layout_size"]),
                window=int(archive["window"]),
                stride=int(archive["stride"]),
                steps=tuple(int(s) for s in archive["steps"]),
                scores=archive["scores"],
            )
