"""Bucketed spatial index over a layout's rectangles.

A full-chip layout holds too many rectangles to walk per tile —
rasterizing T tiles by scanning all N rectangles each time is
``O(N * T)``.  :class:`RectIndex` hashes every rectangle into the
coarse grid buckets it overlaps, so a tile query touches only the
rectangles near the tile: build is ``O(N)``, a query is proportional
to the geometry actually in the queried region.

Two properties the streaming scan leans on:

* **Order-preserving**: every rectangle gets a monotonically
  increasing id at insertion, and queries return matches sorted by id
  — i.e. in layout insertion order, which is the raster accumulation
  order the bit-identity contract of
  :func:`repro.litho.raster.rasterize_region` requires.
* **Incrementally editable**: :meth:`apply` mirrors the list semantics
  of :func:`repro.litho.fullchip.apply_edits` (remove-first-equal,
  append-on-add) in ``O(edit)`` instead of rebuilding, so an ECO
  re-scan pays for the edit, not for the chip.  After any edit
  sequence the index enumerates exactly the rectangles of
  ``apply_edits(layout, edits)`` in the same order.
"""

from __future__ import annotations

from bisect import insort

from ..litho.geometry import Clip, Rect

__all__ = ["RectIndex"]


class RectIndex:
    """Uniform-grid spatial index of a layout's rectangle list."""

    def __init__(self, layout: Clip, bucket: int = 4096):
        if bucket <= 0:
            raise ValueError(f"bucket must be positive, got {bucket}")
        self.size = layout.size
        self.bucket = bucket
        self._rects: dict[int, Rect] = {}
        #: rect value -> sorted ids of equal rects (remove-first-equal)
        self._ids: dict[Rect, list[int]] = {}
        self._buckets: dict[tuple[int, int], list[int]] = {}
        self._next_id = 0
        for rect in layout.rects:
            self._insert(rect)

    def __len__(self) -> int:
        return len(self._rects)

    def _bucket_range(self, rect: Rect) -> tuple[range, range]:
        b = self.bucket
        return (range(rect.x0 // b, (rect.x1 - 1) // b + 1),
                range(rect.y0 // b, (rect.y1 - 1) // b + 1))

    def _insert(self, rect: Rect) -> None:
        rect_id = self._next_id
        self._next_id += 1
        self._rects[rect_id] = rect
        insort(self._ids.setdefault(rect, []), rect_id)
        xs, ys = self._bucket_range(rect)
        for by in ys:
            for bx in xs:
                self._buckets.setdefault((bx, by), []).append(rect_id)

    def _remove(self, rect: Rect) -> None:
        ids = self._ids.get(rect)
        if not ids:
            raise ValueError(f"rectangle not in index: {rect}")
        rect_id = ids.pop(0)  # first-equal, matching list.remove
        if not ids:
            del self._ids[rect]
        del self._rects[rect_id]
        xs, ys = self._bucket_range(rect)
        for by in ys:
            for bx in xs:
                bucket = self._buckets[(bx, by)]
                bucket.remove(rect_id)
                if not bucket:
                    del self._buckets[(bx, by)]

    def apply(self, edit) -> None:
        """Apply one :class:`~repro.litho.fullchip.LayoutEdit` in place."""
        if edit.kind in ("remove", "move"):
            self._remove(edit.rect)
        if edit.kind == "add":
            clipped = edit.rect.clipped(Rect(0, 0, self.size, self.size))
            if clipped is not None:
                self._insert(clipped)
        elif edit.kind == "move":
            clipped = edit.to.clipped(Rect(0, 0, self.size, self.size))
            if clipped is not None:
                self._insert(clipped)

    def query(self, region: Rect) -> list[Rect]:
        """Rectangles overlapping ``region``, in insertion order."""
        b = self.bucket
        seen: set[int] = set()
        for by in range(region.y0 // b, (region.y1 - 1) // b + 1):
            for bx in range(region.x0 // b, (region.x1 - 1) // b + 1):
                seen.update(self._buckets.get((bx, by), ()))
        return [
            self._rects[i]
            for i in sorted(seen)
            if self._rects[i].intersects(region)
        ]

    def rects(self) -> list[Rect]:
        """Every rectangle, in insertion order (the edited layout list)."""
        return [self._rects[i] for i in sorted(self._rects)]
