"""Crash-safe tile-completion journal for durable chip scans.

A full-chip sweep can run for hours; a crash must not discard the
tiles already scored.  :class:`ScanJournal` is the durability layer:
an **append-only** file of per-record-checksummed frames, fsynced
after every append, so the set of *complete* records on disk is
exactly the set of tiles whose scores survived — no matter where the
process died.  Resuming a scan replays those records and re-scores
only the pending tiles; because the engine is bit-exact across runs
(the chip parity contract), the resumed heatmap is bit-identical to an
uninterrupted scan.

Record framing (all integers little-endian)::

    kind(1 byte)  length(u32)  payload(length bytes)  sha256(32 bytes)

where the digest covers ``kind + length + payload``.  Two kinds:

* ``b"H"`` — header, exactly one, first: a JSON dict binding the
  journal to one scan configuration (layout fingerprint, window,
  stride, image size, tile budget, grid shape).  Resuming against a
  *different* configuration raises :class:`JournalMismatchError` —
  replaying tiles into the wrong grid would be silent corruption.
* ``b"T"`` — one completed tile: tile index, score-block shape, the
  float64 scores, and the windows quarantined inside the tile.

Failure semantics mirror ``train/checkpoint``:

* an **incomplete frame at the tail** is the signature of a crash
  mid-append.  :func:`read_journal` refuses it with
  :class:`JournalTruncatedError` unless the caller opts into
  ``recover_tail=True`` (the resume path), which drops the torn frame
  and truncates the file back to its last complete record;
* a **complete frame whose digest does not match** is corruption, not
  a crash artifact — it is *always* refused with
  :class:`JournalCorruptError`, never silently replayed.

:func:`snapshot_journal` writes a whole journal in one atomic step
(temp + fsync + rename, directory fsynced) — used to checkpoint the
merged heatmap after an ECO re-scan.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..litho.geometry import Clip
from .tiling import TileGrid

__all__ = [
    "JournalError",
    "JournalCorruptError",
    "JournalTruncatedError",
    "JournalMismatchError",
    "TileRecord",
    "JournalContents",
    "ScanJournal",
    "journal_header",
    "layout_fingerprint",
    "read_journal",
    "snapshot_journal",
]

#: Journal format version, bumped on any framing/payload change.
#: v2 added the engine provenance binding (backend, pipeline) — a v1
#: journal fails the version binding and must be rescanned, which is
#: the safe direction (its provenance is unknowable).
JOURNAL_VERSION = 2

_KIND_HEADER = b"H"
_KIND_TILE = b"T"
_LEN = struct.Struct("<I")
_TILE_HEAD = struct.Struct("<III")  # tile index, ny, nx
_PAIR = struct.Struct("<II")  # quarantined (i, j) origin index
_DIGEST_BYTES = 32

#: Header keys that must match for a journal to be resumable against a
#: job — replaying scores into a different grid would be corruption.
_BINDING_KEYS = (
    "version", "layout_sha256", "layout_size", "window", "stride",
    "image_size", "tile_budget", "n_steps", "n_tiles",
    "backend", "pipeline",
)


class JournalError(RuntimeError):
    """Base error of the scan journal (unusable file or misuse)."""


class JournalCorruptError(JournalError):
    """A complete record failed its checksum — refused, never replayed."""


class JournalTruncatedError(JournalError):
    """The journal ends in a torn frame (crash mid-append).

    Recoverable: re-read with ``recover_tail=True`` (what resume does)
    to drop the torn frame and keep every complete record before it.
    """


class JournalMismatchError(JournalError):
    """The journal's header binds it to a different scan configuration."""


def layout_fingerprint(layout: Clip) -> str:
    """SHA-256 hex digest of a layout's exact geometry.

    Covers the size and every rectangle in insertion order, so a
    journal written for one layout state can never be replayed against
    an edited one.
    """
    digest = hashlib.sha256()
    digest.update(_LEN.pack(int(layout.size) & 0xFFFFFFFF))
    coords = np.asarray(
        [(r.x0, r.y0, r.x1, r.y1) for r in layout.rects], dtype=np.int64
    ).reshape(-1, 4)
    digest.update(coords.tobytes())
    return digest.hexdigest()


def journal_header(
    layout: Clip,
    grid: TileGrid,
    image_size: int,
    backend: str = "",
    pipeline: str = "",
) -> dict:
    """The header dict binding a journal to one scan configuration.

    ``backend`` and ``pipeline`` record the engine provenance (backend
    name, pass-pipeline signature) the scores were produced under.
    Although every backend/pipeline combination is bit-identical by the
    parity contract, the binding still refuses to mix them silently —
    if that contract were ever violated, a resume would otherwise blend
    two numeric substrates into one heatmap with no trace.
    """
    return {
        "version": JOURNAL_VERSION,
        "layout_sha256": layout_fingerprint(layout),
        "layout_size": grid.layout_size,
        "window": grid.window,
        "stride": grid.stride,
        "image_size": image_size,
        "tile_budget": grid.tile_budget,
        "n_steps": len(grid.steps),
        "n_tiles": len(grid.tiles),
        "backend": backend,
        "pipeline": pipeline,
    }


@dataclass(frozen=True)
class TileRecord:
    """One journaled tile: its scores plus any quarantined windows.

    ``scores`` is the tile's ``(ny, nx)`` float64 block (quarantined
    windows hold NaN); ``quarantined`` lists their origin-grid
    ``(i, j)`` indices explicitly so a resume can tell a quarantined
    window from an unscored one.
    """

    index: int
    scores: np.ndarray
    quarantined: tuple[tuple[int, int], ...] = ()


@dataclass
class JournalContents:
    """Everything a valid journal holds, plus tail-recovery facts."""

    header: dict
    tiles: dict[int, TileRecord] = field(default_factory=dict)
    #: byte offset of the end of the last complete record
    valid_bytes: int = 0
    #: whether a torn tail frame was dropped (``recover_tail`` only)
    recovered_tail: bool = False


def _frame(kind: bytes, payload: bytes) -> bytes:
    head = kind + _LEN.pack(len(payload))
    return head + payload + hashlib.sha256(head + payload).digest()


def _tile_payload(record: TileRecord) -> bytes:
    scores = np.ascontiguousarray(record.scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"tile scores must be 2-D, got {scores.shape}")
    parts = [
        _TILE_HEAD.pack(record.index, scores.shape[0], scores.shape[1]),
        scores.tobytes(),
        _LEN.pack(len(record.quarantined)),
    ]
    parts.extend(_PAIR.pack(i, j) for i, j in record.quarantined)
    return b"".join(parts)


def _parse_tile(payload: bytes) -> TileRecord:
    try:
        index, ny, nx = _TILE_HEAD.unpack_from(payload, 0)
        offset = _TILE_HEAD.size
        scores = np.frombuffer(
            payload, dtype="<f8", count=ny * nx, offset=offset
        ).reshape(ny, nx).copy()
        offset += ny * nx * 8
        (nq,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        quarantined = tuple(
            _PAIR.unpack_from(payload, offset + k * _PAIR.size)
            for k in range(nq)
        )
        if offset + nq * _PAIR.size != len(payload):
            raise ValueError("trailing bytes in tile payload")
    except (struct.error, ValueError) as exc:
        raise JournalCorruptError(
            f"malformed tile record payload: {exc}"
        ) from exc
    return TileRecord(index=index, scores=scores, quarantined=quarantined)


def read_journal(
    path: str | os.PathLike, recover_tail: bool = False
) -> JournalContents:
    """Read and verify a journal; every returned record passed its checksum.

    ``recover_tail=True`` (the resume path) tolerates exactly one torn
    frame at the end of the file — the signature of a crash mid-append —
    returning the complete records before it with ``recovered_tail``
    set.  Without it a torn tail raises :class:`JournalTruncatedError`.
    A complete record with a bad digest always raises
    :class:`JournalCorruptError`.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    header: dict | None = None
    tiles: dict[int, TileRecord] = {}
    pos = 0
    recovered = False
    while pos < len(data):
        head_end = pos + 1 + _LEN.size
        if head_end > len(data):
            if recover_tail:
                recovered = True
                break
            raise JournalTruncatedError(
                f"journal {path} ends in a torn frame header at byte {pos}"
            )
        kind = data[pos:pos + 1]
        (length,) = _LEN.unpack_from(data, pos + 1)
        end = head_end + length + _DIGEST_BYTES
        if end > len(data):
            if recover_tail:
                recovered = True
                break
            raise JournalTruncatedError(
                f"journal {path} ends in a torn record at byte {pos} "
                f"(need {end - len(data)} more bytes)"
            )
        payload = data[head_end:head_end + length]
        digest = data[head_end + length:end]
        if hashlib.sha256(data[pos:head_end + length]).digest() != digest:
            raise JournalCorruptError(
                f"journal {path}: record at byte {pos} failed its "
                f"checksum — refusing to replay"
            )
        if kind == _KIND_HEADER:
            if header is not None:
                raise JournalCorruptError(
                    f"journal {path}: duplicate header at byte {pos}"
                )
            try:
                header = json.loads(payload.decode("utf-8"))
            except ValueError as exc:
                raise JournalCorruptError(
                    f"journal {path}: unreadable header: {exc}"
                ) from exc
        elif kind == _KIND_TILE:
            if header is None:
                raise JournalCorruptError(
                    f"journal {path}: tile record before the header"
                )
            record = _parse_tile(payload)
            tiles[record.index] = record
        else:
            raise JournalCorruptError(
                f"journal {path}: unknown record kind {kind!r} "
                f"at byte {pos}"
            )
        pos = end
    if header is None:
        raise JournalError(f"journal {path} holds no header record")
    return JournalContents(
        header=header, tiles=tiles, valid_bytes=pos, recovered_tail=recovered
    )


def _fsync_directory(directory: Path) -> None:
    """Make a create/rename in ``directory`` durable (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _check_binding(header: dict, expected: dict, path: Path) -> None:
    mismatched = [
        f"{key}: journal={header.get(key)!r} != job={expected.get(key)!r}"
        for key in _BINDING_KEYS
        if header.get(key) != expected.get(key)
    ]
    if mismatched:
        raise JournalMismatchError(
            f"journal {path} was written for a different scan "
            f"configuration ({'; '.join(mismatched)})"
        )


class ScanJournal:
    """Append-only writer over one journal file.

    Construct via :meth:`create` (fresh scan; refuses to clobber an
    existing file) or :meth:`resume` (verify the header binding, drop a
    torn tail, return the surviving records).  Every
    :meth:`append_tile` is flushed and fsynced before it returns, so a
    record either fully exists on disk or not at all — the torn-tail
    case — and :func:`read_journal` can always tell which.
    """

    def __init__(self, path: Path, header: dict, handle):
        self.path = path
        self.header = header
        self._handle = handle
        self.tiles_written = 0

    @classmethod
    def create(cls, path: str | os.PathLike, header: dict) -> "ScanJournal":
        """Start a fresh journal; refuses to overwrite an existing one."""
        path = Path(path)
        if path.exists():
            raise JournalError(
                f"journal {path} already exists — pass resume=True to "
                f"continue it, or remove it to start over"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "ab")
        journal = cls(path, dict(header), handle)
        payload = json.dumps(header, sort_keys=True).encode("utf-8")
        journal._append(_KIND_HEADER, payload)
        _fsync_directory(path.parent)
        return journal

    @classmethod
    def resume(
        cls, path: str | os.PathLike, header: dict
    ) -> tuple["ScanJournal", JournalContents]:
        """Reopen a journal for appending; returns the surviving records.

        A missing file degrades to :meth:`create` (a resume of a scan
        that died before its first record).  A torn tail frame is
        dropped and the file truncated back to its last complete
        record; corrupt records and header mismatches are refused with
        their typed errors.
        """
        path = Path(path)
        if not path.exists():
            journal = cls.create(path, header)
            return journal, JournalContents(header=dict(header))
        contents = read_journal(path, recover_tail=True)
        _check_binding(contents.header, header, path)
        if contents.recovered_tail:
            with open(path, "r+b") as handle:
                handle.truncate(contents.valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        handle = open(path, "ab")
        journal = cls(path, contents.header, handle)
        journal.tiles_written = len(contents.tiles)
        return journal, contents

    def _append(self, kind: bytes, payload: bytes) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(_frame(kind, payload))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_tile(
        self,
        index: int,
        scores: np.ndarray,
        quarantined: tuple[tuple[int, int], ...] = (),
    ) -> None:
        """Durably record one completed tile (flushed + fsynced)."""
        record = TileRecord(
            index=int(index),
            scores=np.ascontiguousarray(scores, dtype=np.float64),
            quarantined=tuple(
                (int(i), int(j)) for i, j in quarantined
            ),
        )
        self._append(_KIND_TILE, _tile_payload(record))
        self.tiles_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ScanJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def snapshot_journal(
    path: str | os.PathLike,
    header: dict,
    records: list[TileRecord] | tuple[TileRecord, ...],
) -> Path:
    """Atomically (re)write a whole journal: temp + fsync + rename.

    Used to checkpoint a *derived* state — e.g. the merged heatmap
    after an ECO re-scan, whose layout fingerprint differs from the
    original scan's journal.  The result is indistinguishable from a
    journal written record by record.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(_frame(
                _KIND_HEADER,
                json.dumps(header, sort_keys=True).encode("utf-8"),
            ))
            for record in records:
                handle.write(_frame(_KIND_TILE, _tile_payload(record)))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return path
