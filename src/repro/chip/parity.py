"""CI gate: streamed scan ≡ monolithic scan, re-scan ≡ from-scratch.

Run as ``python -m repro.chip.parity``.  Two invariants, each checked
bit-for-bit on every engine backend:

1. **Streaming parity** — :meth:`ChipScanner.scan` over a synthesized
   chip, with a tile budget small enough to force a multi-tile grid,
   produces scores ``np.array_equal`` to a monolithic reference that
   rasterizes the whole layout once and scores every origin through a
   single :meth:`plan_scan`.
2. **ECO parity** — :meth:`ChipScanner.rescan` after a seeded edit
   trace produces a heatmap ``equals`` a from-scratch streamed scan of
   ``apply_edits(layout, edits)``, while re-scoring strictly fewer
   windows than the sweep holds.

Exit code 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..binary.inference import engine_for_backend
from ..features.downsample import to_network_input
from ..litho.fullchip import apply_edits, synthesize_chip, synthesize_edit_trace
from ..litho.raster import rasterize_plane
from ..models.bnn_resnet import build_bnn_resnet
from .scanner import ChipScanner
from .tiling import origin_steps


def _monolithic_scores(engine, layout, window, stride, image_size):
    """Reference sweep: one whole-chip plane, one plan, all origins."""
    scale = window // image_size
    plane = to_network_input(rasterize_plane(layout, scale, "binary")[None])
    steps = origin_steps(layout.size, window, stride)
    origins = [(x // scale, y // scale) for y in steps for x in steps]
    logits = engine.scan_plane(plane, image_size, origins)
    n = len(steps)
    return (logits[:, 1] - logits[:, 0]).reshape(n, n)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=8192,
                        help="chip side in nm")
    parser.add_argument("--window", type=int, default=1024)
    parser.add_argument("--stride", type=int, default=512)
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--edits", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backends", nargs="+",
                        default=["packed", "float"])
    args = parser.parse_args(argv)

    layout = synthesize_chip(args.size, seed=args.seed)
    edits = synthesize_edit_trace(layout, args.edits, seed=args.seed + 1)
    edited = apply_edits(layout, edits)
    # small budget: enough for ~2x2 windows per tile -> multi-tile grid
    window_px = args.window // (args.window // args.image_size)
    budget = (2 * window_px) ** 2 * 8

    model = build_bnn_resnet((4, 8), scaling="xnor", seed=args.seed)
    rng = np.random.default_rng(99)
    warmup = (rng.random((8, 1, args.image_size, args.image_size))
              > 0.5) * 2.0 - 1.0
    model.forward(warmup, training=True)  # give BN non-trivial stats

    failures = 0
    for backend in args.backends:
        engine = engine_for_backend(model, backend)
        scanner = ChipScanner(engine, args.image_size)

        reference = _monolithic_scores(
            engine, layout, args.window, args.stride, args.image_size
        )
        result = scanner.scan(layout, args.window, args.stride, budget)
        streamed_ok = np.array_equal(result.heatmap.scores, reference)
        multi_tile = result.tiles > 1
        bounded = result.peak_tile_bytes <= budget
        print(
            f"[{backend}] streamed parity: "
            f"{'OK' if streamed_ok else 'MISMATCH'} "
            f"({result.tiles} tiles, peak {result.peak_tile_bytes} B "
            f"<= budget {budget} B: {bounded})"
        )
        if not (streamed_ok and multi_tile and bounded):
            failures += 1

        rescanned = scanner.rescan(result, edits)
        scratch = ChipScanner(engine, args.image_size).scan(
            edited, args.window, args.stride, budget
        )
        eco_ok = rescanned.heatmap.equals(scratch.heatmap)
        sparse = 0 < rescanned.rescored_windows < rescanned.windows
        print(
            f"[{backend}] eco parity: {'OK' if eco_ok else 'MISMATCH'} "
            f"(re-scored {rescanned.rescored_windows} of "
            f"{rescanned.windows} windows)"
        )
        if not (eco_ok and sparse):
            failures += 1

    if failures:
        print(f"chip parity: {failures} check(s) FAILED", file=sys.stderr)
        return 1
    print("chip parity: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
