"""CI gate: streamed scan ≡ monolithic scan, re-scan ≡ from-scratch.

Run as ``python -m repro.chip.parity``.  Two invariants, each checked
bit-for-bit on every engine backend:

1. **Streaming parity** — :meth:`ChipScanner.scan` over a synthesized
   chip, with a tile budget small enough to force a multi-tile grid,
   produces scores ``np.array_equal`` to a monolithic reference that
   rasterizes the whole layout once and scores every origin through a
   single :meth:`plan_scan`.
2. **ECO parity** — :meth:`ChipScanner.rescan` after a seeded edit
   trace produces a heatmap ``equals`` a from-scratch streamed scan of
   ``apply_edits(layout, edits)``, while re-scoring strictly fewer
   windows than the sweep holds.

``--chaos`` runs the **durability gate** instead — the random-kill +
fault-injection harness of :mod:`repro.chip.durable`:

* a durable scan killed at seeded random tile boundaries (and once
  mid-journal-write, leaving a torn record) resumes to a heatmap
  bit-identical to an uninterrupted run, on every backend;
* a corrupted journal record is refused with a typed
  :class:`~repro.chip.journal.JournalCorruptError`, never replayed;
* transient injected faults recover within the retry policy's bounds;
* a poison window is bisected down to a single quarantined origin
  while every surrounding window matches the fault-free scores.

Exit code 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from ..binary.inference import engine_for_backend
from ..features.downsample import to_network_input
from ..litho.fullchip import apply_edits, synthesize_chip, synthesize_edit_trace
from ..litho.raster import rasterize_plane
from ..models.bnn_resnet import build_bnn_resnet
from .durable import DurableChipScan, RetryPolicy
from .journal import JournalCorruptError, read_journal
from .scanner import ChipScanner
from .tiling import TileSpec, origin_steps


def _monolithic_scores(engine, layout, window, stride, image_size):
    """Reference sweep: one whole-chip plane, one plan, all origins."""
    scale = window // image_size
    plane = to_network_input(rasterize_plane(layout, scale, "binary")[None])
    steps = origin_steps(layout.size, window, stride)
    origins = [(x // scale, y // scale) for y in steps for x in steps]
    logits = engine.scan_plane(plane, image_size, origins)
    n = len(steps)
    return (logits[:, 1] - logits[:, 0]).reshape(n, n)


def _gate_model(image_size: int, seed: int):
    """The small warmed-up BNN every gate check scores with."""
    model = build_bnn_resnet((4, 8), scaling="xnor", seed=seed)
    rng = np.random.default_rng(99)
    warmup = (rng.random((8, 1, image_size, image_size)) > 0.5) * 2.0 - 1.0
    model.forward(warmup, training=True)  # give BN non-trivial stats
    return model


class _KilledScan(RuntimeError):
    """Simulated crash raised from the durable scan's tile hook."""


def _chaos_policy(seed: int) -> RetryPolicy:
    """Retry policy of the gate: real bounds, zero sleep (CI speed)."""
    return RetryPolicy(max_retries=2, base_delay_s=0.0, max_delay_s=0.0,
                       retry_budget=32, seed=seed)


def _run_durable(scanner, layout, args, budget, journal,
                 resume=False, tile_hook=None):
    return DurableChipScan(
        scanner, layout, args.window, args.stride, budget,
        journal=journal, resume=resume, policy=_chaos_policy(args.seed),
        tile_hook=tile_hook,
    ).run()


def _chaos_backend(backend, model, layout, args, budget, workdir) -> int:
    """Run every durability check for one engine backend; count failures."""
    from ..serve.faults import FaultInjector

    engine = engine_for_backend(model, backend)
    failures = 0
    reference = ChipScanner(engine, args.image_size).scan(
        layout, args.window, args.stride, budget
    ).heatmap.scores

    # 1. uninterrupted durable run is bit-identical and fully journaled
    plain_journal = workdir / f"{backend}-plain.journal"
    result = _run_durable(ChipScanner(engine, args.image_size), layout,
                          args, budget, plain_journal)
    n_tiles = len(result.job.tiles)
    plain_ok = (np.array_equal(result.heatmap.scores, reference)
                and len(read_journal(plain_journal).tiles) == n_tiles)
    print(f"[{backend}] durable scan parity: "
          f"{'OK' if plain_ok else 'MISMATCH'} ({n_tiles} tiles journaled)")
    failures += 0 if plain_ok else 1

    # 2. random kills at tile boundaries resume bit-identically; the
    #    first case additionally tears the journal tail mid-record
    rng = np.random.default_rng(args.seed + 13)
    kill_points = sorted(
        int(k) for k in rng.choice(
            np.arange(1, n_tiles), size=min(args.kills, n_tiles - 1),
            replace=False,
        )
    )
    for case, kill_at in enumerate(kill_points):
        journal = workdir / f"{backend}-kill{kill_at}.journal"
        committed = 0

        def tile_hook(_index):
            nonlocal committed
            committed += 1
            if committed >= kill_at:
                raise _KilledScan(f"killed after {committed} tiles")

        try:
            _run_durable(ChipScanner(engine, args.image_size), layout,
                         args, budget, journal, tile_hook=tile_hook)
            raise AssertionError("kill hook did not fire")
        except _KilledScan:
            pass
        torn = case == 0
        if torn:
            # crash mid-append: chop the last record's tail bytes
            data = journal.read_bytes()
            journal.write_bytes(data[:-7])
        resumed = _run_durable(ChipScanner(engine, args.image_size),
                               layout, args, budget, journal, resume=True)
        stats = resumed.stats
        ok = (np.array_equal(resumed.heatmap.scores, reference)
              and stats["tiles_replayed"] > 0
              and stats["tiles_replayed"] + stats["tiles_scored"] == n_tiles)
        print(f"[{backend}] kill@{kill_at}"
              f"{' (torn tail)' if torn else ''} resume: "
              f"{'OK' if ok else 'MISMATCH'} "
              f"(replayed {stats['tiles_replayed']}, "
              f"re-scored {stats['tiles_scored']})")
        failures += 0 if ok else 1

    # 3. a corrupted record is refused with a typed error, never replayed
    data = bytearray(plain_journal.read_bytes())
    # flip a byte inside the first tile record's score payload: the
    # header frame is (5 + json + 32) bytes, the tile payload starts
    # 5 bytes later, scores 12 bytes after that
    header_len = int.from_bytes(data[1:5], "little")
    flip_at = 5 + header_len + 32 + 5 + 12 + 3
    data[flip_at] ^= 0xFF
    corrupt_journal = workdir / f"{backend}-corrupt.journal"
    corrupt_journal.write_bytes(bytes(data))
    try:
        read_journal(corrupt_journal, recover_tail=True)
        corrupt_ok = False
    except JournalCorruptError:
        try:
            _run_durable(ChipScanner(engine, args.image_size), layout,
                         args, budget, corrupt_journal, resume=True)
            corrupt_ok = False
        except JournalCorruptError:
            corrupt_ok = True
    print(f"[{backend}] corrupt record refused: "
          f"{'OK' if corrupt_ok else 'MISSED'}")
    failures += 0 if corrupt_ok else 1

    # 4. transient faults recover within the retry bounds
    faults = FaultInjector(seed=args.seed)
    faults.add_error("engine", times=2)
    flaky = _run_durable(
        ChipScanner(engine, args.image_size, faults=faults), layout,
        args, budget, workdir / f"{backend}-flaky.journal",
    )
    policy = _chaos_policy(args.seed)
    retry_ok = (np.array_equal(flaky.heatmap.scores, reference)
                and 1 <= flaky.stats["tile_retries"] <= policy.retry_budget
                and not flaky.stats["quarantined_windows"])
    print(f"[{backend}] transient retry recovery: "
          f"{'OK' if retry_ok else 'MISMATCH'} "
          f"({flaky.stats['tile_retries']} retries)")
    failures += 0 if retry_ok else 1

    # 5. a permanent poison window is cornered to a one-window
    #    quarantine; everything around it matches the fault-free run
    steps = origin_steps(layout.size, args.window, args.stride)
    poison = (len(steps) // 2, len(steps) // 3)
    faults = FaultInjector(seed=args.seed)
    faults.add_error("engine", match=lambda call_args: (
        isinstance(call_args[0], TileSpec)
        and call_args[0].contains_index(*poison)
    ))
    poisoned = _run_durable(
        ChipScanner(engine, args.image_size, faults=faults), layout,
        args, budget, workdir / f"{backend}-poison.journal",
    )
    scores = poisoned.heatmap.scores
    others = ~np.isnan(scores)
    poison_ok = (
        poisoned.stats["quarantined_windows"] == (poison,)
        and np.isnan(scores[poison[1], poison[0]])
        and int(np.isnan(scores).sum()) == 1
        and np.array_equal(scores[others], reference[others])
    )
    print(f"[{backend}] poison quarantine: "
          f"{'OK' if poison_ok else 'MISMATCH'} "
          f"(quarantined {poisoned.stats['quarantined_windows']})")
    failures += 0 if poison_ok else 1
    return failures


def durability_gate(args) -> int:
    """The ``--chaos`` gate body; returns the failure count."""
    layout = synthesize_chip(args.size, seed=args.seed)
    window_px = args.window // (args.window // args.image_size)
    budget = (2 * window_px) ** 2 * 8
    model = _gate_model(args.image_size, args.seed)
    failures = 0
    with tempfile.TemporaryDirectory(prefix="chip-chaos-") as tmp:
        for backend in args.backends:
            failures += _chaos_backend(
                backend, model, layout, args, budget, Path(tmp)
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=8192,
                        help="chip side in nm")
    parser.add_argument("--window", type=int, default=1024)
    parser.add_argument("--stride", type=int, default=512)
    parser.add_argument("--image-size", type=int, default=32)
    parser.add_argument("--edits", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backends", nargs="+",
                        default=["packed", "float", "compiled"])
    parser.add_argument("--chaos", action="store_true",
                        help="run the durability (kill/resume, retry, "
                             "quarantine) gate instead of the parity checks")
    parser.add_argument("--kills", type=int, default=3,
                        help="random tile-boundary kill points per backend "
                             "in the --chaos gate")
    args = parser.parse_args(argv)

    if args.chaos:
        failures = durability_gate(args)
        if failures:
            print(f"chip durability: {failures} check(s) FAILED",
                  file=sys.stderr)
            return 1
        print("chip durability: all checks passed")
        return 0

    layout = synthesize_chip(args.size, seed=args.seed)
    edits = synthesize_edit_trace(layout, args.edits, seed=args.seed + 1)
    edited = apply_edits(layout, edits)
    # small budget: enough for ~2x2 windows per tile -> multi-tile grid
    window_px = args.window // (args.window // args.image_size)
    budget = (2 * window_px) ** 2 * 8

    model = _gate_model(args.image_size, args.seed)

    failures = 0
    for backend in args.backends:
        engine = engine_for_backend(model, backend)
        scanner = ChipScanner(engine, args.image_size)

        reference = _monolithic_scores(
            engine, layout, args.window, args.stride, args.image_size
        )
        result = scanner.scan(layout, args.window, args.stride, budget)
        streamed_ok = np.array_equal(result.heatmap.scores, reference)
        multi_tile = result.tiles > 1
        bounded = result.peak_tile_bytes <= budget
        print(
            f"[{backend}] streamed parity: "
            f"{'OK' if streamed_ok else 'MISMATCH'} "
            f"({result.tiles} tiles, peak {result.peak_tile_bytes} B "
            f"<= budget {budget} B: {bounded})"
        )
        if not (streamed_ok and multi_tile and bounded):
            failures += 1

        rescanned = scanner.rescan(result, edits)
        scratch = ChipScanner(engine, args.image_size).scan(
            edited, args.window, args.stride, budget
        )
        eco_ok = rescanned.heatmap.equals(scratch.heatmap)
        sparse = 0 < rescanned.rescored_windows < rescanned.windows
        print(
            f"[{backend}] eco parity: {'OK' if eco_ok else 'MISMATCH'} "
            f"(re-scored {rescanned.rescored_windows} of "
            f"{rescanned.windows} windows)"
        )
        if not (eco_ok and sparse):
            failures += 1

    if failures:
        print(f"chip parity: {failures} check(s) FAILED", file=sys.stderr)
        return 1
    print("chip parity: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
