"""Streaming full-chip scanner with incremental ECO re-scan.

:class:`ChipScanner` runs the sliding-window hotspot sweep over
layouts that do **not** fit in memory as one plane.  The sweep is cut
into halo-correct tiles (:mod:`repro.chip.tiling`); each tile is
rasterized from a spatial index (:mod:`repro.chip.index`) via
:func:`repro.litho.raster.rasterize_region` and scored through the
engine's plane-compiled scan (:meth:`plan_scan`), exactly the kernel
the monolithic service path uses.  Both the raster and the per-window
logits are bit-identical to a monolithic scan — streaming is purely a
memory shape, never a numerics change — and the peak tile plane is
bounded by ``tile_budget`` bytes (tracked, reported as
``peak_tile_bytes``).

The incremental path closes the edit→verify ECO loop:
:meth:`ChipScanner.rescan` takes a previous :class:`ChipScanResult`
plus a :class:`~repro.litho.fullchip.LayoutEdit` list, computes the
dirty window set (:class:`~repro.chip.eco.DirtyRegionTracker`),
updates the spatial index in ``O(edit)``, re-scores **only** the dirty
windows, and merges them into a copy of the previous heatmap — a
result bit-identical to a from-scratch scan of the edited layout at a
small fraction of the cost.

An optional region-keyed plane cache (the chip mode of
:class:`repro.serve.cache.PlaneCache`, duck-typed here: any object
with ``get_chip_tile`` / ``invalidate_chip_regions``) carries tile
planes across scans of the same session token; a re-scan invalidates
exactly the entries whose region the edit touched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock

import numpy as np

from ..features.downsample import to_network_input
from ..litho.fullchip import LayoutEdit, apply_edits
from ..litho.geometry import Clip, Rect
from ..litho.raster import rasterize_region
from .eco import DirtyRegionTracker
from .heatmap import HotspotHeatmap
from .index import RectIndex
from .tiling import TileGrid, TileSpec, plan_tiles

__all__ = ["ChipScanner", "ChipScanJob", "ChipScanResult",
           "DEFAULT_TILE_BUDGET"]

#: Default tile-plane budget: 64 MiB of float64 raster per tile.
DEFAULT_TILE_BUDGET = 64 * 2**20


class ChipScanJob:
    """A compiled streaming sweep: tile grid + spatial index + engine.

    Tiles are independent and the job is read-only while scoring, so
    :meth:`score_tile` may be called concurrently from a worker pool
    (the serving layer shards the tile list exactly like it shards
    origin ranges).  ``peak_tile_bytes`` tracks the largest tile plane
    actually rasterized, under a lock.
    """

    def __init__(self, scanner: "ChipScanner", layout: Clip,
                 grid: TileGrid, index: RectIndex, token: str | None):
        self.scanner = scanner
        self.layout = layout
        self.grid = grid
        self.index = index
        self.token = token
        self.peak_tile_bytes = 0
        self._lock = Lock()

    @property
    def tiles(self) -> tuple[TileSpec, ...]:
        """The planned tiles, row-major over the origin grid."""
        return self.grid.tiles

    def _note_plane(self, plane: np.ndarray) -> None:
        with self._lock:
            if plane.nbytes > self.peak_tile_bytes:
                self.peak_tile_bytes = plane.nbytes

    def _build_plane(self, region: Rect) -> np.ndarray:
        """Rasterize one region into the engine's ±1 input domain."""
        raster = rasterize_region(
            self.index.query(region), region, self.grid.scale, "binary"
        )
        return to_network_input(raster[None])

    def _region_plane(self, region: Rect) -> np.ndarray:
        cache = self.scanner.plane_cache
        if cache is not None and self.token is not None:
            plane = cache.get_chip_tile(
                self.token, region, self.grid.scale, "binary",
                lambda: self._build_plane(region),
            )
        else:
            plane = self._build_plane(region)
        self._note_plane(plane)
        return plane

    def _local_origin(self, region: Rect, i: int, j: int) -> tuple[int, int]:
        steps, scale = self.grid.steps, self.grid.scale
        return ((steps[i] - region.x0) // scale,
                (steps[j] - region.y0) // scale)

    def _fault_wrapped(self, fn):
        """Thread a scoring call through the scanner's ``"engine"`` fault
        site (chaos testing); identity when no injector is attached."""
        faults = self.scanner.faults
        if faults is None:
            return fn
        return faults.wrap("engine", fn)

    def score_tile(self, tile: TileSpec) -> np.ndarray:
        """Score every window of one tile; returns ``(ny, nx)`` scores."""
        return self._fault_wrapped(self._score_tile)(tile)

    def _score_tile(self, tile: TileSpec) -> np.ndarray:
        region = tile.region
        plane = self._region_plane(region)
        origins = [
            self._local_origin(region, i, j)
            for j in range(tile.iy0, tile.iy1)
            for i in range(tile.ix0, tile.ix1)
        ]
        plan = self.scanner.engine.plan_scan(
            plane, self.scanner.image_size, origins
        )
        logits = plan.logits(batch_size=self.scanner.batch_size)
        scores = logits[:, 1] - logits[:, 0]
        return scores.reshape(tile.iy1 - tile.iy0, tile.ix1 - tile.ix0)

    def score_origins(
        self, region: Rect, plane: np.ndarray,
        indices: list[tuple[int, int]],
    ) -> np.ndarray:
        """Score an arbitrary origin subset against one region plane.

        Small subsets slice whole windows out of the plane and run the
        batched engine directly — cheaper than a plane plan, whose
        per-phase grids cover the entire region; large subsets use the
        plan.  Both are bit-identical (the plan's contract), so the
        crossover is purely a cost choice.
        """
        return self._fault_wrapped(self._score_origins)(
            region, plane, indices
        )

    def _score_origins(
        self, region: Rect, plane: np.ndarray,
        indices: list[tuple[int, int]],
    ) -> np.ndarray:
        origins = [self._local_origin(region, i, j) for i, j in indices]
        w = self.scanner.image_size
        plane_px = plane.shape[2] * plane.shape[3]
        if len(origins) * w * w < plane_px:
            logits = []
            for start in range(0, len(origins), self.scanner.batch_size):
                chunk = origins[start:start + self.scanner.batch_size]
                batch = np.stack(
                    [plane[0, :, oy:oy + w, ox:ox + w] for ox, oy in chunk]
                )
                logits.append(self.scanner.engine.predict_logits(batch))
            logits = np.concatenate(logits, axis=0)
        else:
            plan = self.scanner.engine.plan_scan(
                plane, w, origins
            )
            logits = plan.logits(batch_size=self.scanner.batch_size)
        return logits[:, 1] - logits[:, 0]

    def empty_scores(self) -> np.ndarray:
        """A NaN-filled origin grid (NaN = not scored)."""
        n = len(self.grid.steps)
        return np.full((n, n), np.nan)

    def heatmap(self, scores: np.ndarray) -> HotspotHeatmap:
        """Wrap a filled origin grid as a :class:`HotspotHeatmap`."""
        return HotspotHeatmap(
            layout_size=self.grid.layout_size, window=self.grid.window,
            stride=self.grid.stride, steps=self.grid.steps, scores=scores,
        )


@dataclass
class ChipScanResult:
    """One streamed sweep: the heatmap plus its provenance and costs.

    Holds the compiled job so the ECO loop can chain:
    ``scanner.rescan(result, edits)`` updates the job's spatial index
    *in place* — after a re-scan, the previous result's job reflects
    the edited layout, so keep only the newest result of a session.
    """

    layout: Clip
    heatmap: HotspotHeatmap
    job: ChipScanJob
    tile_budget: int
    tiles: int
    windows: int
    peak_tile_bytes: int
    wall_s: float
    #: windows re-scored by the incremental path (None for a full scan)
    rescored_windows: int | None = None
    token: str | None = None
    #: tile indices whose scoring failed (tolerant paths leave them NaN)
    failed_tiles: tuple[int, ...] = ()
    stats: dict[str, object] = field(default_factory=dict)

    def summary(self, bias: float = 0.0) -> dict[str, object]:
        """Heatmap summary extended with streaming cost counters."""
        out = self.heatmap.summary(bias)
        out.update(
            tiles=self.tiles,
            tile_budget=self.tile_budget,
            peak_tile_bytes=self.peak_tile_bytes,
            wall_s=self.wall_s,
            rescored_windows=self.rescored_windows,
        )
        return out


class ChipScanner:
    """Bounded-memory streaming scan of arbitrarily large layouts.

    Parameters
    ----------
    engine:
        A compiled inference engine exposing ``plan_scan`` and
        ``predict_logits`` (any :class:`repro.binary.inference.\
ProgramEngine` — packed or float; results are bit-identical across
        backends by the engine parity contract).
    image_size:
        Window side in pixels the engine expects; the raster scale is
        ``window // image_size`` nm per pixel.
    batch_size:
        Engine chunk size for window batches.
    plane_cache:
        Optional region-keyed tile-plane cache (chip mode of
        :class:`repro.serve.cache.PlaneCache`); only consulted when a
        scan carries a session ``token``.
    index_bucket:
        Spatial-index bucket side in nm (defaults to the tile scale of
        typical scans; any positive value is correct).
    faults:
        Optional :class:`repro.serve.faults.FaultInjector` (duck-typed:
        anything with ``wrap(site, fn)``); every tile/origin scoring
        call then passes through its ``"engine"`` site.  Chaos testing
        only, never set in production.
    """

    def __init__(
        self,
        engine,
        image_size: int,
        batch_size: int = 256,
        plane_cache=None,
        index_bucket: int = 4096,
        faults=None,
    ):
        if image_size <= 0:
            raise ValueError(f"image_size must be positive, got {image_size}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.engine = engine
        self.image_size = image_size
        self.batch_size = batch_size
        self.plane_cache = plane_cache
        self.index_bucket = index_bucket
        self.faults = faults

    # -- full scan -------------------------------------------------------

    def compile(
        self,
        layout: Clip,
        window: int,
        stride: int,
        tile_budget: int = DEFAULT_TILE_BUDGET,
        token: str | None = None,
    ) -> ChipScanJob:
        """Plan the tile grid and build the spatial index (no scoring).

        The serving layer uses the compiled job directly so it can
        shard :meth:`ChipScanJob.score_tile` calls across its worker
        pool; library callers normally want :meth:`scan`.
        """
        if window % self.image_size:
            raise ValueError(
                f"window {window} is not a multiple of the engine image "
                f"size {self.image_size} (windows must be whole pixels)"
            )
        scale = window // self.image_size
        grid = plan_tiles(layout.size, window, stride, scale, tile_budget)
        index = RectIndex(layout, bucket=max(self.index_bucket, window))
        return ChipScanJob(self, layout, grid, index, token)

    def scan(
        self,
        layout: Clip,
        window: int,
        stride: int,
        tile_budget: int = DEFAULT_TILE_BUDGET,
        token: str | None = None,
    ) -> ChipScanResult:
        """Stream the full sweep tile by tile; peak plane <= budget.

        The resulting heatmap is bit-identical to a monolithic
        ``plan_scan`` over ``rasterize_plane`` of the whole layout —
        the CI parity gate (``python -m repro.chip.parity``) holds this
        line for every backend.
        """
        started = time.perf_counter()
        job = self.compile(layout, window, stride, tile_budget, token)
        scores = job.empty_scores()
        for tile in job.tiles:
            scores[tile.iy0:tile.iy1, tile.ix0:tile.ix1] = (
                job.score_tile(tile)
            )
        return ChipScanResult(
            layout=layout, heatmap=job.heatmap(scores), job=job,
            tile_budget=tile_budget, tiles=len(job.tiles),
            windows=job.grid.n_windows,
            peak_tile_bytes=job.peak_tile_bytes,
            wall_s=time.perf_counter() - started, token=token,
        )

    # -- incremental ECO re-scan -----------------------------------------

    def rescan(
        self,
        previous: ChipScanResult,
        edits: list[LayoutEdit],
        retries: int = 0,
        tolerant: bool = False,
    ) -> ChipScanResult:
        """Re-score only the windows an edit list dirtied.

        Equivalent — bit for bit — to ``scan(apply_edits(layout,
        edits), ...)`` with the same parameters, but the cost scales
        with the edit, not the chip: the spatial index updates in
        ``O(edit)``, only regions holding dirty windows are
        re-rasterized, and clean windows keep their previous scores
        (their rasters are untouched by construction, see
        :class:`~repro.chip.eco.DirtyRegionTracker`).

        Windows the previous result never scored (NaN — a degraded
        scan's failed tiles, quarantined windows) are folded into the
        dirty set, so a re-scan *heals* a degraded heatmap wherever
        scoring now succeeds instead of propagating NaN forever.

        Failure handling mirrors the forward scan: a failing tile's
        scoring is re-attempted ``retries`` times; with
        ``tolerant=True`` a tile that still fails leaves its dirty
        windows NaN (never a stale score of the pre-edit layout) and is
        listed in the result's ``failed_tiles`` — otherwise the error
        propagates.
        """
        started = time.perf_counter()
        job = previous.job
        grid = job.grid
        tracker = DirtyRegionTracker(grid.steps, grid.window)
        dirty = set(tracker.dirty_windows(edits))
        dirty.update(tracker.unscored_windows(previous.heatmap.scores))
        cache = self.plane_cache
        if cache is not None and previous.token is not None:
            cache.invalidate_chip_regions(
                previous.token, tracker.dirty_rects(edits)
            )
        layout = apply_edits(previous.layout, edits)
        for edit in edits:
            job.index.apply(edit)
        job.layout = layout
        scores = previous.heatmap.scores.copy()
        by_tile: dict[int, list[tuple[int, int]]] = {}
        for i, j in sorted(dirty, key=lambda ij: (ij[1], ij[0])):
            by_tile.setdefault(grid.tile_index_of(i, j), []).append((i, j))
        failed_tiles: list[int] = []
        failed_windows = 0
        for tile_index, indices in sorted(by_tile.items()):
            tile = grid.tiles[tile_index]
            if cache is not None and previous.token is not None:
                # full tile region, so the rebuilt plane is reusable by
                # the next edit that lands in the same tile
                region = tile.region
            else:
                # minimal region: the bounding box of the dirty windows
                # (a subset of the tile region, so still budget-bounded)
                xs = [i for i, _ in indices]
                ys = [j for _, j in indices]
                region = Rect(
                    grid.steps[min(xs)], grid.steps[min(ys)],
                    grid.steps[max(xs)] + grid.window,
                    grid.steps[max(ys)] + grid.window,
                )
            fresh = None
            for attempt in range(retries + 1):
                try:
                    plane = job._region_plane(region)
                    fresh = job.score_origins(region, plane, indices)
                    break
                except Exception:
                    if attempt < retries:
                        continue
                    if not tolerant:
                        raise
            if fresh is None:
                # edited geometry: the stale pre-edit score would be
                # silently wrong, so the windows go NaN until healed
                for i, j in indices:
                    scores[j, i] = np.nan
                failed_tiles.append(tile_index)
                failed_windows += len(indices)
                continue
            for (i, j), score in zip(indices, fresh):
                scores[j, i] = score
        return ChipScanResult(
            layout=layout, heatmap=job.heatmap(scores), job=job,
            tile_budget=previous.tile_budget, tiles=len(by_tile),
            windows=grid.n_windows,
            peak_tile_bytes=job.peak_tile_bytes,
            wall_s=time.perf_counter() - started,
            rescored_windows=len(dirty) - failed_windows,
            token=previous.token,
            failed_tiles=tuple(failed_tiles),
        )
