"""Tile decomposition of a full-chip sliding-window sweep.

A monolithic scan rasterizes the whole layout as one plane — ``(size /
scale)^2`` float64 pixels, quadratic in chip side.  The streaming scan
caps that: the sweep's origin grid is cut into rectangular *tiles* of
origins, and each tile rasterizes only the nm region its own windows
read — core span plus the **halo** to the right/top where windows
whose origin is inside the tile extend past it (a window covers
``[origin, origin + window)`` per axis, so the halo is up to ``window -
stride`` nm of overlap with the next tile).  Because every window's
full receptive field is inside its tile's region, per-window logits
are bit-identical to the monolithic scan no matter how the grid is
cut.

:func:`plan_tiles` sizes tiles from a byte budget: the float64 raster
of any planned tile is guaranteed ``<= tile_budget`` bytes, which is
what bounds the scanner's peak plane memory.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from ..litho.geometry import Rect

__all__ = ["TileSpec", "TileGrid", "origin_steps", "plan_tiles",
           "split_tile"]


def origin_steps(size: int, window: int, stride: int) -> list[int]:
    """Origin positions of one sweep axis (row-major grids use it twice).

    Matches :func:`repro.serve.service.window_origins`: multiples of
    ``stride`` with the last origin snapped to ``size - window`` so the
    sweep reaches the layout edge.
    """
    if window <= 0 or window > size:
        raise ValueError(f"window {window} outside (0, {size}]")
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    last = size - window
    steps = list(range(0, last + 1, stride))
    if steps[-1] != last:
        steps.append(last)
    return steps


@dataclass(frozen=True)
class TileSpec:
    """One tile: an origin-index block plus the nm region its windows read.

    ``ix0:ix1`` / ``iy0:iy1`` are half-open ranges into the sweep's
    origin steps (x and y share the step list on a square layout);
    ``region`` spans from the first origin to the end of the last
    window — core plus halo — and is what gets rasterized.
    """

    ix0: int
    ix1: int
    iy0: int
    iy1: int
    region: Rect

    @property
    def n_origins(self) -> int:
        """Windows scored by this tile."""
        return (self.ix1 - self.ix0) * (self.iy1 - self.iy0)

    def contains_index(self, i: int, j: int) -> bool:
        """Whether origin-grid index ``(i, j)`` belongs to this tile."""
        return self.ix0 <= i < self.ix1 and self.iy0 <= j < self.iy1


@dataclass(frozen=True)
class TileGrid:
    """The planned decomposition of one sweep."""

    layout_size: int
    window: int
    stride: int
    scale: int
    tile_budget: int
    steps: tuple[int, ...]
    #: per-axis origin-index runs; tiles are their row-major product
    runs: tuple[tuple[int, int], ...]
    tiles: tuple[TileSpec, ...]

    @property
    def n_windows(self) -> int:
        """Total origins in the sweep."""
        return len(self.steps) ** 2

    def tile_index_of(self, i: int, j: int) -> int:
        """Index into :attr:`tiles` of the tile owning origin ``(i, j)``."""
        if not (0 <= i < len(self.steps) and 0 <= j < len(self.steps)):
            raise IndexError(f"origin index ({i}, {j}) outside the grid")
        starts = [a for a, _ in self.runs]
        rx = bisect_right(starts, i) - 1
        ry = bisect_right(starts, j) - 1
        return ry * len(self.runs) + rx

    def tile_of(self, i: int, j: int) -> TileSpec:
        """The tile owning origin-grid index ``(i, j)``."""
        return self.tiles[self.tile_index_of(i, j)]

    def tile_pixels(self, tile: TileSpec) -> tuple[int, int]:
        """Raster shape ``(height, width)`` of one tile's region."""
        return (
            (tile.region.y1 - tile.region.y0) // self.scale,
            (tile.region.x1 - tile.region.x0) // self.scale,
        )

    def tile_bytes(self, tile: TileSpec) -> int:
        """Bytes of one tile's float64 raster plane."""
        h, w = self.tile_pixels(tile)
        return h * w * 8


def split_tile(grid: TileGrid, tile: TileSpec) -> tuple[TileSpec, TileSpec]:
    """Halve a tile along its longer origin axis.

    The spatial arm of batch bisection: a persistently-failing tile is
    split until the failure is cornered in the smallest tile (one
    window).  Sub-tile regions are rebuilt from the grid's origin steps
    with the same first-origin-to-last-window-end formula
    :func:`plan_tiles` uses, so they stay halo-correct — scoring a
    sub-tile is bit-identical to the same windows of the parent tile.
    """
    nx = tile.ix1 - tile.ix0
    ny = tile.iy1 - tile.iy0
    if nx * ny < 2:
        raise ValueError("cannot split a single-origin tile")

    def make(ix0: int, ix1: int, iy0: int, iy1: int) -> TileSpec:
        return TileSpec(ix0, ix1, iy0, iy1, Rect(
            grid.steps[ix0], grid.steps[iy0],
            grid.steps[ix1 - 1] + grid.window,
            grid.steps[iy1 - 1] + grid.window,
        ))

    if nx >= ny:
        mid = tile.ix0 + nx // 2
        return (make(tile.ix0, mid, tile.iy0, tile.iy1),
                make(mid, tile.ix1, tile.iy0, tile.iy1))
    mid = tile.iy0 + ny // 2
    return (make(tile.ix0, tile.ix1, tile.iy0, mid),
            make(tile.ix0, tile.ix1, mid, tile.iy1))


def _axis_runs(steps: list[int], window: int, scale: int,
               max_side_px: int) -> list[tuple[int, int]]:
    """Greedy contiguous runs of origin indices whose span fits the
    pixel bound (origins are non-uniform at the snapped last step, so
    runs are computed on actual positions, not counts)."""
    runs = []
    a = 0
    while a < len(steps):
        b = a + 1
        while (b < len(steps)
               and (steps[b] + window - steps[a]) // scale <= max_side_px):
            b += 1
        runs.append((a, b))
        a = b
    return runs


def plan_tiles(
    layout_size: int,
    window: int,
    stride: int,
    scale: int,
    tile_budget: int,
) -> TileGrid:
    """Plan the tile grid of one sweep under a tile-plane byte budget.

    ``scale`` (nm per pixel) must divide the layout size, the window
    and the stride — the same alignment the monolithic plane path
    requires, and what makes every tile region land on pixel edges so
    streamed rasters are bit-identical to monolithic plane slices.
    The float64 raster of every planned tile is ``<= tile_budget``
    bytes; a budget below one window's raster is an error (that is the
    irreducible unit of work).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    for name, value in (("layout size", layout_size), ("window", window),
                        ("stride", stride)):
        if value % scale:
            raise ValueError(
                f"{name} {value} is not a multiple of scale {scale}"
            )
    steps = origin_steps(layout_size, window, stride)
    window_px = window // scale
    min_budget = window_px * window_px * 8
    if tile_budget < min_budget:
        raise ValueError(
            f"tile_budget {tile_budget} cannot hold one "
            f"{window_px}x{window_px} window raster "
            f"({min_budget} bytes minimum)"
        )
    max_side_px = math.isqrt(tile_budget // 8)
    runs = _axis_runs(steps, window, scale, max_side_px)
    tiles = []
    for jy0, jy1 in runs:
        for ix0, ix1 in runs:
            tiles.append(TileSpec(
                ix0, ix1, jy0, jy1,
                Rect(steps[ix0], steps[jy0],
                     steps[ix1 - 1] + window, steps[jy1 - 1] + window),
            ))
    return TileGrid(
        layout_size=layout_size, window=window, stride=stride, scale=scale,
        tile_budget=tile_budget, steps=tuple(steps),
        runs=tuple(runs), tiles=tuple(tiles),
    )
