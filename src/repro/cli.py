"""Command-line interface.

Exposes the main entry points of the library without writing a script::

    python -m repro table2                 # benchmark statistics
    python -m repro table3 --scale 0.02    # the headline comparison
    python -m repro train --epochs 8       # train + evaluate the BNN
    python -m repro litho --pattern grating --seed 3
    python -m repro roc --scale 0.02       # detector trade-off curve

All subcommands print paper-style tables to stdout and accept the same
scale/image-size knobs as the benchmark harness.
"""

from __future__ import annotations

import argparse

import numpy as np

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Layout Hotspot Detection via "
            "Binarized Residual Neural Network' (DAC 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_data_args(p):
        """Attach the shared dataset options to a subparser."""
        p.add_argument("--scale", type=float, default=0.02,
                       help="Table 2 scale factor (default 0.02)")
        p.add_argument("--image-size", type=int, default=32,
                       help="clip image side in pixels (default 32)")
        p.add_argument("--seed", type=int, default=2012)
        p.add_argument("--no-cache", action="store_true",
                       help="regenerate instead of using the dataset cache")

    p_table2 = sub.add_parser("table2", help="benchmark statistics (Table 2)")
    add_data_args(p_table2)

    p_table3 = sub.add_parser(
        "table3", help="four-detector comparison (Table 3)"
    )
    add_data_args(p_table3)
    p_table3.add_argument("--epochs", type=int, default=8)

    p_train = sub.add_parser("train", help="train + evaluate the BNN detector")
    add_data_args(p_train)
    p_train.add_argument("--epochs", type=int, default=8)
    p_train.add_argument("--finetune-epochs", type=int, default=3)
    p_train.add_argument("--epsilon", type=float, default=0.2)
    p_train.add_argument("--base-width", type=int, default=8)
    p_train.add_argument("--scaling", default="xnor",
                         choices=["xnor", "channelwise", "none"])
    p_train.add_argument("--save", metavar="PATH",
                         help="write the trained weights to a .npz checkpoint")
    p_train.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="write atomic run-state checkpoints every "
                              "epoch; a killed or preempted run resumes "
                              "bit-identically with --resume")
    p_train.add_argument("--resume", action="store_true",
                         help="continue the run recorded in --checkpoint-dir "
                              "(same seed/flags required); fresh start if "
                              "the directory is empty")
    p_train.add_argument("--keep", type=int, default=3,
                         help="run-state retention: keep the last N "
                              "checkpoints plus the best-validation one "
                              "(default 3)")

    p_litho = sub.add_parser("litho", help="simulate one synthetic pattern")
    p_litho.add_argument("--pattern", default="grating",
                         help="pattern family (see repro.litho.PATTERN_FAMILIES)")
    p_litho.add_argument("--seed", type=int, default=0)
    p_litho.add_argument("--opc", action="store_true",
                         help="also report the rule-based-OPC'd mask")

    p_roc = sub.add_parser("roc", help="BNN detector ROC summary")
    add_data_args(p_roc)
    p_roc.add_argument("--epochs", type=int, default=8)

    p_predict = sub.add_parser(
        "predict",
        help="classify clips with a checkpoint written by train --save",
    )
    add_data_args(p_predict)
    p_predict.add_argument("checkpoint",
                           help=".npz checkpoint from `repro train --save`")
    p_predict.add_argument("--limit", type=int, default=None,
                           help="classify at most this many test clips")
    p_predict.add_argument("--float", dest="packed", action="store_false",
                           help="shorthand for --backend float")
    p_predict.add_argument("--backend", default=None,
                           help="engine backend to serve with (see "
                                "repro.engine.backends; e.g. packed, float); "
                                "strict: unknown names fail")
    p_predict.add_argument("--timeout-s", type=float, default=None,
                           help="per-call deadline in seconds; exceeded "
                                "deadlines fail typed instead of hanging")
    p_predict.add_argument("--queue-depth", type=int, default=1024,
                           help="admission queue bound (backpressure)")
    p_predict.add_argument("--overflow", choices=["block", "shed"],
                           default="block",
                           help="full-queue policy: block submitters or "
                                "shed with ServiceOverloaded")

    p_scan = sub.add_parser(
        "scan",
        help="stream-scan a full layout for hotspots under a bounded "
             "tile-memory budget",
    )
    p_scan.add_argument("layout",
                        help="layout source: a clips .json/.txt file "
                             "(first clip is the layout), or "
                             "synth:<size_nm>[:seed] for the deterministic "
                             "full-chip synthesizer")
    p_scan.add_argument("checkpoint",
                        help=".npz checkpoint from `repro train --save`")
    p_scan.add_argument("--window", type=int, default=None,
                        help="window side in nm (default: 32x the "
                             "checkpoint's image size)")
    p_scan.add_argument("--stride", type=int, default=None,
                        help="sweep step in nm (default: window / 2)")
    p_scan.add_argument("--tile-budget-mib", type=float, default=64.0,
                        help="peak tile raster budget in MiB (default 64); "
                             "the scan never rasterizes more than this at "
                             "once")
    p_scan.add_argument("--backend", default=None,
                        help="engine backend to serve with (e.g. packed, "
                             "float); strict: unknown names fail")
    p_scan.add_argument("--bias", type=float, default=None,
                        help="hotspot decision bias (default: the "
                             "checkpoint's)")
    p_scan.add_argument("--out", metavar="PATH", default=None,
                        help="write results: a .npz path saves the full "
                             "heatmap, anything else a JSON summary")
    p_scan.add_argument("--timeout-s", type=float, default=None,
                        help="scan deadline in seconds; failed/late tiles "
                             "degrade the report instead of hanging "
                             "(ignored by the durable --journal path, "
                             "which is bounded by its retry budget)")
    p_scan.add_argument("--journal", metavar="PATH", default=None,
                        help="durable scan: append each completed tile to "
                             "this checksummed journal; a killed scan "
                             "re-run with --resume continues bit-identically")
    p_scan.add_argument("--resume", action="store_true",
                        help="resume from --journal: replay completed "
                             "tiles, score only the pending ones")
    p_scan.add_argument("--max-retries", type=int, default=None,
                        help="durable scan: per-tile transient-failure "
                             "retries before bisection quarantine "
                             "(default: the retry-policy default)")

    p_engine = sub.add_parser(
        "engine",
        help="inspect the engine compiler (pass pipeline, backends)",
    )
    engine_sub = p_engine.add_subparsers(dest="engine_command", required=True)
    p_describe = engine_sub.add_parser(
        "describe",
        help="dump the lowered program before/after each optimization "
             "pass: op counts, buffer bytes, fused chains",
    )
    p_describe.add_argument(
        "checkpoint", nargs="?", default=None,
        help=".npz checkpoint from `repro train --save`; omitted: a "
             "seeded reference model built from the flags below")
    p_describe.add_argument("--image-size", type=int, default=32)
    p_describe.add_argument("--base-width", type=int, default=8)
    p_describe.add_argument("--scaling", default="xnor",
                            choices=["xnor", "channelwise", "none"])
    p_describe.add_argument("--stem-stride", type=int, default=None,
                            help="default: 2 when image size >= 64, else 1")
    p_describe.add_argument("--passes", default="default",
                            help="pipeline spec: 'default', 'none', or "
                                 "comma-separated pass names (see "
                                 "repro.engine.passes)")
    p_describe.add_argument("--batch", type=int, default=1,
                            help="batch size for buffer-byte accounting")
    p_describe.add_argument("--full", action="store_true",
                            help="also print the per-node program listing "
                                 "at every stage (default: first and last)")

    p_serve = sub.add_parser(
        "serve-bench",
        help="measure single-request vs micro-batched serving throughput",
    )
    add_data_args(p_serve)
    p_serve.add_argument("--epochs", type=int, default=2)
    p_serve.add_argument("--checkpoint", default=None,
                         help="serve this checkpoint instead of training a "
                              "fresh model")
    p_serve.add_argument("--requests", type=int, default=128,
                         help="clips in the measured request set")
    p_serve.add_argument("--max-batch", type=int, default=64)
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    p_serve.add_argument("--processes", type=int, default=0,
                         help="also measure a supervised multi-process "
                              "cluster of N workers against the "
                              "single-process service (0: skip)")

    return parser


def _load(args):
    from .bench import load_benchmark

    return load_benchmark(
        scale=args.scale, image_size=args.image_size, seed=args.seed,
        cache=not args.no_cache,
    )


def _cmd_table2(args) -> int:
    from .bench import format_table
    from .litho import PAPER_TABLE2

    benchmark = _load(args)
    stats = benchmark.stats
    rows = [
        {"Benchmark": "ICCAD (paper)", **{
            "#Train HS": PAPER_TABLE2["train_hs"],
            "#Train NHS": PAPER_TABLE2["train_nhs"],
            "#Test HS": PAPER_TABLE2["test_hs"],
            "#Test NHS": PAPER_TABLE2["test_nhs"],
        }},
        {"Benchmark": f"Synthetic (scale {args.scale:g})", **{
            "#Train HS": stats.train_hs,
            "#Train NHS": stats.train_nhs,
            "#Test HS": stats.test_hs,
            "#Test NHS": stats.test_nhs,
        }},
    ]
    print(format_table(rows, title="Table 2 - benchmark statistics"))
    return 0


def _cmd_table3(args) -> int:
    from .bench import format_table, run_detectors
    from .detect import (
        BNNDetector,
        DAC17Detector,
        ICCAD16Detector,
        SPIE15Detector,
    )

    benchmark = _load(args)
    detectors = [
        SPIE15Detector(grid=8, n_estimators=40, threshold=-0.8),
        ICCAD16Detector(n_selected=64, epochs=args.epochs, threshold=0.3),
        DAC17Detector(block=max(2, args.image_size // 16), coefficients=8,
                      epochs=args.epochs, finetune_epochs=2),
        BNNDetector(base_width=8, epochs=args.epochs, finetune_epochs=2),
    ]
    results = run_detectors(detectors, benchmark, seed=0)
    print(format_table([m.row() for m in results],
                       title="Table 3 - detector comparison"))
    return 0


def _cmd_train(args) -> int:
    from .bench import format_table
    from .detect import BNNDetector
    from .nn.serialization import CheckpointError
    from .train import DivergenceError, PreemptedError

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir")
        return 2
    benchmark = _load(args)
    detector = BNNDetector(
        base_width=args.base_width, scaling=args.scaling,
        epochs=args.epochs, finetune_epochs=args.finetune_epochs,
        epsilon=args.epsilon, seed=0,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        keep=args.keep, handle_signals=args.checkpoint_dir is not None,
    )
    try:
        metrics = detector.fit_evaluate(
            benchmark.train, benchmark.test, np.random.default_rng(0)
        )
    except PreemptedError as exc:
        print(f"training preempted: {exc}")
        if exc.checkpoint is not None:
            print("rerun with --resume to continue bit-identically")
        return 130
    except DivergenceError as exc:
        print(f"training diverged beyond recovery: {exc}")
        return 4
    except CheckpointError as exc:
        print(f"cannot resume from a bad checkpoint: {exc}")
        return 2
    except ValueError as exc:
        # checkpoint-dir misuse (dirty directory without --resume,
        # mismatched phase schedule) and kindred config errors
        print(f"cannot train: {exc}")
        return 2
    print(format_table([metrics.row()], title="BNN detector"))
    if args.save:
        from .nn import save_model

        # self-describing checkpoint: the serving layer's registry (and
        # `repro predict`) rebuilds the architecture from this record
        written = save_model(detector.model, args.save, meta={
            "image_size": args.image_size,
            "base_width": args.base_width,
            "scaling": args.scaling,
            "stem_stride": 2 if args.image_size >= 64 else 1,
            "decision_bias": detector.decision_bias,
            # the backend this model compiled to; loading under a
            # different one warns (reproducible-serving record)
            "backend": detector.backend_name,
        })
        print(f"checkpoint written to {written}")
    return 0


def _cmd_litho(args) -> int:
    from .litho import PATTERN_FAMILIES, LithographySimulator
    from .litho.opc import rule_based_opc
    from .litho.raster import rasterize
    from .litho.epe import analyze_contours
    from .litho.resist import nominal_corner

    if args.pattern not in PATTERN_FAMILIES:
        print(f"unknown pattern {args.pattern!r}; choose from "
              f"{sorted(PATTERN_FAMILIES)}")
        return 2
    rng = np.random.default_rng(args.seed)
    clip = PATTERN_FAMILIES[args.pattern](rng)
    simulator = LithographySimulator()
    report = simulator.analyze(clip)
    verdict = ("HOTSPOT" if report.is_hotspot(simulator.epe_tolerance_nm)
               else "clean")
    print(f"pattern={args.pattern} rects={len(clip)} "
          f"density={clip.density():.2f}")
    print(f"worst-corner: EPE={report.max_epe_nm:.0f}nm "
          f"bridged={report.bridged} broken={report.broken} -> {verdict}")
    if args.opc:
        corrected = rule_based_opc(clip)
        pixel_nm = clip.size / simulator.resolution_px
        printed = simulator.simulate_corner(
            rasterize(corrected, simulator.resolution_px, "area"),
            pixel_nm, nominal_corner(),
        )
        target = rasterize(clip, simulator.resolution_px, "binary").astype(bool)
        after = analyze_contours(target, printed, pixel_nm)
        print(f"after rule-based OPC (nominal): EPE={after.max_epe_nm:.0f}nm "
              f"bridged={after.bridged} broken={after.broken}")
    return 0


def _cmd_roc(args) -> int:
    from .detect import BNNDetector, auc, roc_curve
    from .features.downsample import to_network_input

    benchmark = _load(args)
    detector = BNNDetector(base_width=8, epochs=args.epochs,
                           finetune_epochs=2, seed=0)
    detector.fit(benchmark.train, np.random.default_rng(0))
    scores = detector._scores(to_network_input(benchmark.test.images))
    curve = roc_curve(scores, benchmark.test.labels)
    from .bench.plots import ascii_roc

    print(ascii_roc(curve.fa_rate, curve.recall,
                    title=f"BNN detector ROC (AUC = {auc(curve):.3f})"))
    for bound in (0.05, 0.1, 0.2, 0.3):
        print(f"recall at FA rate <= {bound:.0%}: "
              f"{curve.recall_at_fa_rate(bound):.1%}")
    return 0


def _cmd_predict(args) -> int:
    from .bench import format_table
    from .detect.metrics import ConfusionMatrix
    from .nn.serialization import CheckpointError, checkpoint_path
    from .serve import DeadlineExceeded, HotspotService, ModelRegistry

    if not checkpoint_path(args.checkpoint).exists():
        print(f"checkpoint not found: {checkpoint_path(args.checkpoint)}")
        return 2
    registry = ModelRegistry()
    backend = args.backend or (None if args.packed else "float")
    try:
        entry = registry.load_checkpoint(
            "checkpoint", args.checkpoint, prefer_packed=args.packed,
            backend=backend,
        )
    except CheckpointError as exc:
        print(f"refusing to serve a bad checkpoint: {exc}")
        return 2
    except (ValueError, TypeError) as exc:
        print(f"cannot serve requested backend: {exc}")
        return 2
    if entry.image_size != args.image_size:
        print(f"note: checkpoint was trained at image size "
              f"{entry.image_size}, overriding --image-size {args.image_size}")
        args.image_size = entry.image_size
    benchmark = _load(args)
    images = benchmark.test.images
    labels = np.asarray(benchmark.test.labels)
    if args.limit is not None:
        images, labels = images[: args.limit], labels[: args.limit]
    with HotspotService(
        registry, default_model="checkpoint",
        queue_depth=args.queue_depth, overflow=args.overflow,
        default_timeout_s=args.timeout_s,
    ) as service:
        try:
            predictions = service.classify_many(
                list(np.squeeze(images, axis=1)
                     if images.ndim == 4 else images))
        except DeadlineExceeded as exc:
            print(f"deadline exceeded: {exc}")
            return 3
        stats = service.stats()
    predicted = np.array([p.label for p in predictions])
    confusion = ConfusionMatrix.from_predictions(predicted, labels)
    row = {
        "Checkpoint": str(args.checkpoint),
        "Backend": entry.backend,
        "Clips": len(predictions),
        "Hotspots found": int(predicted.sum()),
        "Accu (%)": round(100.0 * confusion.accuracy, 2),
        "FA#": confusion.false_alarm,
        "Mean batch": stats["mean_batch_size"],
    }
    print(format_table([row], title="repro predict"))
    return 0


def _load_scan_layout(source: str):
    """Resolve the ``scan`` subcommand's layout source.

    Returns ``(layout, error_message)``; exactly one is ``None``.
    """
    from pathlib import Path

    from .litho.io import load_clips_json, load_clips_text

    if source.startswith("synth:"):
        from .litho.fullchip import synthesize_chip

        parts = source.split(":")
        try:
            size = int(parts[1])
            seed = int(parts[2]) if len(parts) > 2 else 0
            return synthesize_chip(size, seed=seed), None
        except (IndexError, ValueError) as exc:
            return None, (f"bad synth spec {source!r} "
                          f"(want synth:<size_nm>[:seed]): {exc}")
    path = Path(source)
    if not path.exists():
        return None, f"layout file not found: {path}"
    try:
        loader = load_clips_json if path.suffix == ".json" else load_clips_text
        clips = loader(path)
    except (OSError, ValueError, KeyError) as exc:
        return None, f"cannot load layout {path}: {exc}"
    if not clips:
        return None, f"no clips in {path}"
    if len(clips) > 1:
        print(f"note: {path} holds {len(clips)} clips; scanning the first")
    return clips[0], None


def _cmd_scan(args) -> int:
    from .bench import format_table
    from .chip import JournalError, ScanPreemptedError
    from .nn.serialization import CheckpointError, checkpoint_path
    from .serve import (
        ChipScanRequest,
        DeadlineExceeded,
        HotspotService,
        ModelRegistry,
    )

    if args.resume and not args.journal:
        print("--resume needs --journal PATH (nothing to resume from)")
        return 2
    layout, error = _load_scan_layout(args.layout)
    if error:
        print(error)
        return 2
    if not checkpoint_path(args.checkpoint).exists():
        print(f"checkpoint not found: {checkpoint_path(args.checkpoint)}")
        return 2
    registry = ModelRegistry()
    try:
        entry = registry.load_checkpoint(
            "checkpoint", args.checkpoint, backend=args.backend,
        )
    except CheckpointError as exc:
        print(f"refusing to serve a bad checkpoint: {exc}")
        return 2
    except (ValueError, TypeError) as exc:
        print(f"cannot serve requested backend: {exc}")
        return 2
    window = args.window or 32 * entry.image_size
    stride = args.stride or max(1, window // 2)
    budget = int(args.tile_budget_mib * 2**20)
    try:
        request = ChipScanRequest(
            layout, window, stride, tile_budget=budget,
            journal=args.journal or "", resume=args.resume,
            max_retries=args.max_retries,
        )
    except ValueError as exc:
        print(f"bad scan geometry: {exc}")
        return 2
    with HotspotService(
        registry, default_model="checkpoint",
        default_timeout_s=args.timeout_s,
    ) as service:
        try:
            report = service.scan_chip(
                request, handle_signals=bool(args.journal)
            )
        except DeadlineExceeded as exc:
            print(f"deadline exceeded: {exc}")
            return 3
        except ScanPreemptedError as exc:
            print(f"scan preempted: {exc}")
            print(f"resume with: repro scan {args.layout} {args.checkpoint} "
                  f"--journal {args.journal} --resume")
            return 130
        except JournalError as exc:
            print(f"cannot use journal: {exc}")
            return 2
        except ValueError as exc:
            # window/stride/scale misalignment and kindred geometry errors
            print(f"cannot scan: {exc}")
            return 2
    bias = args.bias if args.bias is not None else entry.decision_bias
    summary = report.heatmap.summary(bias)
    row = {
        "Layout": args.layout,
        "Backend": report.backend,
        "Windows": report.windows_scanned,
        "Tiles": report.tiles_total,
        "Peak tile (MiB)": round(report.peak_tile_bytes / 2**20, 2),
        "Hotspots": summary["hotspots"],
        "Rate (%)": round(100.0 * summary["hotspot_rate"], 2),
        "Latency (s)": round(report.latency_ms / 1e3, 2),
    }
    print(format_table([row], title=f"repro scan — {layout.size}nm layout, "
                                    f"window {window} / stride {stride}"))
    if args.journal:
        print(f"journal: {args.journal} "
              f"(replayed {report.tiles_replayed} tiles, "
              f"{report.tile_retries} retries"
              + (", resumed" if report.resumed else "") + ")")
    if report.degraded:
        print(f"DEGRADED: {len(report.failed_tiles)} tile(s) failed, "
              f"{len(report.quarantined_windows)} window(s) quarantined; "
              f"{report.windows_failed} windows unscored (exit code 4)")
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        if out.suffix == ".npz":
            report.heatmap.save_npz(out)
        else:
            import json

            out.write_text(json.dumps({
                "layout": args.layout,
                "model": report.model,
                "backend": report.backend,
                "bias": bias,
                "degraded": report.degraded,
                "summary": summary,
                "hits": [
                    [h.x0, h.y0, h.x1, h.y1, h.score]
                    for h in report.hits(bias)
                ],
            }, indent=2) + "\n")
        print(f"results written to {out}")
    # degraded-but-usable: results (and --out) are delivered, but NaN
    # windows remain — distinct exit code so pipelines can tell
    return 4 if report.degraded else 0


def _cmd_engine(args) -> int:
    # only `describe` exists today; the subparser enforces it
    return _cmd_engine_describe(args)


def _cmd_engine_describe(args) -> int:
    from .engine import ir
    from .engine.lower import (
        LoweringError,
        lower,
        pipeline_signature,
        run_pipeline_snapshots,
    )

    if args.checkpoint:
        from .nn.serialization import (
            CheckpointError,
            checkpoint_path,
            load_meta,
            load_model,
        )
        from .serve.registry import model_from_meta

        if not checkpoint_path(args.checkpoint).exists():
            print(f"checkpoint not found: {checkpoint_path(args.checkpoint)}")
            return 2
        try:
            meta = load_meta(args.checkpoint)
            model = model_from_meta(meta)
            load_model(model, args.checkpoint)
        except (CheckpointError, KeyError) as exc:
            print(f"cannot describe a bad checkpoint: {exc}")
            return 2
        image_size = int(meta["image_size"])
        source = str(args.checkpoint)
    else:
        from .engine.parity import seeded_model

        image_size = args.image_size
        stem_stride = args.stem_stride or (2 if image_size >= 64 else 1)
        model = seeded_model(
            image_size=image_size, base_width=args.base_width,
            scaling=args.scaling, stem_stride=stem_stride, seed=0,
        )
        source = (f"seeded model ({image_size}px, width {args.base_width}, "
                  f"{args.scaling}, stem stride {stem_stride})")

    spec = args.passes
    if spec not in ("default", "none"):
        spec = tuple(name for name in spec.split(",") if name)
    input_shape = (args.batch, 1, image_size, image_size)
    try:
        program = lower(model)
        snapshots = run_pipeline_snapshots(
            program, spec, input_shape=input_shape
        )
    except (LoweringError, ValueError) as exc:
        print(f"cannot describe: {exc}")
        return 2

    print(f"model:    {source}")
    print(f"pipeline: {pipeline_signature(spec)}")
    print(f"input:    {input_shape}")
    baseline = None
    for index, snap in enumerate(snapshots):
        counts = ir.op_counts(snap.program)
        total = sum(ir.buffer_bytes(snap.program, input_shape).values())
        if baseline is None:
            baseline = total
        print(f"\n== {snap.name} ==")
        if snap.notes:
            notes = ", ".join(f"{k}={v}" for k, v in sorted(snap.notes.items()))
            print(f"notes:   {notes}")
        print("ops:     " + ", ".join(f"{k} x{v}" for k, v in counts.items()))
        saved = baseline - total
        pct = (100.0 * saved / baseline) if baseline else 0.0
        print(f"buffers: {total} B activation traffic"
              + (f" ({saved} B / {pct:.1f}% below lowered)" if saved else ""))
        chains = ir.fused_chains(snap.program)
        if chains:
            print(f"fused:   {len(chains)} chain(s)")
            for anchor, sources in chains:
                print(f"  {anchor} <- {' + '.join(sources)}")
        if args.full or index == 0 or index == len(snapshots) - 1:
            print(ir.describe(snap.program, input_shape))
    return 0


def _cmd_serve_bench(args) -> int:
    from .bench import format_table
    from .serve import measure_serving, serving_table_rows
    from .serve.registry import ModelRegistry

    if args.requests < 1:
        print(f"--requests must be >= 1 (got {args.requests})")
        return 2
    if args.checkpoint:
        registry = ModelRegistry()
        entry = registry.load_checkpoint("checkpoint", args.checkpoint)
        model, image_size = entry.model, entry.image_size
        args.image_size = image_size
        benchmark = _load(args)
    else:
        from .detect import BNNDetector

        benchmark = _load(args)
        detector = BNNDetector(base_width=8, epochs=args.epochs,
                               finetune_epochs=0, packed=False, seed=0)
        detector.fit(benchmark.train, np.random.default_rng(0))
        model, image_size = detector.model, args.image_size

    images = benchmark.test.images
    if images.ndim == 4:
        images = np.squeeze(images, axis=1)
    reps = int(np.ceil(args.requests / max(1, len(images))))
    images = np.concatenate([images] * reps)[: args.requests]
    results = measure_serving(model, image_size, images,
                              max_batch=args.max_batch,
                              max_wait_ms=args.max_wait_ms)
    print(format_table(
        serving_table_rows(results),
        title=f"Serving throughput ({args.requests} clips @{image_size}px)",
    ))
    single, batched = results["single-packed"], results["batched-packed"]
    identical = bool(np.array_equal(single.labels, batched.labels))
    print(f"batched vs single packed predictions identical: {identical}")
    speedup = (results["batched-packed"].clips_per_sec
               / results["single-float"].clips_per_sec)
    print(f"batched packed vs single-request float: {speedup:.1f}x")

    if args.processes > 0:
        import os

        from .serve import measure_cluster_serving

        scale = measure_cluster_serving(
            model, image_size, images,
            processes=args.processes, max_batch=args.max_batch,
        )
        solo = scale["single-process"]
        fleet = scale[f"cluster-{args.processes}"]
        print(format_table(
            [{
                "Configuration": result.mode,
                "Clips": result.clips,
                "Time (s)": round(result.seconds, 3),
                "Clips/s": round(result.clips_per_sec, 1),
                "vs 1 process": round(
                    result.clips_per_sec / solo.clips_per_sec, 2
                ),
            } for result in (solo, fleet)],
            title=(f"Scale-out — {args.processes} worker processes "
                   f"on {os.cpu_count()} CPU(s)"),
        ))
        fleet_identical = bool(
            np.array_equal(solo.scores, fleet.scores)
            and np.array_equal(solo.labels, fleet.labels)
        )
        print(f"cluster vs single-process predictions identical: "
              f"{fleet_identical}")
        identical = identical and fleet_identical

    return 0 if identical else 1


_COMMANDS = {
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "train": _cmd_train,
    "litho": _cmd_litho,
    "roc": _cmd_roc,
    "predict": _cmd_predict,
    "scan": _cmd_scan,
    "engine": _cmd_engine,
    "serve-bench": _cmd_serve_bench,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
