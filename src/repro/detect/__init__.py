"""Public hotspot-detection API: the paper's BNN detector, the three
Table 3 baselines, and the contest metrics."""

from .adaboost_detector import SPIE15Detector
from .base import HotspotDetector
from .biased import biased_targets
from .bnn_detector import BNNDetector, stages_for_image_size
from .cnn_detector import DAC17Detector
from .metrics import DEFAULT_LITHO_SECONDS, ConfusionMatrix, DetectionMetrics
from .online_detector import ICCAD16Detector
from .pattern_matcher import PatternMatchDetector
from .roc import RocCurve, auc, roc_curve
from .svm_detector import SVMDetector

__all__ = [
    "SPIE15Detector",
    "HotspotDetector",
    "biased_targets",
    "BNNDetector",
    "stages_for_image_size",
    "DAC17Detector",
    "DEFAULT_LITHO_SECONDS",
    "ConfusionMatrix",
    "DetectionMetrics",
    "ICCAD16Detector",
    "PatternMatchDetector",
    "SVMDetector",
    "RocCurve",
    "auc",
    "roc_curve",
]
