"""The SPIE'15 baseline detector: AdaBoost over simplified density
features (Matsunawa et al.).

Fast to train and evaluate, but — as Table 3 of the paper shows — well
behind the learned-representation methods on detection accuracy.
"""

from __future__ import annotations

import numpy as np

from ..features.density import density_features
from ..ml.adaboost import AdaBoost
from ..nn.data import ArrayDataset
from .base import HotspotDetector

__all__ = ["SPIE15Detector"]


class SPIE15Detector(HotspotDetector):
    """AdaBoost + decision trees on a pattern-density grid.

    Parameters
    ----------
    grid:
        Density-grid side (features = grid**2).
    n_estimators / max_depth:
        Boosting rounds and weak-tree depth.
    threshold:
        Decision threshold on the signed vote score; negative values
        trade false alarms for recall.
    """

    name = "SPIE'15 (AdaBoost)"

    def __init__(
        self,
        grid: int = 8,
        n_estimators: int = 40,
        max_depth: int = 2,
        threshold: float = 0.0,
    ):
        self.grid = grid
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.threshold = threshold
        self.model: AdaBoost | None = None

    def fit(self, train: ArrayDataset, rng: np.random.Generator) -> "SPIE15Detector":
        """Train the detector on the dataset (see class docstring)."""
        features = density_features(train.images, self.grid)
        self.model = AdaBoost(
            n_estimators=self.n_estimators, max_depth=self.max_depth,
            class_weight="balanced",
        )
        self.model.fit(features, np.asarray(train.labels))
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        if self.model is None:
            raise RuntimeError("predict() called before fit()")
        features = density_features(images, self.grid)
        return self.model.predict(features, threshold=self.threshold)
