"""The hotspot-detector interface.

Every detector consumes the benchmark's raw clip images — a
``(n, 1, size, size)`` batch of 0/1 layout rasters — and handles its
own feature extraction internally, so all four Table 3 methods plug
into one evaluation harness.
"""

from __future__ import annotations

import time

import numpy as np

from ..nn.data import ArrayDataset
from .metrics import ConfusionMatrix, DetectionMetrics

__all__ = ["HotspotDetector"]


class HotspotDetector:
    """Abstract detector: ``fit`` on a training set, ``predict`` labels.

    Subclasses set ``name`` (the Table 3 row label) and implement
    :meth:`fit` and :meth:`predict`.
    """

    name: str = "detector"

    def fit(self, train: ArrayDataset, rng: np.random.Generator) -> "HotspotDetector":
        """Train the detector on the dataset (see class docstring)."""
        raise NotImplementedError

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted 0/1 labels for a raw image batch."""
        raise NotImplementedError

    def evaluate(
        self,
        test: ArrayDataset,
        train_time_s: float = 0.0,
        litho_seconds: float = 10.0,
    ) -> DetectionMetrics:
        """Time a full prediction pass and score it against the labels."""
        start = time.perf_counter()
        predicted = self.predict(test.images)
        eval_time = time.perf_counter() - start
        confusion = ConfusionMatrix.from_predictions(predicted, test.labels)
        return DetectionMetrics(
            name=self.name,
            confusion=confusion,
            train_time_s=train_time_s,
            eval_time_s=eval_time,
            litho_seconds=litho_seconds,
        )

    def fit_evaluate(
        self,
        train: ArrayDataset,
        test: ArrayDataset,
        rng: np.random.Generator,
        litho_seconds: float = 10.0,
    ) -> DetectionMetrics:
        """Convenience: train, then evaluate, recording both times."""
        start = time.perf_counter()
        self.fit(train, rng)
        train_time = time.perf_counter() - start
        return self.evaluate(test, train_time_s=train_time,
                             litho_seconds=litho_seconds)
