"""Biased learning (Section 3.4.3, following DAC'17).

The benchmark is heavily imbalanced toward non-hotspots, so after
normal training the model is fine-tuned with the non-hotspot target
softened from ``[1, 0]`` to ``[1 - eps, eps]`` while hotspot targets
stay ``[0, 1]``.  The softened target lowers the confidence the model
needs on non-hotspots, shifting the decision boundary toward higher
hotspot recall — at the documented cost of extra false alarms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["biased_targets"]


def biased_targets(labels: np.ndarray, epsilon: float = 0.2) -> np.ndarray:
    """Soft-target matrix for biased fine-tuning.

    Parameters
    ----------
    labels:
        0/1 integer labels (1 = hotspot).
    epsilon:
        Bias term: non-hotspots get ``[1 - eps, eps]``.  ``epsilon = 0``
        reproduces plain one-hot targets.

    Returns
    -------
    np.ndarray
        ``(n, 2)`` target distributions, column 1 = hotspot.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
    labels = np.asarray(labels).astype(int)
    targets = np.empty((labels.shape[0], 2))
    hotspot = labels == 1
    targets[hotspot] = (0.0, 1.0)
    targets[~hotspot] = (1.0 - epsilon, epsilon)
    return targets
