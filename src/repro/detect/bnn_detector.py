"""The paper's detector: binarized residual network + biased learning.

Training follows Section 3.4: down-sampled binary clip images mapped to
the {-1, +1} domain, random flip augmentation, NAdam with
plateau-decayed learning rate, master weights clamped to [-1, 1] after
each step, then a biased fine-tuning phase with softened non-hotspot
targets (``eps = 0.2``).  Inference runs on the bit-packed
XNOR/popcount engine by default.
"""

from __future__ import annotations

import numpy as np

from ..binary.block import clip_binary_weights
from ..binary.inference import PackedBNN, ProgramEngine, engine_for_backend
from ..features.downsample import to_network_input
from ..models.bnn_resnet import build_bnn_resnet
from ..nn.data import ArrayDataset, DataLoader, RandomFlip, balanced_weights
from ..nn.optim import NAdam
from ..nn.schedulers import ReduceLROnPlateau
from ..nn.trainer import History, Trainer, predict_logits
from ..train import TrainingPhase, TrainingRun
from .base import HotspotDetector
from .biased import biased_targets

__all__ = ["BNNDetector", "stages_for_image_size"]


def stages_for_image_size(image_size: int, stem_stride: int = 1) -> int:
    """Number of stride-2 residual stages so the final map is 4x4:
    5 stages at the paper's 128x128 (stride-1 stem), fewer for the
    scaled-down benchmark images or a down-sampling stem."""
    stages = int(np.log2(image_size)) - 2 - (1 if stem_stride > 1 else 0)
    return int(np.clip(stages, 2, 5))


class BNNDetector(HotspotDetector):
    """Hotspot detector built on the binarized residual network.

    Parameters
    ----------
    channels:
        Stage filter counts; ``None`` derives the paper's doubling
        scheme (``base_width * 2**i``) with one stage per factor-2
        down-sampling of the input.
    scaling:
        Activation scaling mode of the binary convolutions.  Both
        ``"xnor"`` and the paper's per-channel ``"channelwise"``
        (Eq. 14) run exactly on the packed engine; channelwise uses the
        slower per-channel popcount path.
    epochs / finetune_epochs:
        Main training epochs and biased fine-tuning epochs.
    epsilon:
        Bias term of the fine-tuning targets (Section 3.4.3).
    finetune_hotspot_mass:
        Expected hotspot fraction of the biased fine-tune mini-batches;
        0.5 keeps the rebalanced sampling of the main phase, ``None``
        fine-tunes on the natural distribution (the paper's setting,
        where the softened targets are the only imbalance handle).
    lr:
        Initial learning rate.  The paper uses 0.15 on MXNet's scale;
        the float-simulated NAdam here is stable around 0.01.
    packed:
        Compile the trained network to the popcount engine for
        :meth:`predict` (the deployment configuration).
    backend:
        Explicit engine backend name (see
        :mod:`repro.engine.backends`); overrides ``packed`` when set.
        ``"float"`` serves the bit-identical float-MAC substrate, any
        future registered backend works unchanged.
    balance:
        Class-rebalance the main-phase mini-batches (draw with
        replacement so both classes contribute equally).  Necessary at
        the scaled-down benchmark sizes where the 6.6% hotspot fraction
        leaves too few positives per epoch.
    stem_stride:
        Stem convolution stride; ``None`` picks 2 for inputs of 64
        pixels and larger (the ResNet-18-style early down-sampling).
    target_fa_rate:
        Optional operating-point calibration: after training, pick the
        decision threshold on the *validation* split as the most
        recall-aggressive threshold whose validation false-alarm rate
        stays at or below this fraction of non-hotspots.  ``None``
        keeps the plain argmax decision.
    checkpoint_dir / resume / keep:
        Crash safety (see :class:`repro.train.TrainingRun`): with a
        directory set, every epoch of both training phases writes an
        atomic run-state checkpoint, and ``resume=True`` continues a
        killed run bit-identically (same constructor arguments, seed
        and fit ``rng`` required).  ``keep`` is the retention depth
        (last N + best-validation).
    max_grad_norm:
        Optional exploding-gradient guard forwarded to the trainers;
        with a checkpoint state available, a tripped guard rolls back
        and retries with a cut learning rate instead of crashing.
    handle_signals:
        Convert SIGINT/SIGTERM during ``fit`` into graceful preemption
        (finish the batch, checkpoint, raise
        :class:`~repro.train.PreemptedError`).
    step_hook:
        Test/chaos instrumentation: called with the global batch step
        after every update (the same seam the fault-injection tests of
        the serving layer use).
    """

    name = "Ours (BNN)"

    def __init__(
        self,
        channels: tuple[int, ...] | None = None,
        blocks_per_stage: tuple[int, ...] | None = None,
        base_width: int = 8,
        scaling: str = "xnor",
        epochs: int = 12,
        finetune_epochs: int = 4,
        epsilon: float = 0.2,
        finetune_hotspot_mass: float | None = 0.5,
        lr: float = 0.01,
        batch_size: int = 32,
        val_fraction: float = 0.15,
        packed: bool = True,
        backend: str | None = None,
        balance: bool = True,
        stem_stride: int | None = None,
        target_fa_rate: float | None = None,
        seed: int = 0,
        verbose: bool = False,
        checkpoint_dir=None,
        resume: bool = False,
        keep: int = 3,
        max_grad_norm: float | None = None,
        handle_signals: bool = False,
        step_hook=None,
    ):
        self.channels = channels
        self.blocks_per_stage = blocks_per_stage
        self.base_width = base_width
        self.scaling = scaling
        self.epochs = epochs
        self.finetune_epochs = finetune_epochs
        self.epsilon = epsilon
        self.finetune_hotspot_mass = finetune_hotspot_mass
        self.lr = lr
        self.batch_size = batch_size
        self.val_fraction = val_fraction
        self.packed = packed
        self.backend = backend
        self.balance = balance
        self.stem_stride = stem_stride
        self.target_fa_rate = target_fa_rate
        self.seed = seed
        self.verbose = verbose
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.keep = keep
        self.max_grad_norm = max_grad_norm
        self.handle_signals = handle_signals
        self.step_hook = step_hook
        self.model = None
        self.engine: ProgramEngine | None = None
        self.decision_bias = 0.0
        self.history: History | None = None

    @property
    def backend_name(self) -> str:
        """The engine backend :meth:`predict` runs on (after ``fit``)."""
        if self.engine is not None:
            return self.engine.backend_name
        return self.backend or "float"

    # -- internals -------------------------------------------------------

    def _build(self, image_size: int):
        stem_stride = self.stem_stride
        if stem_stride is None:
            stem_stride = 2 if image_size >= 64 else 1
        channels = self.channels
        if channels is None:
            n_stages = stages_for_image_size(image_size, stem_stride)
            channels = tuple(self.base_width * (2**i) for i in range(n_stages))
        return build_bnn_resnet(channels,
                                blocks_per_stage=self.blocks_per_stage,
                                scaling=self.scaling, seed=self.seed,
                                stem_stride=stem_stride)

    def _build_phase(
        self,
        name: str,
        train_part: ArrayDataset,
        val_loader: DataLoader | None,
        epochs: int,
        lr: float,
        rng: np.random.Generator,
        hard_labels: np.ndarray,
        hotspot_mass: float | None,
    ) -> TrainingPhase | None:
        """Construct one training phase (main or biased fine-tune).

        ``hard_labels`` are the 0/1 labels of ``train_part`` used for
        class-rebalanced sampling (the dataset itself may carry soft
        targets); ``hotspot_mass`` is the expected positive fraction per
        epoch (``None`` keeps the natural distribution).  Draws exactly
        two seeds from ``rng`` (loader, then augmenter) so that phase
        reconstruction — e.g. before a resume — is deterministic.
        """
        if epochs <= 0:
            return None
        optimizer = NAdam(self.model.parameters(), lr=lr)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        trainer = Trainer(
            self.model,
            optimizer,
            scheduler=scheduler,
            post_step=lambda: clip_binary_weights(self.model),
            max_grad_norm=self.max_grad_norm,
        )
        weights = (
            balanced_weights(hard_labels, positive_mass=hotspot_mass)
            if hotspot_mass is not None
            else None
        )
        loader = DataLoader(
            train_part,
            self.batch_size,
            rng=np.random.default_rng(rng.integers(2**32)),
            augment=RandomFlip(np.random.default_rng(rng.integers(2**32))),
            sample_weights=weights,
        )
        return TrainingPhase(name=name, epochs=epochs, trainer=trainer,
                             train_loader=loader, val_loader=val_loader)

    def _scores(self, images: np.ndarray) -> np.ndarray:
        """Hotspot decision scores (hotspot logit minus non-hotspot)."""
        if self.engine is not None:
            logits = self.engine.predict_logits(images)
        else:
            logits = predict_logits(self.model, images)
        return logits[:, 1] - logits[:, 0]

    def _calibrate(self, val_images: np.ndarray, val_labels: np.ndarray) -> None:
        """Choose ``decision_bias`` so the validation false-alarm rate
        stays at or below ``target_fa_rate`` (the most recall-aggressive
        such threshold)."""
        negatives = self._scores(val_images)[val_labels == 0]
        if negatives.size == 0:
            return
        # allow the top target_fa_rate fraction of negatives to be flagged
        self.decision_bias = float(
            np.quantile(negatives, 1.0 - self.target_fa_rate)
        )

    # -- HotspotDetector interface ----------------------------------------

    def fit(self, train: ArrayDataset, rng: np.random.Generator) -> "BNNDetector":
        """Train (Algorithm 1) then biased fine-tune (Section 3.4.3)."""
        images = to_network_input(train.images)
        labels = np.asarray(train.labels, dtype=np.int64)
        self.model = self._build(images.shape[-1])
        self.decision_bias = 0.0

        if self.val_fraction > 0 and len(train) >= 10:
            order = rng.permutation(len(train))
            n_val = max(1, int(round(len(train) * self.val_fraction)))
            val_idx, fit_idx = order[:n_val], order[n_val:]
        else:
            val_idx, fit_idx = np.array([], int), np.arange(len(train))
        fit_images, fit_labels = images[fit_idx], labels[fit_idx]
        val_loader = None
        if val_idx.size:
            val_loader = DataLoader(
                ArrayDataset(images[val_idx], labels[val_idx]),
                self.batch_size, shuffle=False,
            )

        hard = ArrayDataset(fit_images, fit_labels)
        phases = []
        main = self._build_phase("main", hard, val_loader, self.epochs,
                                 self.lr, rng, hard_labels=fit_labels,
                                 hotspot_mass=0.5 if self.balance else None)
        if main is not None:
            phases.append(main)
        if self.finetune_epochs > 0 and self.epsilon > 0:
            soft = ArrayDataset(fit_images,
                                biased_targets(fit_labels, self.epsilon))
            finetune = self._build_phase(
                "finetune", soft, val_loader, self.finetune_epochs,
                self.lr * 0.1, rng, hard_labels=fit_labels,
                hotspot_mass=self.finetune_hotspot_mass)
            if finetune is not None:
                phases.append(finetune)
        if phases:
            run = TrainingRun(
                self.model, phases,
                checkpoint_dir=self.checkpoint_dir, keep=self.keep,
                step_hook=self.step_hook,
                handle_signals=self.handle_signals, verbose=self.verbose,
            )
            self.history = run.run(resume=self.resume)

        if self.backend is not None:
            self.engine = engine_for_backend(self.model, self.backend)
        else:
            self.engine = PackedBNN(self.model) if self.packed else None
        if self.target_fa_rate is not None and val_idx.size:
            self._calibrate(images[val_idx], labels[val_idx])
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """0/1 predictions via the packed engine (or the float sim)."""
        if self.model is None:
            raise RuntimeError("predict() called before fit()")
        scores = self._scores(to_network_input(images))
        return (scores > self.decision_bias).astype(np.int64)
