"""The DAC'17 baseline detector: DCT feature tensor + float CNN +
biased learning (Yang et al.).

The comparison point the paper calls "the best deep learning-based
solution": a full-precision CNN over truncated block-DCT coefficients,
trained with the biased-learning scheme this paper also adopts.
"""

from __future__ import annotations

import numpy as np

from ..features.dct import dct_feature_tensor
from ..models.dac17_cnn import dac17_cnn
from ..nn.data import ArrayDataset, DataLoader, balanced_weights
from ..nn.optim import Adam
from ..nn.schedulers import ReduceLROnPlateau
from ..nn.trainer import Trainer, predict_logits
from .base import HotspotDetector
from .biased import biased_targets

__all__ = ["DAC17Detector"]


class DAC17Detector(HotspotDetector):
    """Float CNN on DCT feature tensors with biased learning.

    Parameters
    ----------
    block:
        DCT block side in pixels; ``None`` picks ``image_size // 8`` so
        the feature-tensor grid is 8x8 (two 2x2 poolings fit).
    coefficients:
        Zig-zag DCT coefficients kept per block (the tensor's channels).
    epochs / finetune_epochs / epsilon:
        Training schedule; biased fine-tuning mirrors the reference.
    """

    name = "DAC'17 (CNN)"

    def __init__(
        self,
        block: int | None = None,
        coefficients: int = 8,
        stage_widths: tuple[int, int] = (16, 32),
        epochs: int = 12,
        finetune_epochs: int = 4,
        epsilon: float = 0.2,
        lr: float = 1e-3,
        batch_size: int = 32,
        balance: bool = True,
        seed: int = 0,
    ):
        self.block = block
        self.coefficients = coefficients
        self.stage_widths = stage_widths
        self.epochs = epochs
        self.finetune_epochs = finetune_epochs
        self.epsilon = epsilon
        self.lr = lr
        self.batch_size = batch_size
        self.balance = balance
        self.seed = seed
        self.model = None
        self._block_used: int | None = None
        self._coefficients_used: int | None = None

    def _features(self, images: np.ndarray) -> np.ndarray:
        return dct_feature_tensor(
            images, block=self._block_used,
            coefficients=self._coefficients_used,
        )

    def _train_on(self, dataset: ArrayDataset, epochs: int, lr: float,
                  rng: np.random.Generator, hard_labels: np.ndarray) -> None:
        if epochs <= 0:
            return
        optimizer = Adam(self.model.parameters(), lr=lr)
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        trainer = Trainer(self.model, optimizer, scheduler=scheduler)
        weights = balanced_weights(hard_labels) if self.balance else None
        loader = DataLoader(
            dataset, self.batch_size,
            rng=np.random.default_rng(rng.integers(2**32)),
            sample_weights=weights,
        )
        trainer.fit(loader, epochs=epochs)

    def fit(self, train: ArrayDataset, rng: np.random.Generator) -> "DAC17Detector":
        """Train the detector on the dataset (see class docstring)."""
        image_size = train.images.shape[-1]
        self._block_used = self.block if self.block is not None else image_size // 8
        if self._block_used < 1 or image_size % self._block_used != 0:
            raise ValueError(
                f"block {self._block_used} incompatible with image size {image_size}"
            )
        self._coefficients_used = min(self.coefficients, self._block_used**2)
        features = self._features(train.images)
        grid = features.shape[-1]
        self.model = dac17_cnn(
            self._coefficients_used, grid, stage_widths=self.stage_widths,
            seed=self.seed,
        )
        labels = np.asarray(train.labels, dtype=np.int64)
        self._train_on(ArrayDataset(features, labels), self.epochs, self.lr, rng,
                       hard_labels=labels)
        if self.finetune_epochs > 0 and self.epsilon > 0:
            soft = ArrayDataset(features, biased_targets(labels, self.epsilon))
            self._train_on(soft, self.finetune_epochs, self.lr * 0.1, rng,
                           hard_labels=labels)
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        if self.model is None:
            raise RuntimeError("predict() called before fit()")
        logits = predict_logits(self.model, self._features(images))
        return logits.argmax(axis=1).astype(np.int64)
