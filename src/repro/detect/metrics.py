"""Evaluation metrics (Table 1 and Eq. 1-3 of the paper).

* **accuracy** — recall on the hotspot class, ``TP / (TP + FN)``
  (Definition 2.1; the contest's metric, *not* overall accuracy);
* **false alarm** — the raw count of non-hotspots flagged hotspot,
  ``FP`` (Definition 2.2);
* **ODST** — overall detection and simulation time (Definition 2.3):
  every flagged instance must be lithography-simulated downstream, so
  ``ODST = (FP + TP) * t_ls + N * t_ev``.  Following the paper (and
  ICCAD 2013), ``t_ls = 10 s`` per instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DEFAULT_LITHO_SECONDS", "ConfusionMatrix", "DetectionMetrics"]

#: Lithography simulation time per instance used in the paper's ODST.
DEFAULT_LITHO_SECONDS = 10.0


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts; "positive" is the hotspot class."""

    tp: int
    fp: int
    tn: int
    fn: int

    @classmethod
    def from_predictions(
        cls, predicted: np.ndarray, actual: np.ndarray
    ) -> "ConfusionMatrix":
        """Tally counts from 0/1 prediction and label vectors."""
        predicted = np.asarray(predicted).astype(bool)
        actual = np.asarray(actual).astype(bool)
        if predicted.shape != actual.shape:
            raise ValueError(
                f"shape mismatch: {predicted.shape} vs {actual.shape}"
            )
        return cls(
            tp=int((predicted & actual).sum()),
            fp=int((predicted & ~actual).sum()),
            tn=int((~predicted & ~actual).sum()),
            fn=int((~predicted & actual).sum()),
        )

    @property
    def total(self) -> int:
        """Total number of classified instances."""
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """Hotspot recall ``TP / (TP + FN)`` (Definition 2.1)."""
        positives = self.tp + self.fn
        if positives == 0:
            return 0.0
        return self.tp / positives

    @property
    def false_alarm(self) -> int:
        """``FP`` (Definition 2.2)."""
        return self.fp

    @property
    def precision(self) -> float:
        """Fraction of flagged instances that are real hotspots."""
        flagged = self.tp + self.fp
        if flagged == 0:
            return 0.0
        return self.tp / flagged

    def odst(
        self, runtime_s: float, litho_seconds: float = DEFAULT_LITHO_SECONDS
    ) -> float:
        """Overall detection and simulation time (Eq. 3).

        ``runtime_s`` is the total model evaluation time over all
        ``total`` instances (``N * t_ev``).
        """
        return (self.tp + self.fp) * litho_seconds + runtime_s


@dataclass(frozen=True)
class DetectionMetrics:
    """One detector's full evaluation record (a Table 3 row)."""

    name: str
    confusion: ConfusionMatrix
    train_time_s: float
    eval_time_s: float
    litho_seconds: float = DEFAULT_LITHO_SECONDS

    @property
    def accuracy(self) -> float:
        """Hotspot recall (Definition 2.1)."""
        return self.confusion.accuracy

    @property
    def false_alarm(self) -> int:
        """False-positive count (Definition 2.2)."""
        return self.confusion.false_alarm

    @property
    def odst(self) -> float:
        """Overall detection and simulation time (Eq. 3)."""
        return self.confusion.odst(self.eval_time_s, self.litho_seconds)

    def row(self) -> dict:
        """Dictionary in the paper's Table 3 column order."""
        return {
            "Method": self.name,
            "FA#": self.false_alarm,
            "Runtime (s)": round(self.eval_time_s, 3),
            "ODST (s)": round(self.odst, 1),
            "Accu (%)": round(100.0 * self.accuracy, 1),
        }
