"""The ICCAD'16 baseline detector: optimised CCS features + online
learning (Zhang et al.).

Concentric-circle samples are ranked by mutual information with the
hotspot label; the top subset feeds a streaming logistic learner whose
positive-class weighting pushes recall up — reproducing the baseline's
Table 3 profile: high accuracy, but the most false alarms of the four
methods.
"""

from __future__ import annotations

import numpy as np

from ..features.ccs import ccs_features
from ..features.selection import FeatureSelector
from ..ml.online import OnlineLogisticClassifier
from ..nn.data import ArrayDataset
from .base import HotspotDetector

__all__ = ["ICCAD16Detector"]


class ICCAD16Detector(HotspotDetector):
    """Online logistic learner on MI-selected CCS features.

    Parameters
    ----------
    n_selected:
        CCS samples kept by the mutual-information optimisation.
    positive_weight:
        Loss weight of hotspot samples (recall/false-alarm trade-off);
        ``None`` uses the class ratio ``#NHS / #HS`` ("balanced").
    threshold:
        Probability threshold for flagging a hotspot; the reference
        operates high-recall, so the default sits below 0.5.
    epochs / batch_size / lr:
        Streaming schedule of the online learner.
    """

    name = "ICCAD'16 (Online)"

    def __init__(
        self,
        n_selected: int = 64,
        positive_weight: float | None = None,
        threshold: float = 0.4,
        epochs: int = 10,
        batch_size: int = 32,
        lr: float = 0.5,
    ):
        self.n_selected = n_selected
        self.positive_weight = positive_weight
        self.threshold = threshold
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.selector: FeatureSelector | None = None
        self.model: OnlineLogisticClassifier | None = None

    def fit(self, train: ArrayDataset, rng: np.random.Generator) -> "ICCAD16Detector":
        """Train the detector on the dataset (see class docstring)."""
        features = ccs_features(train.images)
        labels = np.asarray(train.labels)
        k = min(self.n_selected, features.shape[1])
        self.selector = FeatureSelector(k=k)
        selected = self.selector.fit_transform(features, labels)
        positive_weight = self.positive_weight
        if positive_weight is None:
            n_pos = max(int((labels == 1).sum()), 1)
            positive_weight = (labels == 0).sum() / n_pos
        self.model = OnlineLogisticClassifier(
            n_features=k, lr=self.lr, positive_weight=positive_weight
        )
        self.model.fit(
            selected, labels, epochs=self.epochs, batch_size=self.batch_size,
            rng=np.random.default_rng(rng.integers(2**32)),
        )
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        if self.model is None or self.selector is None:
            raise RuntimeError("predict() called before fit()")
        selected = self.selector.transform(ccs_features(images))
        return self.model.predict(selected, threshold=self.threshold)
