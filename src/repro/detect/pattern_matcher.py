"""A pattern-matching hotspot detector (the Section 1 strawman).

The paper's introduction contrasts two detector classes: pattern
matchers, which are "relatively fast, but impossible to detect the
unseen patterns", and learning-based methods.  This detector implements
the matching class so the contrast can be measured: training hotspot
clips (plus their flips, the same symmetry group the learned detectors
use) are stored as bit-packed signatures; a test clip is flagged when
its signature sits within a Hamming-distance ball of any stored
hotspot.

By construction it has perfect recall on exact repeats of training
hotspots and zero recall on genuinely novel pattern types — exactly the
behaviour `benchmarks/bench_generalization.py` quantifies against the
BNN.
"""

from __future__ import annotations

import numpy as np

from ..binary.bitpack import pack_signs, popcount
from ..features.downsample import downsample_binary
from ..nn.data import ArrayDataset
from .base import HotspotDetector

__all__ = ["PatternMatchDetector"]


class PatternMatchDetector(HotspotDetector):
    """Nearest-pattern matching over bit-packed clip signatures.

    Parameters
    ----------
    signature_size:
        Clips are down-sampled to ``signature_size**2`` bits.
    max_distance_fraction:
        A clip is flagged when its Hamming distance to some stored
        hotspot signature is at most this fraction of the signature
        bits.  0 is exact matching; the default tolerates small
        perturbations (the "fuzzy" matching of the ICCAD 2012 contest's
        title).
    include_flips:
        Also store the horizontal/vertical flips of each hotspot.
    """

    name = "Pattern matching"

    def __init__(
        self,
        signature_size: int = 16,
        max_distance_fraction: float = 0.05,
        include_flips: bool = True,
    ):
        if not 0.0 <= max_distance_fraction < 1.0:
            raise ValueError(
                f"max_distance_fraction must be in [0, 1), got "
                f"{max_distance_fraction}"
            )
        self.signature_size = signature_size
        self.max_distance_fraction = max_distance_fraction
        self.include_flips = include_flips
        self._library: np.ndarray | None = None  # (n_patterns, words)

    # -- signatures -------------------------------------------------------

    def _signatures(self, images: np.ndarray) -> np.ndarray:
        """Bit-pack down-sampled binary clip images: ``(n, words)``."""
        arr = np.asarray(images)
        if arr.ndim == 4:
            arr = arr[:, 0]
        small = downsample_binary(arr, self.signature_size)
        return pack_signs(small.reshape(small.shape[0], -1) * 2.0 - 1.0)

    def _variants(self, images: np.ndarray) -> np.ndarray:
        arr = np.asarray(images)
        if arr.ndim == 4:
            arr = arr[:, 0]
        versions = [arr]
        if self.include_flips:
            versions += [arr[:, :, ::-1], arr[:, ::-1, :], arr[:, ::-1, ::-1]]
        return np.concatenate(versions, axis=0)

    # -- HotspotDetector interface -----------------------------------------

    def fit(self, train: ArrayDataset,
            rng: np.random.Generator) -> "PatternMatchDetector":
        """Store signatures of every training hotspot (and flips)."""
        labels = np.asarray(train.labels)
        hotspots = np.asarray(train.images)[labels == 1]
        if hotspots.shape[0] == 0:
            raise ValueError("training set contains no hotspot patterns")
        library = self._signatures(self._variants(hotspots))
        self._library = np.unique(library, axis=0)
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        if self._library is None:
            raise RuntimeError("predict() called before fit()")
        signatures = self._signatures(images)
        n_bits = self.signature_size**2
        budget = int(self.max_distance_fraction * n_bits)
        flags = np.zeros(signatures.shape[0], dtype=np.int64)
        for i, signature in enumerate(signatures):
            distances = popcount(
                np.bitwise_xor(self._library, signature)
            ).sum(axis=1)
            flags[i] = int(distances.min() <= budget)
        return flags

    @property
    def library_size(self) -> int:
        """Stored (deduplicated) hotspot signatures."""
        if self._library is None:
            raise RuntimeError("library_size read before fit()")
        return int(self._library.shape[0])
