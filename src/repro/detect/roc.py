"""ROC analysis for hotspot detectors.

The contest metrics (accuracy at one operating point, false-alarm
count) hide the detector's full trade-off curve; these utilities expose
it.  Used by the operating-point benchmarks and by
:class:`~repro.detect.bnn_detector.BNNDetector`'s calibration analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RocCurve", "roc_curve", "auc"]


@dataclass
class RocCurve:
    """An ROC curve: parallel arrays sorted by threshold (descending).

    ``thresholds[i]`` flags samples with ``score > thresholds[i]``;
    ``fa_rate`` is FP / #negatives, ``recall`` is TP / #positives (the
    contest's "accuracy").
    """

    thresholds: np.ndarray
    fa_rate: np.ndarray
    recall: np.ndarray

    def recall_at_fa_rate(self, max_fa_rate: float) -> float:
        """Best achievable recall with FA rate at or below the bound."""
        feasible = self.fa_rate <= max_fa_rate
        if not feasible.any():
            return 0.0
        return float(self.recall[feasible].max())

    def threshold_for_fa_rate(self, max_fa_rate: float) -> float:
        """Lowest threshold whose FA rate stays within the bound."""
        feasible = np.flatnonzero(self.fa_rate <= max_fa_rate)
        if feasible.size == 0:
            return float(self.thresholds[0])
        return float(self.thresholds[feasible[-1]])


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> RocCurve:
    """Compute the ROC curve of decision scores against 0/1 labels.

    Thresholds are the distinct score values (descending), prepended
    with +inf so the curve starts at (0, 0).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(int)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    n_pos = int((labels == 1).sum())
    n_neg = int((labels == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tp = np.concatenate([[0], np.cumsum(sorted_labels == 1)])
    fp = np.concatenate([[0], np.cumsum(sorted_labels == 0)])
    thresholds = np.concatenate([[np.inf], scores[order]])
    # collapse ties: keep the last point of each distinct threshold
    keep = np.concatenate([np.diff(thresholds) != 0, [True]])
    return RocCurve(
        thresholds=thresholds[keep],
        fa_rate=fp[keep] / n_neg,
        recall=tp[keep] / n_pos,
    )


def auc(curve: RocCurve) -> float:
    """Area under the ROC curve (trapezoidal)."""
    return float(np.trapezoid(curve.recall, curve.fa_rate))
