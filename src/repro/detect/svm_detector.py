"""An SVM-based hotspot detector (the related-work detector class).

The pre-deep-learning state of the art the paper surveys ([8], [9],
[12]) classifies hand-crafted features with support vector machines.
This detector pairs the density-grid encoding with either the linear
(Pegasos) or kernel (RBF) SVM from :mod:`repro.ml.svm`, giving the
benchmark suite a representative of the SVM family alongside the
boosted-tree, online-linear and deep detectors.
"""

from __future__ import annotations

import numpy as np

from ..features.density import density_features
from ..ml.svm import KernelSVM, LinearSVM
from ..nn.data import ArrayDataset
from .base import HotspotDetector

__all__ = ["SVMDetector"]


class SVMDetector(HotspotDetector):
    """Density features + (linear | RBF) support vector machine.

    Parameters
    ----------
    kernel:
        ``"linear"`` (Pegasos primal) or ``"rbf"`` (kernel dual).
    grid:
        Density-grid side.
    positive_weight:
        Hinge-loss weight of hotspot samples; ``None`` balances by the
        class ratio.
    threshold:
        Decision threshold on the signed margin.
    """

    name = "SVM (density)"

    def __init__(
        self,
        kernel: str = "linear",
        grid: int = 8,
        positive_weight: float | None = None,
        threshold: float = 0.0,
        epochs: int = 20,
        c: float = 2.0,
        gamma: float = 2.0,
    ):
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"kernel must be 'linear' or 'rbf', got {kernel!r}")
        self.kernel = kernel
        self.grid = grid
        self.positive_weight = positive_weight
        self.threshold = threshold
        self.epochs = epochs
        self.c = c
        self.gamma = gamma
        self.model: LinearSVM | KernelSVM | None = None

    def fit(self, train: ArrayDataset, rng: np.random.Generator) -> "SVMDetector":
        """Train the detector on the dataset (see class docstring)."""
        features = density_features(train.images, self.grid)
        labels = np.asarray(train.labels)
        weight = self.positive_weight
        if weight is None:
            n_pos = max(int((labels == 1).sum()), 1)
            weight = (labels == 0).sum() / n_pos
        if self.kernel == "linear":
            self.model = LinearSVM(epochs=self.epochs, positive_weight=weight)
            self.model.fit(features, labels,
                           rng=np.random.default_rng(rng.integers(2**32)))
        else:
            self.model = KernelSVM(c=self.c, gamma=self.gamma,
                                   positive_weight=weight)
            self.model.fit(features, labels)
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        if self.model is None:
            raise RuntimeError("predict() called before fit()")
        features = density_features(images, self.grid)
        return self.model.predict(features, threshold=self.threshold)
