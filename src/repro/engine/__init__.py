"""repro.engine — an inspectable op-graph IR under every inference backend.

The engine package splits inference into four stages:

1. :mod:`~repro.engine.ir` — a small typed op-graph IR (``Program`` of
   ``OpNode``\\ s) carrying frozen weights and geometry;
2. :mod:`~repro.engine.lower` — one walk of a trained module tree
   emitting the IR (``lower``), plus structural queries on it
   (``find_plane_stem``);
3. :mod:`~repro.engine.passes` — graph-rewrite passes over the IR
   (``run_pipeline``): batch-norm folding into fused threshold convs,
   compile-time scale hoisting, buffer-liveness marking;
4. :mod:`~repro.engine.backends` — named compilers from IR to kernels
   (``float``, ``packed``, ``compiled``; registry: ``get_backend`` /
   ``available_backends``);
5. :mod:`~repro.engine.executor` — runs compiled kernels with
   activation-buffer reuse and optional per-op timing hooks.

:mod:`~repro.engine.parity` is the correctness gate: every registered
backend pair must produce bit-identical logits on seeded models.
"""

from .backends import Backend, available_backends, get_backend, register_backend
from .executor import Executor, Kernel, OpTimings
from .ir import (
    ActivationOp,
    BatchNormAffine,
    BinaryConvOp,
    BinaryDenseOp,
    ConvOp,
    DenseOp,
    FusedBinaryConvOp,
    OpNode,
    PoolOp,
    Program,
    ReshapeOp,
    ResidualOp,
    VerifierError,
    describe,
    infer_shapes,
    is_pointwise,
    output_shape,
    verify_program,
)
from .lower import (
    DEFAULT_PIPELINE,
    LoweringError,
    find_plane_stem,
    freeze_batchnorm,
    lower,
    pipeline_signature,
    run_pipeline,
    run_pipeline_snapshots,
)

__all__ = [
    "ActivationOp",
    "Backend",
    "BatchNormAffine",
    "BinaryConvOp",
    "BinaryDenseOp",
    "ConvOp",
    "DEFAULT_PIPELINE",
    "DenseOp",
    "Executor",
    "FusedBinaryConvOp",
    "Kernel",
    "LoweringError",
    "OpNode",
    "OpTimings",
    "PoolOp",
    "Program",
    "ReshapeOp",
    "ResidualOp",
    "VerifierError",
    "available_backends",
    "describe",
    "find_plane_stem",
    "freeze_batchnorm",
    "get_backend",
    "infer_shapes",
    "is_pointwise",
    "lower",
    "output_shape",
    "pipeline_signature",
    "register_backend",
    "run_pipeline",
    "run_pipeline_snapshots",
    "verify_program",
]
