"""Backend registry: named compilers from IR programs to kernels.

A backend's job is tiny by design: provide kernels for the two
binarized op types (:class:`~repro.engine.ir.BinaryConvOp`,
:class:`~repro.engine.ir.BinaryDenseOp`) — the ops where an arithmetic
substrate choice exists at all.  Everything else (frozen batch-norm,
activations, pooling, the float head, residual structure) is shared
here in :class:`Backend`, compiled identically for every backend, which
is half of how cross-backend bit-identity is achieved (the other half
is the exact-integer dot-product contract on the binary ops — see
``repro.engine.parity``).

Adding a backend is one module: subclass :class:`Backend`, implement
``compile_binary_conv`` / ``compile_binary_dense``, decorate with
:func:`register_backend`, and import it below.  The parity harness then
picks it up automatically and gates it against every existing backend.
"""

from __future__ import annotations

import numpy as np

from ...nn import functional as F
from ...nn.layers.activations import sign
from .. import ir
from ..executor import Executor, Kernel, OpTimings

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "available_backends",
]

_REGISTRY: dict[str, type["Backend"]] = {}


def register_backend(name: str):
    """Class decorator adding a :class:`Backend` to the registry."""

    def decorate(cls: type["Backend"]) -> type["Backend"]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> "Backend":
    """Instantiate a backend by name; unknown names list what exists."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        ) from None
    return cls()


class Backend:
    """Base compiler: shared kernels + dispatch to binary-op hooks.

    Every kernel here is written to be bit-identical to the historical
    closure-chain engine (same expression order, same in-place points),
    so rebuilding :class:`~repro.binary.inference.PackedBNN` on the IR
    changed no output byte.
    """

    name = "base"

    # -- binary ops: the substrate choice subclasses make ---------------

    def compile_binary_conv(self, node: ir.BinaryConvOp) -> Kernel:
        raise TypeError(
            f"backend {self.name!r} cannot compile {type(node).__name__}"
        )

    def compile_binary_dense(self, node: ir.BinaryDenseOp) -> Kernel:
        raise TypeError(
            f"backend {self.name!r} cannot compile {type(node).__name__}"
        )

    def compile_fused_conv(self, node: ir.FusedBinaryConvOp) -> Kernel:
        """Reference lowering of a fused op: replay its source nodes.

        Runs the folded batch-norm with the exact expressions of
        :func:`_batchnorm_kernel`, then this backend's own binary-conv
        kernel on the anchor convolution — so any backend is
        automatically bit-identical across {passes on, passes off}.
        Backends with a genuinely fused kernel (``compiled``) override
        this.
        """
        conv = self.compile_binary_conv(_unfused_conv(node))
        if node.bn_scale is None:
            return Kernel(node, conv.fn)
        scale, shift = node.bn_scale, node.bn_shift

        def run(x: np.ndarray) -> np.ndarray:
            shape = [1] * x.ndim
            shape[1] = scale.size
            out = x * scale.reshape(shape)
            out += shift.reshape(shape)
            return conv.fn(out)

        def run_inplace(x: np.ndarray) -> np.ndarray:
            shape = [1] * x.ndim
            shape[1] = scale.size
            x *= scale.reshape(shape)
            x += shift.reshape(shape)
            return conv.fn(x)

        # the in-place variant is offered only under the liveness pass's
        # license; the executor's ownership tracking guards it again
        return Kernel(
            node, run, inplace_fn=run_inplace if node.inplace_input else None
        )

    # -- program compilation --------------------------------------------

    def compile(self, program: ir.Program,
                timings: OpTimings | None = None) -> Executor:
        """Compile a program; kernels register timing rows in order.

        Each node's row is registered *before* its kernel is built so
        residual sub-programs (compiled eagerly inside their kernel)
        land after their parent's predecessors — snapshot rows come out
        in program pre-order.
        """
        kernels = []
        for node in program:
            if timings is not None and not isinstance(node, ir.ResidualOp):
                # fused ops register the source layers they absorbed so
                # reports can attribute their time back to paper layers
                timings.register(node.name, getattr(node, "sources", ()))
            kernels.append(self.compile_node(node, timings))
        return Executor(kernels, timings)

    def compile_node(self, node: ir.OpNode,
                     timings: OpTimings | None = None) -> Kernel:
        """Dispatch one IR node to its kernel builder."""
        if isinstance(node, ir.FusedBinaryConvOp):
            return self.compile_fused_conv(node)
        if isinstance(node, ir.BinaryConvOp):
            return self.compile_binary_conv(node)
        if isinstance(node, ir.BinaryDenseOp):
            return self.compile_binary_dense(node)
        if isinstance(node, ir.BatchNormAffine):
            return _batchnorm_kernel(node)
        if isinstance(node, ir.ActivationOp):
            return _activation_kernel(node)
        if isinstance(node, ir.PoolOp):
            return _pool_kernel(node)
        if isinstance(node, ir.ReshapeOp):
            return _reshape_kernel(node)
        if isinstance(node, ir.ConvOp):
            return _conv_kernel(node)
        if isinstance(node, ir.DenseOp):
            return _dense_kernel(node)
        if isinstance(node, ir.ResidualOp):
            return self._residual_kernel(node, timings)
        raise TypeError(
            f"backend {self.name!r} cannot compile {type(node).__name__}"
        )

    def _residual_kernel(self, node: ir.ResidualOp,
                         timings: OpTimings | None) -> Kernel:
        main = self.compile(node.main, timings)
        shortcut = (
            None if node.shortcut is None
            else self.compile(node.shortcut, timings)
        )

        def run(x: np.ndarray) -> np.ndarray:
            # both branches read x, so neither may own it
            out = main.run(x, owned=False)
            return out + (x if shortcut is None else shortcut.run(x, owned=False))

        # timed=False: time is attributed to the branch nodes, not the add
        return Kernel(node, run, timed=False)


def _unfused_conv(node: ir.FusedBinaryConvOp) -> ir.BinaryConvOp:
    """The anchor :class:`~repro.engine.ir.BinaryConvOp` of a fused op."""
    return ir.BinaryConvOp(
        name=node.name,
        in_channels=node.in_channels,
        out_channels=node.out_channels,
        kernel_size=node.kernel_size,
        stride=node.stride,
        padding=node.padding,
        scaling=node.scaling,
        weight=node.weight,
    )


# -- shared structural/float kernels ------------------------------------


def _batchnorm_kernel(node: ir.BatchNormAffine) -> Kernel:
    scale, shift = node.scale, node.shift

    def run(x: np.ndarray) -> np.ndarray:
        shape = [1] * x.ndim
        shape[1] = scale.size
        out = x * scale.reshape(shape)
        out += shift.reshape(shape)  # in-place on the fresh product
        return out

    def run_inplace(x: np.ndarray) -> np.ndarray:
        shape = [1] * x.ndim
        shape[1] = scale.size
        x *= scale.reshape(shape)
        x += shift.reshape(shape)
        return x

    return Kernel(node, run, inplace_fn=run_inplace)


def _activation_kernel(node: ir.ActivationOp) -> Kernel:
    if node.kind == "relu":
        return Kernel(
            node,
            lambda x: np.maximum(x, 0.0),
            inplace_fn=lambda x: np.maximum(x, 0.0, out=x),
        )
    if node.kind == "hardtanh":
        return Kernel(
            node,
            lambda x: np.clip(x, -1.0, 1.0),
            inplace_fn=lambda x: np.clip(x, -1.0, 1.0, out=x),
        )
    if node.kind == "sign":
        return Kernel(node, sign)
    if node.kind == "identity":
        return Kernel(node, lambda x: x, passthrough=True)
    raise TypeError(f"unknown activation kind {node.kind!r}")


def _pool_kernel(node: ir.PoolOp) -> Kernel:
    if node.kind == "max":
        k, s = node.kernel_size, node.stride
        return Kernel(node, lambda x: F.maxpool2d_forward(x, k, s)[0])
    if node.kind == "avg":
        k, s = node.kernel_size, node.stride
        return Kernel(node, lambda x: F.avgpool2d_forward(x, k, s))
    if node.kind == "global_avg":
        return Kernel(node, lambda x: x.mean(axis=(2, 3)))
    raise TypeError(f"unknown pool kind {node.kind!r}")


def _reshape_kernel(node: ir.ReshapeOp) -> Kernel:
    if node.kind != "flatten":
        raise TypeError(f"unknown reshape kind {node.kind!r}")
    # usually a view of the input buffer, hence passthrough
    return Kernel(node, lambda x: x.reshape(x.shape[0], -1), passthrough=True)


def _conv_kernel(node: ir.ConvOp) -> Kernel:
    weight, bias = node.weight, node.bias
    stride, padding = node.stride, node.padding
    return Kernel(
        node, lambda x: F.conv2d_forward(x, weight, bias, stride, padding)[0]
    )


def _dense_kernel(node: ir.DenseOp) -> Kernel:
    weight, bias = node.weight, node.bias
    # einsum (unoptimized) accumulates each output element in a fixed
    # per-row loop order, unlike `x @ weight` where BLAS picks different
    # kernels (gemv vs gemm) by batch size — keeping outputs
    # bit-identical however requests are batched.
    if bias is None:
        return Kernel(node, lambda x: np.einsum("nk,kc->nc", x, weight))
    return Kernel(node, lambda x: np.einsum("nk,kc->nc", x, weight) + bias)


# Import concrete backends last so their @register_backend decorators
# run on package import (each module is one self-contained backend).
from . import float as float_backend  # noqa: E402,F401
from . import packed as packed_backend  # noqa: E402,F401
from . import compiled as compiled_backend  # noqa: E402,F401
