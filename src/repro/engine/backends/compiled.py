"""Compiled backend: genuinely fused kernels for the pass-pipeline IR.

Where the ``packed`` backend executes a fused node by *replaying* its
sources (materialize batch-norm, then the packed convolution), this
backend compiles one kernel per :class:`~repro.engine.ir.\
FusedBinaryConvOp` that never materializes the batch-norm output:

* **Threshold binarization.**  ``fl(fl(x*s) + b) >= 0  ⟺  fl(x*s) >= -b``
  (float addition of values straddling zero is exact — Hauser's lemma —
  and rounding is monotone and sign-preserving), so the sign bits come
  from one compare per channel against the hoisted threshold ``-b``.
  The Eq. 15 ``|x|`` map, which *does* need batch-norm values, reuses
  the same ``t = x*s`` product (``t += b`` reproduces the batch-norm
  output bit-for-bit) — one pass over the input total.

* **Exact single-precision GEMM.**  The channel-summed binary dots are
  integers bounded by ``c*k*k < 2**24``, and every partial product of a
  {-1,+1} filter row with a {0,1} activation column is ``0`` or ``±1``
  — so float32 BLAS accumulates them *exactly*, regardless of blocking
  or FMA contraction.  With activations as 0/1 bits (bit 0 = −1, so
  zero padding is the −1 padding of the binary domain) the true dot is
  ``2*(W @ B) - rowsum(W)``, also exact.  The result is cast to float64
  (exact for these integers) and scaled in the reference expression
  order, which is what keeps this backend bit-identical to ``float``
  and ``packed``.

* **Per-shape dot strategy.**  The threshold bits feed whichever dot
  kernel wins at that layer's geometry: receptive fields that fit one
  16-bit word (the 1-channel 3×3 stem) use the shared 65536-entry dot
  table of :func:`repro.binary.bitpack.packed_conv_dots`; other small
  receptive fields (up to ``REPRO_COMPILED_GEMM_MAX_BITS`` column rows,
  default 72 — the stage-1 3×3 layers) use the SGEMM.  Both fused
  paths amortize their per-row gather over spatial positions, so they
  win only on large output maps: below ``REPRO_COMPILED_MIN_POSITIONS``
  output cells per image (default 1024) the kernel dispatches, per
  call, to the reference replay (materialized batch-norm + packed
  popcount conv) — measured on the plane-scan workload, the replay is
  faster at every such layer, and a fused kernel that loses to the
  unfused path would make "compiled" a downgrade at depth.  All paths
  produce the same exact integer dots and the same float expression
  order, so the dispatch is invisible to parity.

* **Workspace arena.**  Every scratch buffer (padded bit plane, column
  matrix, GEMM accumulator, output) is pooled per kernel per thread —
  steady-state execution performs no large allocations, which on the
  plane-scan path (hundreds of same-shaped chunks) removes the page-
  fault traffic that dominated per-op times.

* **Shape-keyed autotuned tiling.**  The column fill + GEMM is tiled
  over the batch axis (column order is batch-major, so batch tiles are
  contiguous column blocks); the tile size is picked per (node, input
  shape) by timing each candidate once on real calls.  Tiling never
  changes results — every column is independent and exact — so the
  autotuner is invisible to parity.  ``REPRO_COMPILED_AUTOTUNE=0``
  pins the first candidate (full batch) instead.

When Numba is importable the two Python gather loops (column fill, word
pack) are njit-compiled at import; the NumPy implementations are the
fallback and the reference — both orderings produce identical bits, so
parity holds either way.  The container this repo ships in has no
Numba; nothing here imports it unconditionally.

Channelwise-scaled convolutions (Eq. 14 needs channel-resolved partial
dots, which defeats the channel-summed GEMM) and all non-fused nodes
delegate to the ``packed`` backend's kernels unchanged.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from ...binary import bitpack, quantize
from .. import ir
from ..executor import Kernel
from . import register_backend
from .packed import PackedBackend

__all__ = ["CompiledBackend", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False


def _fill_cols_numpy(
    cols: np.ndarray,
    bits: np.ndarray,
    n0: int,
    n1: int,
    k: int,
    stride: int,
    oh: int,
    ow: int,
) -> None:
    """Gather 0/1 activation columns for one batch tile.

    ``cols`` is ``(c*k*k, (n1-n0)*oh*ow)`` float32; row order is
    channel-major then kernel row-major, matching
    ``w_binary.reshape(c_out, -1)``.
    """
    nb = n1 - n0
    span = nb * oh * ow
    c = bits.shape[1]
    row = 0
    for ch in range(c):
        plane = bits[n0:n1, ch]
        for dy in range(k):
            for dx in range(k):
                # cols[row, :span] is a contiguous 1-D view, so the
                # reshape is a view too and the write lands in cols
                cols[row, :span].reshape(nb, oh, ow)[...] = plane[
                    :, dy : dy + stride * oh : stride,
                    dx : dx + stride * ow : stride,
                ]
                row += 1


def _pack_words16_numpy(
    words: np.ndarray,
    bits: np.ndarray,
    k: int,
    stride: int,
    oh: int,
    ow: int,
) -> None:
    """Pack thresholded bits into uint16 activation words.

    Bit order is ``(dy, dx, ch)`` — the layout of
    ``bitpack._pack_activation_columns`` and ``bitpack.pack_filters``,
    so the words index the same shared dot table.
    """
    words.fill(0)
    c = bits.shape[1]
    index = 0
    for dy in range(k):
        for dx in range(k):
            for ch in range(c):
                window = bits[
                    :, ch, dy : dy + stride * oh : stride,
                    dx : dx + stride * ow : stride,
                ]
                words |= window.astype(np.uint16) << np.uint16(index)
                index += 1


if HAVE_NUMBA:  # pragma: no cover - numba absent in the CI container

    @numba.njit(cache=True)
    def _fill_cols_jit(cols, bits, n0, n1, k, stride, oh, ow):
        c = bits.shape[1]
        for ch in range(c):
            for dy in range(k):
                for dx in range(k):
                    row = (ch * k + dy) * k + dx
                    for n in range(n0, n1):
                        base = (n - n0) * oh * ow
                        for oy in range(oh):
                            for ox in range(ow):
                                cols[row, base + oy * ow + ox] = bits[
                                    n, ch, dy + stride * oy, dx + stride * ox
                                ]

    @numba.njit(cache=True)
    def _pack_words16_jit(words, bits, k, stride, oh, ow):
        n, c = bits.shape[0], bits.shape[1]
        for i in range(n):
            for oy in range(oh):
                for ox in range(ow):
                    v = np.uint16(0)
                    index = 0
                    for dy in range(k):
                        for dx in range(k):
                            for ch in range(c):
                                if bits[i, ch, dy + stride * oy,
                                        dx + stride * ox]:
                                    v |= np.uint16(1) << np.uint16(index)
                                index += 1
                    words[i, oy, ox] = v

    _fill_cols = _fill_cols_jit
    _pack_words16 = _pack_words16_jit
else:
    _fill_cols = _fill_cols_numpy
    _pack_words16 = _pack_words16_numpy


class _Workspace(threading.local):
    """Per-thread buffer pool: one named, shape-keyed scratch arena.

    A kernel's scratch (and its output buffer — dead by the time the
    same node runs again, since the chain consumed it) is reused across
    calls instead of reallocated, keyed by ``(tag, shape)`` so varying
    batch sizes coexist.
    """

    def __init__(self) -> None:
        self.buffers: dict[tuple, np.ndarray] = {}

    def get(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype).str)
        buf = self.buffers.get(key)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype)
            self.buffers[key] = buf
        return buf


class _BatchTiler:
    """Shape-keyed autotuned batch-tile size for the column fill + GEMM.

    Candidates are tried once each on real calls (first candidate
    first, so the untuned behavior is "no tiling"); afterwards the
    fastest sticks.  Tiling choice cannot affect results — columns are
    independent and the GEMM is exact — only speed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: dict[tuple, dict] = {}
        self._autotune = os.environ.get(
            "REPRO_COMPILED_AUTOTUNE", "1"
        ) != "0"

    def candidates(self, n: int) -> list[int]:
        cands = [n]
        for tn in (64, 16):
            if tn < n:
                cands.append(tn)
        return cands

    def pick(self, key: tuple, n: int) -> int:
        if not self._autotune:
            return n
        with self._lock:
            state = self._state.setdefault(key, {"timings": {}})
            if "best" in state:
                return state["best"]
            for tn in self.candidates(n):
                if tn not in state["timings"]:
                    return tn
            state["best"] = min(state["timings"], key=state["timings"].get)
            return state["best"]

    def report(self, key: tuple, tn: int, seconds: float) -> None:
        if not self._autotune:
            return
        with self._lock:
            state = self._state.setdefault(key, {"timings": {}})
            if "best" not in state:
                state["timings"].setdefault(tn, seconds)


@register_backend("compiled")
class CompiledBackend(PackedBackend):
    """Fused threshold-compare + exact-SGEMM kernels over the pass IR.

    Subclasses :class:`~repro.engine.backends.packed.PackedBackend`, so
    unfused binary ops (a program run with ``passes="none"``) and the
    dense layers execute the packed kernels unchanged — the fusion win
    lives entirely in :meth:`compile_fused_conv`.
    """

    def __init__(self) -> None:
        self._tiler = _BatchTiler()

    def compile_fused_conv(self, node: ir.FusedBinaryConvOp) -> Kernel:
        if node.scaling == "channelwise":
            # Eq. 14 needs channel-resolved partial dots; the summed
            # GEMM cannot express it, so replay the reference path.
            return super().compile_fused_conv(node)
        return self._fused_kernel(node)

    def _fused_kernel(self, node: ir.FusedBinaryConvOp) -> Kernel:
        k, stride, padding = node.kernel_size, node.stride, node.padding
        c_in, c_out = node.in_channels, node.out_channels
        xnor = node.scaling == "xnor"
        if node.w_binary is not None:
            w_binary, alpha_w = node.w_binary, node.alpha_w
        else:
            w_binary, alpha_w = quantize.binarize_weights(node.weight)
        bn_scale, bn_shift = node.bn_scale, node.bn_shift
        # thresholds: fl(t + b) >= 0  ⟺  t >= -b (negation is exact)
        thresholds = None if bn_shift is None else -bn_shift
        n_bits = c_in * k * k
        use_table16 = n_bits <= 16 and c_out <= 64
        gemm_max_bits = int(
            os.environ.get("REPRO_COMPILED_GEMM_MAX_BITS", "72")
        )
        # fused gathers amortize over spatial positions; below this
        # many output cells per image the reference replay is faster
        min_positions = int(
            os.environ.get("REPRO_COMPILED_MIN_POSITIONS", "1024")
        )
        fallback = super().compile_fused_conv(node)
        if not use_table16 and n_bits > gemm_max_bits:
            # wide receptive fields: no fused kernel beats the packed
            # popcount path at any map size — replay wins outright
            return fallback
        if use_table16:
            w_packed = bitpack.pack_filters(w_binary)
        else:
            w_mat32 = np.ascontiguousarray(
                w_binary.reshape(c_out, n_bits), dtype=np.float32
            )
            w_rowsum32 = w_mat32.sum(axis=1, dtype=np.float32)
        alpha_w4 = alpha_w[:, None, None, None]
        workspace = _Workspace()
        tiler = self._tiler
        name = node.name

        def run(x: np.ndarray) -> np.ndarray:
            n, _, h, w = x.shape
            oh = (h + 2 * padding - k) // stride + 1
            ow = (w + 2 * padding - k) // stride + 1
            if oh * ow < min_positions:
                # small map: the gather-per-row fused paths lose to the
                # reference replay here (bit-identical either way)
                return fallback.fn(x)
            # zeros-allocated and only the interior ever written, so the
            # padding border stays 0 (= −1, the binary domain's "empty")
            bits = workspace.get(
                "bits", (n, c_in, h + 2 * padding, w + 2 * padding), bool
            )
            interior = bits[:, :, padding : padding + h,
                            padding : padding + w]
            a = workspace.get("a", (n, 1, h, w), np.float64) if xnor else None
            if bn_scale is None:
                np.greater_equal(x, 0.0, out=interior)
                if xnor:
                    # same sequential accumulation as input_scale_xnor
                    np.abs(x[:, 0], out=a[:, 0])
                    for ch in range(1, c_in):
                        t2 = workspace.get("t2", (n, h, w), np.float64)
                        np.abs(x[:, ch], out=t2)
                        a[:, 0] += t2
            else:
                # one channel slice at a time stays cache-resident
                # across the 4 passes (the maps here are large)
                t = workspace.get("t", (n, h, w), np.float64)
                t2 = workspace.get("t2", (n, h, w), np.float64) if xnor else None
                for ch in range(c_in):
                    np.multiply(x[:, ch], bn_scale[ch], out=t)
                    np.greater_equal(t, thresholds[ch], out=interior[:, ch])
                    if xnor:
                        # t += b reproduces the batch-norm output exactly
                        t += bn_shift[ch]
                        if ch == 0:
                            np.abs(t, out=a[:, 0])
                        else:
                            np.abs(t, out=t2)
                            a[:, 0] += t2
            if xnor:
                if c_in > 1:
                    a /= c_in
                alpha4 = quantize.box_mean(a, k, k, stride, padding)
            out = workspace.get("out", (n, c_out, oh, ow), np.float64)
            out_t = out.transpose(1, 0, 2, 3)
            if use_table16:
                words = workspace.get("w16", (n, oh, ow), np.uint16)
                _pack_words16(words, bits, k, stride, oh, ow)
                dots = bitpack.packed_conv_dots(
                    words.reshape(1, -1), w_packed, n_bits
                )
                np.multiply(
                    dots.reshape(c_out, n, oh, ow), alpha_w4, out=out_t
                )
            else:
                key = (name, n, h, w)
                tn = tiler.pick(key, n)
                start = time.perf_counter()
                cols = workspace.get(
                    "cols", (n_bits, tn * oh * ow), np.float32
                )
                dots = workspace.get("G", (c_out, n * oh * ow), np.float32)
                for n0 in range(0, n, tn):
                    n1 = min(n0 + tn, n)
                    span = (n1 - n0) * oh * ow
                    _fill_cols(cols, bits, n0, n1, k, stride, oh, ow)
                    np.matmul(
                        w_mat32,
                        cols[:, :span],
                        out=dots[:, n0 * oh * ow : n0 * oh * ow + span],
                    )
                # true ±1 dot from the 0/1 GEMM; every value an exact
                # integer < 2**24, so float32 holds it exactly
                np.multiply(dots, np.float32(2.0), out=dots)
                dots -= w_rowsum32[:, None]
                tiler.report(key, tn, time.perf_counter() - start)
                np.multiply(
                    dots.reshape(c_out, n, oh, ow), alpha_w4, out=out_t
                )
            if xnor:
                out *= alpha4
            return out

        return Kernel(node, run)
