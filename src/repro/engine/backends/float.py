"""Float backend: binary ops as float MACs over sign values.

This is *deployment* float arithmetic, not the training-time float
simulation: inputs are signed (±1) and lowered with -1 padding exactly
like the packed path, so every channel-summed dot product is a sum of
±1 products — an exact small integer that float64 represents without
rounding regardless of accumulation order (BLAS blocking, FMA, pairwise
sums all preserve exact integers below 2^53).  The scaling factors are
then applied with the same expressions, in the same order, on arrays of
the same memory layout as the packed kernels.  Result: this backend is
**bit-identical** to the packed backend (asserted by
``repro.engine.parity``), while exercising none of the bit-packing
machinery — which is exactly what makes it a useful cross-check and a
reference for future substrates.

(The training float simulation in ``BinaryConv2D.forward`` multiplies
pre-scaled columns and is only close to ~1e-8; parity is a property of
the deployment lowering, not of float arithmetic per se.)
"""

from __future__ import annotations

import numpy as np

from ...binary import quantize
from ...nn import functional as F
from ...nn.layers.activations import sign
from .. import ir
from ..executor import Kernel
from . import Backend, register_backend

__all__ = ["FloatBackend"]


@register_backend("float")
class FloatBackend(Backend):
    """Compile binary ops to exact-integer float-MAC kernels."""

    def compile_binary_conv(self, node: ir.BinaryConvOp) -> Kernel:
        c_out, k = node.out_channels, node.kernel_size
        stride, padding = node.stride, node.padding
        w_binary, alpha_w = quantize.binarize_weights(node.weight)
        mode = node.scaling

        if mode == "channelwise":
            c_in = node.in_channels
            # (c_out, c, kh*kw) sign filters for channel-resolved partials
            w_sign = np.ascontiguousarray(w_binary.reshape(c_out, c_in, k * k))

            def run_channelwise(x: np.ndarray) -> np.ndarray:
                n, _, h, w = x.shape
                oh = F.conv_output_size(h, k, stride, padding)
                ow = F.conv_output_size(w, k, stride, padding)
                alpha_cols = quantize.input_scale_channelwise(
                    x, k, k, stride, padding
                )
                cols = F.im2col(sign(x), k, k, stride, padding, pad_value=-1.0)
                cols_pc = cols.reshape(c_in, k * k, -1)
                out = np.empty((c_out, cols_pc.shape[-1]), dtype=np.float64)
                for filt in range(c_out):
                    # (c, P) channel-resolved partial dots: exact integers,
                    # C-contiguous — the same values and layout as the
                    # packed kernel's popcount partials, so the
                    # alpha-weighted channel reduction below sums in the
                    # identical pairwise order.
                    partial = np.einsum("ck,ckp->cp", w_sign[filt], cols_pc)
                    out[filt] = (partial * alpha_cols).sum(axis=0)
                out4 = np.ascontiguousarray(
                    out.reshape(c_out, n, oh, ow).transpose(1, 0, 2, 3)
                )
                return out4 * alpha_w[None, :, None, None]

            return Kernel(node, run_channelwise)

        w_mat = np.ascontiguousarray(w_binary.reshape(c_out, -1))

        def run(x: np.ndarray) -> np.ndarray:
            n, _, h, w = x.shape
            oh = F.conv_output_size(h, k, stride, padding)
            ow = F.conv_output_size(w, k, stride, padding)
            cols = F.im2col(sign(x), k, k, stride, padding, pad_value=-1.0)
            # exact integer dots; same canonical C layout as the packed
            # kernel so downstream strided reductions are bit-stable
            dots = (w_mat @ cols).reshape(c_out, n, oh, ow).transpose(
                1, 0, 2, 3
            ).astype(np.float64, order="C")
            out = dots * alpha_w[None, :, None, None]
            if mode == "xnor":
                alpha_map = quantize.input_scale_xnor(x, k, k, stride, padding)
                out *= alpha_map.reshape(n, 1, oh, ow)
            return out

        return Kernel(node, run)

    def compile_binary_dense(self, node: ir.BinaryDenseOp) -> Kernel:
        w = node.weight
        alpha_w = np.abs(w).mean(axis=0)
        w_sign = sign(w)  # (in, out) ±1
        scaling = node.scaling

        def run(x: np.ndarray) -> np.ndarray:
            dots = sign(x) @ w_sign  # exact integer dots
            out = dots * alpha_w
            if scaling:
                out = out * np.abs(x).mean(axis=1, keepdims=True)
            return out

        return Kernel(node, run)
