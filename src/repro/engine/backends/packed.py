"""Packed backend: XNOR/popcount kernels on 64-bit words.

The deployment substrate of the paper (Section 3.4): filters are
binarized (Eq. 8) and bit-packed once at compile time, activations are
sign-packed per call, and each dot product is computed as
``n_bits - 2 * popcount(xor)`` — an exact integer.  The scaling factors
(Eq. 14/15) are then applied in float, in a fixed expression order that
the float backend replicates multiply-for-multiply, which is what makes
the two backends bit-identical rather than merely close.

The table16 fast path lives below this backend, inside
:func:`repro.binary.bitpack.packed_conv_dots`: single-word
(``c_in * k * k <= 16``) convolutions — the 1-channel 3x3 stem — are
resolved through a 65536-entry dot table instead of popcounts.  Because
it produces the same exact integers, it stays invisible to parity.
"""

from __future__ import annotations

import numpy as np

# Submodule imports (not names from repro.binary's __init__): this
# module is imported while repro.binary may itself still be
# initializing, and bitpack/quantize do not import back into it.
from ...binary import bitpack, quantize
from ...nn.layers.activations import sign
from .. import ir
from ..executor import Kernel
from . import Backend, register_backend

__all__ = ["PackedBackend"]


@register_backend("packed")
class PackedBackend(Backend):
    """Compile binary ops to bit-packed popcount kernels."""

    def compile_binary_conv(self, node: ir.BinaryConvOp) -> Kernel:
        """Pack the binarized filters once; popcount kernels at call time."""
        c_out, k = node.out_channels, node.kernel_size
        stride, padding = node.stride, node.padding
        w_binary, alpha_w = quantize.binarize_weights(node.weight)
        mode = node.scaling

        if mode == "channelwise":
            w_packed = bitpack.pack_signs(
                w_binary.reshape(c_out, node.in_channels, k * k)
            )

            def run_channelwise(x: np.ndarray) -> np.ndarray:
                alpha_cols = quantize.input_scale_channelwise(
                    x, k, k, stride, padding
                )
                out = bitpack.binary_conv2d_packed_channelwise(
                    sign(x), w_packed, alpha_cols, c_out, k, stride, padding
                )
                return out * alpha_w[None, :, None, None]

            return Kernel(node, run_channelwise)

        w_packed = bitpack.pack_filters(w_binary)
        c_in = node.in_channels

        def run(x: np.ndarray) -> np.ndarray:
            # binary_conv2d_packed binarizes by sign bit internally
            dots = bitpack.binary_conv2d_packed(
                x, w_packed, c_out, k, stride, padding, in_channels=c_in
            )
            out = dots * alpha_w[None, :, None, None]
            if mode == "xnor":
                n, _, oh, ow = out.shape
                alpha_map = quantize.input_scale_xnor(x, k, k, stride, padding)
                out *= alpha_map.reshape(n, 1, oh, ow)  # in-place, bit-equal
            return out

        return Kernel(node, run)

    def compile_binary_dense(self, node: ir.BinaryDenseOp) -> Kernel:
        """Packed dense layer: one popcount dot per output unit."""
        w = node.weight
        n_in = node.in_features
        alpha_w = np.abs(w).mean(axis=0)
        w_packed = bitpack.pack_signs(sign(w).T)  # (out, words)
        scaling = node.scaling

        def run(x: np.ndarray) -> np.ndarray:
            x_packed = bitpack.pack_signs(sign(x))
            dots = bitpack.packed_matmul(x_packed, w_packed, n_in)
            out = dots.astype(np.float64) * alpha_w
            if scaling:
                out = out * np.abs(x).mean(axis=1, keepdims=True)
            return out

        return Kernel(node, run)
