"""Executor: run a compiled program with buffer reuse and op timings.

A backend compiles each IR node to a :class:`Kernel`.  The executor
chains them with two cross-cutting services the closure-chain engines
could not offer:

**Activation-buffer reuse.**  Element-wise kernels (batch-norm affine,
ReLU, hard-tanh, the in-place scaling multiplies) may provide an
``inplace_fn`` that mutates its input instead of allocating a fresh
array.  The executor tracks buffer *ownership*: the caller's input is
never mutated, but once any kernel has produced a fresh intermediate
the chain owns it and downstream in-place variants run directly on it.
In-place and out-of-place variants are required to be bit-identical —
NumPy ufuncs with ``out=`` guarantee this — so reuse never changes
results, only allocation traffic.

**Per-op timing hooks.**  When constructed with an :class:`OpTimings`
table the executor wraps each kernel in a wall-clock measurement,
accumulated per node name.  The table is shared by sub-executors
(residual branches) and is thread-safe, because serving engines are
driven concurrently by the micro-batcher and the scan worker pool.
Structural wrapper kernels (residual add) set ``timed=False`` so only
leaf work is measured and branch time is attributed to branch nodes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .ir import OpNode

__all__ = ["Kernel", "OpTimings", "Executor"]


@dataclass
class Kernel:
    """One compiled IR node.

    ``fn`` must never mutate its input.  ``inplace_fn``, when provided,
    may mutate and return its input and must be bit-identical to ``fn``;
    the executor only calls it on buffers the chain owns.
    ``passthrough`` marks kernels whose output is (or may be) the input
    array or a view of it — identity, flatten — so ownership of the
    caller's input is not claimed by running them.
    """

    node: OpNode
    fn: Callable[[np.ndarray], np.ndarray]
    inplace_fn: Callable[[np.ndarray], np.ndarray] | None = None
    passthrough: bool = False
    timed: bool = True


class OpTimings:
    """Thread-safe cumulative wall-clock time per op name.

    Registration order (compile order, i.e. program pre-order) fixes the
    order of :meth:`snapshot` rows so reports read like the network.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._order: list[str] = []
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._sources: dict[str, tuple[str, ...]] = {}

    def register(self, name: str, sources: tuple[str, ...] = ()) -> None:
        """Ensure ``name`` has a row (idempotent).

        ``sources`` names the source-model layers the row accounts for —
        more than one when the row is a fused op.  Reports use it to
        attribute fused-op time back to paper layers; a plain op's row
        defaults to covering just itself.
        """
        with self._lock:
            if name not in self._calls:
                self._order.append(name)
                self._calls[name] = 0
                self._seconds[name] = 0.0
            if sources:
                self._sources[name] = tuple(sources)

    def record(self, name: str, seconds: float) -> None:
        """Accumulate one timed call of ``name``."""
        with self._lock:
            self._calls[name] = self._calls.get(name, 0) + 1
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def snapshot(self) -> list[dict[str, object]]:
        """Per-op rows ``{op, calls, total_ms, mean_ms, sources}`` in
        program order; ``sources`` is ``(op,)`` unless registered wider."""
        with self._lock:
            rows = []
            for name in self._order:
                calls = self._calls[name]
                total_ms = self._seconds[name] * 1e3
                rows.append({
                    "op": name,
                    "calls": calls,
                    "total_ms": total_ms,
                    "mean_ms": total_ms / calls if calls else 0.0,
                    "sources": list(self._sources.get(name, (name,))),
                })
            return rows

    def reset(self) -> None:
        """Zero every counter (rows and their order are kept)."""
        with self._lock:
            for name in self._order:
                self._calls[name] = 0
                self._seconds[name] = 0.0


class Executor:
    """Run a sequence of compiled kernels over one activation buffer."""

    def __init__(self, kernels: list[Kernel], timings: OpTimings | None = None):
        self.kernels = list(kernels)
        self.timings = timings
        if timings is not None:
            for kernel in self.kernels:
                if kernel.timed:
                    timings.register(kernel.node.name)

    def run(self, x: np.ndarray, owned: bool = False) -> np.ndarray:
        """Execute the chain on ``x``.

        ``owned=True`` tells the executor the caller relinquishes ``x``
        (it is a scratch buffer), enabling in-place kernels from the
        first op; the default never mutates the caller's array.
        """
        timings = self.timings
        for kernel in self.kernels:
            fn = kernel.fn
            if owned and kernel.inplace_fn is not None:
                fn = kernel.inplace_fn
            if timings is not None and kernel.timed:
                start = time.perf_counter()
                x = fn(x)
                timings.record(kernel.node.name, time.perf_counter() - start)
            else:
                x = fn(x)
            if not kernel.passthrough:
                owned = True
        return x

    __call__ = run
