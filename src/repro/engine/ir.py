"""Typed op-graph IR: the shared representation under every backend.

A trained :class:`~repro.nn.module.Module` tree is lowered (by
:mod:`repro.engine.lower`) into a :class:`Program` — a flat sequence of
typed op nodes carrying everything a backend needs to emit kernels:
frozen weights, channel counts, kernel/stride/padding geometry, and
activation-scaling modes.  Backends (:mod:`repro.engine.backends`)
compile nodes to kernels; the :class:`~repro.engine.executor.Executor`
runs them.

Design rules:

* **Nodes are frozen snapshots.**  Weight arrays are copied at lowering
  time, so a compiled program never changes under further training of
  the source model (the old ``PackedBNN`` snapshot guarantee, now shared
  by every backend).
* **Inference-only.**  Training-time concerns (dropout masks, batch-norm
  batch statistics, STE gradients) are resolved away during lowering:
  dropout lowers to an identity :class:`ActivationOp`, batch-norm to a
  frozen per-channel :class:`BatchNormAffine`.
* **Structure is explicit.**  The only nesting is
  :class:`ResidualOp`, which carries its branches as sub-``Program``\\ s;
  everything else is a flat pipeline, which is what lets the plane-scan
  engine find a network's stem by scanning the node list instead of
  pattern-matching layer classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..nn import functional as F

__all__ = [
    "OpNode",
    "BatchNormAffine",
    "BinaryConvOp",
    "BinaryDenseOp",
    "FusedBinaryConvOp",
    "ConvOp",
    "DenseOp",
    "PoolOp",
    "ReshapeOp",
    "ActivationOp",
    "ResidualOp",
    "Program",
    "is_pointwise",
    "output_shape",
    "infer_shapes",
    "describe",
    "VerifierError",
    "verify_program",
    "fused_chains",
    "op_counts",
    "buffer_bytes",
]


@dataclass(frozen=True, eq=False)
class OpNode:
    """Base class of every IR node.

    ``name`` is the dotted path of the source layer in the module tree
    (e.g. ``"1.main.0.conv"``) — unique within a program, stable across
    backends, and the key under which per-op timings are reported.
    """

    name: str


@dataclass(frozen=True, eq=False)
class BatchNormAffine(OpNode):
    """Frozen batch-norm: one per-channel affine ``x * scale + shift``.

    ``scale = gamma / sqrt(running_var + eps)`` and
    ``shift = beta - running_mean * scale`` are computed once at
    lowering time from the layer's running statistics.
    """

    channels: int
    scale: np.ndarray  #: per-channel multiplier, shape ``(channels,)``
    shift: np.ndarray  #: per-channel offset, shape ``(channels,)``


@dataclass(frozen=True, eq=False)
class BinaryConvOp(OpNode):
    """Binarized convolution (Eq. 8/14-15): the substrate-defining op.

    Carries the real-valued master filters; backends binarize them
    (Eq. 8) and pick their arithmetic — float MACs over sign values or
    packed XNOR/popcount words — under the contract that the
    channel-summed dot products are **exact integers**, which is what
    makes every backend bit-identical (see ``repro.engine.parity``).
    """

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    scaling: str  #: ``"channelwise"`` (Eq. 14), ``"xnor"``, or ``"none"``
    weight: np.ndarray  #: master filters ``(c_out, c_in, k, k)``


@dataclass(frozen=True, eq=False)
class BinaryDenseOp(OpNode):
    """Binarized fully connected layer (one popcount dot per unit)."""

    in_features: int
    out_features: int
    scaling: bool  #: apply the per-row ``mean|x|`` activation scale
    weight: np.ndarray  #: master weights ``(in_features, out_features)``


@dataclass(frozen=True, eq=False)
class FusedBinaryConvOp(OpNode):
    """A fused BatchNormAffine→Binarize→BinaryConv→scale chain.

    Produced by the pass pipeline (:mod:`repro.engine.passes`), never by
    lowering.  Semantically equal — bit for bit — to running the source
    nodes in sequence: the batch-norm affine is *folded into the
    binarization* as a threshold compare (``x*scale + shift >= 0`` iff
    ``x*scale >= -shift``; float addition near zero is exact and
    rounding is monotone, so the fold changes no sign bit), and the
    Eq. 8 weight-side constants may be hoisted to compile time.

    ``name`` is the anchor convolution's name, so per-op timing rows
    keep their historical keys; ``sources`` lists every source node
    folded in (the batch-norm first, when present) for attribution.
    """

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    scaling: str  #: ``"channelwise"`` (Eq. 14), ``"xnor"``, or ``"none"``
    weight: np.ndarray  #: master filters ``(c_out, c_in, k, k)``
    sources: tuple[str, ...]  #: names of the folded source nodes
    #: folded batch-norm affine (both None when no batch-norm preceded)
    bn_scale: np.ndarray | None = None  #: per-channel multiplier ``(c_in,)``
    bn_shift: np.ndarray | None = None  #: per-channel offset ``(c_in,)``
    #: Eq. 8 constants hoisted by the scale-hoisting pass (else None)
    w_binary: np.ndarray | None = None  #: ``sign(weight)``, same shape
    alpha_w: np.ndarray | None = None  #: per-filter ``mean|W|``, ``(c_out,)``
    #: liveness annotation: the input buffer dies at this node (it is not
    #: shared with a residual sibling), so a backend may offer an
    #: in-place variant that treats the input as scratch
    inplace_input: bool = False


@dataclass(frozen=True, eq=False)
class ConvOp(OpNode):
    """Plain float convolution (kept for non-binarized stems/baselines)."""

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    weight: np.ndarray
    bias: np.ndarray | None


@dataclass(frozen=True, eq=False)
class DenseOp(OpNode):
    """Plain float fully connected layer (the network head)."""

    in_features: int
    out_features: int
    weight: np.ndarray
    bias: np.ndarray | None


@dataclass(frozen=True, eq=False)
class PoolOp(OpNode):
    """Spatial pooling: ``kind`` is ``"max"``, ``"avg"``, or
    ``"global_avg"`` (which collapses ``(n, c, h, w)`` to ``(n, c)``)."""

    kind: str
    kernel_size: int = 0  #: 0 for ``global_avg``
    stride: int = 0


@dataclass(frozen=True, eq=False)
class ReshapeOp(OpNode):
    """Pure layout change; ``"flatten"`` maps ``(n, ...)`` to ``(n, -1)``."""

    kind: str = "flatten"


@dataclass(frozen=True, eq=False)
class ActivationOp(OpNode):
    """Element-wise activation: ``"relu"``, ``"hardtanh"``, ``"sign"``,
    or ``"identity"`` (what inference-time dropout lowers to)."""

    kind: str


@dataclass(frozen=True, eq=False)
class ResidualOp(OpNode):
    """``out = main(x) + shortcut(x)`` (identity shortcut when None)."""

    main: "Program"
    shortcut: "Program | None"


#: Node types whose computation is element-wise per pixel and channel:
#: applying them to a full plane and slicing a window afterwards is
#: bit-identical to slicing first.  The plane-scan engine runs any such
#: program prefix directly on the plane.
_POINTWISE_TYPES = (BatchNormAffine, ActivationOp)


def is_pointwise(node: OpNode) -> bool:
    """Whether ``node`` acts element-wise (plane/window commuting)."""
    return isinstance(node, _POINTWISE_TYPES)


@dataclass(frozen=True, eq=False)
class Program:
    """An ordered pipeline of op nodes (the unit backends compile)."""

    nodes: tuple[OpNode, ...]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[OpNode]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> OpNode:
        return self.nodes[index]

    def walk(self) -> Iterator[OpNode]:
        """Pre-order traversal including residual branch sub-programs."""
        for node in self.nodes:
            yield node
            if isinstance(node, ResidualOp):
                yield from node.main.walk()
                if node.shortcut is not None:
                    yield from node.shortcut.walk()


def output_shape(node: OpNode, shape: tuple[int, ...]) -> tuple[int, ...]:
    """Shape produced by ``node`` on an input of ``shape`` (batch-first)."""
    if isinstance(node, (BatchNormAffine, ActivationOp)):
        return shape
    if isinstance(node, (BinaryConvOp, ConvOp, FusedBinaryConvOp)):
        n, _, h, w = shape
        k, s, p = node.kernel_size, node.stride, node.padding
        return (n, node.out_channels,
                F.conv_output_size(h, k, s, p), F.conv_output_size(w, k, s, p))
    if isinstance(node, (BinaryDenseOp, DenseOp)):
        return (shape[0], node.out_features)
    if isinstance(node, PoolOp):
        if node.kind == "global_avg":
            return shape[:2]
        n, c, h, w = shape
        k, s = node.kernel_size, node.stride
        return (n, c, (h - k) // s + 1, (w - k) // s + 1)
    if isinstance(node, ReshapeOp):
        return (shape[0], int(np.prod(shape[1:])))
    if isinstance(node, ResidualOp):
        out = shape
        for sub in node.main:
            out = output_shape(sub, out)
        return out
    raise TypeError(f"unknown IR node type {type(node).__name__}")


def infer_shapes(
    program: Program, input_shape: tuple[int, ...]
) -> dict[str, tuple[tuple[int, ...], tuple[int, ...]]]:
    """Per-node ``name -> (input_shape, output_shape)`` for a program.

    Residual branches are resolved too (both branches see the residual
    node's input shape), so every node of :meth:`Program.walk` appears.
    """
    shapes: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}

    def visit(prog: Program, shape: tuple[int, ...]) -> tuple[int, ...]:
        for node in prog:
            out = output_shape(node, shape)
            shapes[node.name] = (shape, out)
            if isinstance(node, ResidualOp):
                visit(node.main, shape)
                if node.shortcut is not None:
                    visit(node.shortcut, shape)
            shape = out
        return shape

    visit(program, tuple(input_shape))
    return shapes


def _node_detail(node: OpNode) -> str:
    if isinstance(node, FusedBinaryConvOp):
        detail = (f"{node.in_channels}->{node.out_channels} "
                  f"k{node.kernel_size} s{node.stride} p{node.padding} "
                  f"{node.scaling}")
        if node.bn_scale is not None:
            detail += " +bn"
        if node.alpha_w is not None:
            detail += " hoisted"
        if node.inplace_input:
            detail += " inplace"
        return detail
    if isinstance(node, (BinaryConvOp, ConvOp)):
        return (f"{node.in_channels}->{node.out_channels} "
                f"k{node.kernel_size} s{node.stride} p{node.padding}"
                + (f" {node.scaling}" if isinstance(node, BinaryConvOp) else ""))
    if isinstance(node, (BinaryDenseOp, DenseOp)):
        return f"{node.in_features}->{node.out_features}"
    if isinstance(node, BatchNormAffine):
        return f"c={node.channels}"
    if isinstance(node, PoolOp):
        return node.kind
    if isinstance(node, (ActivationOp, ReshapeOp)):
        return node.kind
    if isinstance(node, ResidualOp):
        return (f"main[{len(node.main)}]"
                + ("" if node.shortcut is None
                   else f" shortcut[{len(node.shortcut)}]"))
    return ""


class VerifierError(ValueError):
    """A program violates the IR's structural invariants.

    Raised by :func:`verify_program` — the pass pipeline runs it after
    every rewrite, so a malformed fusion fails at compile time instead
    of producing silently wrong kernels.
    """


def _verify_fused(node: FusedBinaryConvOp) -> None:
    c_out, c_in, k = node.out_channels, node.in_channels, node.kernel_size
    expected = (c_out, c_in, k, k)
    if tuple(node.weight.shape) != expected:
        raise VerifierError(
            f"fused op {node.name!r}: weight shape {node.weight.shape} "
            f"does not match geometry {expected}"
        )
    if node.kernel_size < 1 or node.stride < 1 or node.padding < 0:
        raise VerifierError(
            f"fused op {node.name!r}: bad geometry k={node.kernel_size} "
            f"s={node.stride} p={node.padding}"
        )
    if node.scaling not in ("channelwise", "xnor", "none"):
        raise VerifierError(
            f"fused op {node.name!r}: unknown scaling {node.scaling!r}"
        )
    if not node.sources or node.name not in node.sources:
        raise VerifierError(
            f"fused op {node.name!r}: sources {node.sources!r} must "
            f"include the anchor convolution's name"
        )
    if (node.bn_scale is None) != (node.bn_shift is None):
        raise VerifierError(
            f"fused op {node.name!r}: bn_scale and bn_shift must both be "
            f"set or both be None"
        )
    if node.bn_scale is not None:
        if node.bn_scale.shape != (c_in,) or node.bn_shift.shape != (c_in,):
            raise VerifierError(
                f"fused op {node.name!r}: folded batch-norm arrays must "
                f"have shape ({c_in},), got {node.bn_scale.shape} and "
                f"{node.bn_shift.shape}"
            )
    if (node.w_binary is None) != (node.alpha_w is None):
        raise VerifierError(
            f"fused op {node.name!r}: w_binary and alpha_w must both be "
            f"hoisted or both be None"
        )
    if node.w_binary is not None:
        if node.w_binary.shape != node.weight.shape:
            raise VerifierError(
                f"fused op {node.name!r}: hoisted w_binary shape "
                f"{node.w_binary.shape} != weight shape {node.weight.shape}"
            )
        if node.alpha_w.shape != (c_out,):
            raise VerifierError(
                f"fused op {node.name!r}: hoisted alpha_w must have shape "
                f"({c_out},), got {node.alpha_w.shape}"
            )
        # the hoisted constants must be *the* Eq. 8 values for this
        # weight — a stale snapshot would silently change every logit
        if not np.array_equal(
            node.w_binary, np.where(node.weight >= 0, 1.0, -1.0)
        ):
            raise VerifierError(
                f"fused op {node.name!r}: hoisted w_binary does not equal "
                f"sign(weight)"
            )


def verify_program(
    program: Program, input_shape: tuple[int, ...] | None = None
) -> None:
    """Check a program's structural invariants; raise :class:`VerifierError`.

    Verified: node names are unique across the walk, batch-norm arrays
    match their channel counts, and fused nodes are internally
    consistent (weight geometry, folded batch-norm shapes, hoisted
    Eq. 8 constants matching the master weights, source attribution).
    With ``input_shape`` given, shapes are propagated and residual
    branch outputs must agree.
    """
    seen: set[str] = set()
    for node in program.walk():
        if node.name in seen:
            raise VerifierError(f"duplicate node name {node.name!r}")
        seen.add(node.name)
        if isinstance(node, FusedBinaryConvOp):
            _verify_fused(node)
        elif isinstance(node, BatchNormAffine):
            if (node.scale.shape != (node.channels,)
                    or node.shift.shape != (node.channels,)):
                raise VerifierError(
                    f"batch-norm {node.name!r}: affine arrays must have "
                    f"shape ({node.channels},), got {node.scale.shape} "
                    f"and {node.shift.shape}"
                )
        elif isinstance(node, ResidualOp):
            if len(node.main) == 0:
                raise VerifierError(
                    f"residual {node.name!r}: empty main branch"
                )
    if input_shape is None:
        return

    def visit(prog: Program, shape: tuple[int, ...]) -> tuple[int, ...]:
        for node in prog:
            if isinstance(node, (BinaryConvOp, FusedBinaryConvOp)):
                if shape[1] != node.in_channels:
                    raise VerifierError(
                        f"{node.name!r}: expects {node.in_channels} input "
                        f"channels, dataflow provides {shape[1]}"
                    )
            if isinstance(node, ResidualOp):
                main_out = visit(node.main, shape)
                if node.shortcut is not None:
                    short_out = visit(node.shortcut, shape)
                    if main_out != short_out:
                        raise VerifierError(
                            f"residual {node.name!r}: branch shapes differ "
                            f"(main {main_out} vs shortcut {short_out})"
                        )
                elif main_out != shape:
                    raise VerifierError(
                        f"residual {node.name!r}: identity shortcut needs "
                        f"main to preserve shape ({shape} -> {main_out})"
                    )
                shape = main_out
            else:
                shape = output_shape(node, shape)
        return shape

    visit(program, tuple(input_shape))


def fused_chains(program: Program) -> list[tuple[str, tuple[str, ...]]]:
    """``(anchor_name, source_names)`` for every fused node in the walk."""
    return [
        (node.name, node.sources)
        for node in program.walk()
        if isinstance(node, FusedBinaryConvOp)
    ]


def op_counts(program: Program) -> dict[str, int]:
    """Walked node counts by IR type name, insertion-ordered."""
    counts: dict[str, int] = {}
    for node in program.walk():
        key = type(node).__name__
        counts[key] = counts.get(key, 0) + 1
    return counts


def buffer_bytes(
    program: Program, input_shape: tuple[int, ...]
) -> dict[str, int]:
    """Per-node output-buffer bytes (float64) keyed by node name.

    The sum over a program is the activation traffic a verbatim
    execution writes; comparing it before/after the pass pipeline is
    how ``repro engine describe`` quantifies eliminated intermediates.
    """
    shapes = infer_shapes(program, input_shape)
    return {
        name: int(np.prod(out)) * 8 for name, (_, out) in shapes.items()
    }


def describe(program: Program, input_shape: tuple[int, ...] | None = None) -> str:
    """Human-readable program listing (one line per walked node)."""
    shapes = infer_shapes(program, input_shape) if input_shape else {}
    lines = []
    for node in program.walk():
        line = f"{node.name:<24} {type(node).__name__:<16} {_node_detail(node)}"
        if node.name in shapes:
            _, out = shapes[node.name]
            line += f" -> {tuple(out)}"
        lines.append(line.rstrip())
    return "\n".join(lines)
