"""Typed op-graph IR: the shared representation under every backend.

A trained :class:`~repro.nn.module.Module` tree is lowered (by
:mod:`repro.engine.lower`) into a :class:`Program` — a flat sequence of
typed op nodes carrying everything a backend needs to emit kernels:
frozen weights, channel counts, kernel/stride/padding geometry, and
activation-scaling modes.  Backends (:mod:`repro.engine.backends`)
compile nodes to kernels; the :class:`~repro.engine.executor.Executor`
runs them.

Design rules:

* **Nodes are frozen snapshots.**  Weight arrays are copied at lowering
  time, so a compiled program never changes under further training of
  the source model (the old ``PackedBNN`` snapshot guarantee, now shared
  by every backend).
* **Inference-only.**  Training-time concerns (dropout masks, batch-norm
  batch statistics, STE gradients) are resolved away during lowering:
  dropout lowers to an identity :class:`ActivationOp`, batch-norm to a
  frozen per-channel :class:`BatchNormAffine`.
* **Structure is explicit.**  The only nesting is
  :class:`ResidualOp`, which carries its branches as sub-``Program``\\ s;
  everything else is a flat pipeline, which is what lets the plane-scan
  engine find a network's stem by scanning the node list instead of
  pattern-matching layer classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..nn import functional as F

__all__ = [
    "OpNode",
    "BatchNormAffine",
    "BinaryConvOp",
    "BinaryDenseOp",
    "ConvOp",
    "DenseOp",
    "PoolOp",
    "ReshapeOp",
    "ActivationOp",
    "ResidualOp",
    "Program",
    "is_pointwise",
    "output_shape",
    "infer_shapes",
    "describe",
]


@dataclass(frozen=True, eq=False)
class OpNode:
    """Base class of every IR node.

    ``name`` is the dotted path of the source layer in the module tree
    (e.g. ``"1.main.0.conv"``) — unique within a program, stable across
    backends, and the key under which per-op timings are reported.
    """

    name: str


@dataclass(frozen=True, eq=False)
class BatchNormAffine(OpNode):
    """Frozen batch-norm: one per-channel affine ``x * scale + shift``.

    ``scale = gamma / sqrt(running_var + eps)`` and
    ``shift = beta - running_mean * scale`` are computed once at
    lowering time from the layer's running statistics.
    """

    channels: int
    scale: np.ndarray  #: per-channel multiplier, shape ``(channels,)``
    shift: np.ndarray  #: per-channel offset, shape ``(channels,)``


@dataclass(frozen=True, eq=False)
class BinaryConvOp(OpNode):
    """Binarized convolution (Eq. 8/14-15): the substrate-defining op.

    Carries the real-valued master filters; backends binarize them
    (Eq. 8) and pick their arithmetic — float MACs over sign values or
    packed XNOR/popcount words — under the contract that the
    channel-summed dot products are **exact integers**, which is what
    makes every backend bit-identical (see ``repro.engine.parity``).
    """

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    scaling: str  #: ``"channelwise"`` (Eq. 14), ``"xnor"``, or ``"none"``
    weight: np.ndarray  #: master filters ``(c_out, c_in, k, k)``


@dataclass(frozen=True, eq=False)
class BinaryDenseOp(OpNode):
    """Binarized fully connected layer (one popcount dot per unit)."""

    in_features: int
    out_features: int
    scaling: bool  #: apply the per-row ``mean|x|`` activation scale
    weight: np.ndarray  #: master weights ``(in_features, out_features)``


@dataclass(frozen=True, eq=False)
class ConvOp(OpNode):
    """Plain float convolution (kept for non-binarized stems/baselines)."""

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    weight: np.ndarray
    bias: np.ndarray | None


@dataclass(frozen=True, eq=False)
class DenseOp(OpNode):
    """Plain float fully connected layer (the network head)."""

    in_features: int
    out_features: int
    weight: np.ndarray
    bias: np.ndarray | None


@dataclass(frozen=True, eq=False)
class PoolOp(OpNode):
    """Spatial pooling: ``kind`` is ``"max"``, ``"avg"``, or
    ``"global_avg"`` (which collapses ``(n, c, h, w)`` to ``(n, c)``)."""

    kind: str
    kernel_size: int = 0  #: 0 for ``global_avg``
    stride: int = 0


@dataclass(frozen=True, eq=False)
class ReshapeOp(OpNode):
    """Pure layout change; ``"flatten"`` maps ``(n, ...)`` to ``(n, -1)``."""

    kind: str = "flatten"


@dataclass(frozen=True, eq=False)
class ActivationOp(OpNode):
    """Element-wise activation: ``"relu"``, ``"hardtanh"``, ``"sign"``,
    or ``"identity"`` (what inference-time dropout lowers to)."""

    kind: str


@dataclass(frozen=True, eq=False)
class ResidualOp(OpNode):
    """``out = main(x) + shortcut(x)`` (identity shortcut when None)."""

    main: "Program"
    shortcut: "Program | None"


#: Node types whose computation is element-wise per pixel and channel:
#: applying them to a full plane and slicing a window afterwards is
#: bit-identical to slicing first.  The plane-scan engine runs any such
#: program prefix directly on the plane.
_POINTWISE_TYPES = (BatchNormAffine, ActivationOp)


def is_pointwise(node: OpNode) -> bool:
    """Whether ``node`` acts element-wise (plane/window commuting)."""
    return isinstance(node, _POINTWISE_TYPES)


@dataclass(frozen=True, eq=False)
class Program:
    """An ordered pipeline of op nodes (the unit backends compile)."""

    nodes: tuple[OpNode, ...]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[OpNode]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> OpNode:
        return self.nodes[index]

    def walk(self) -> Iterator[OpNode]:
        """Pre-order traversal including residual branch sub-programs."""
        for node in self.nodes:
            yield node
            if isinstance(node, ResidualOp):
                yield from node.main.walk()
                if node.shortcut is not None:
                    yield from node.shortcut.walk()


def output_shape(node: OpNode, shape: tuple[int, ...]) -> tuple[int, ...]:
    """Shape produced by ``node`` on an input of ``shape`` (batch-first)."""
    if isinstance(node, (BatchNormAffine, ActivationOp)):
        return shape
    if isinstance(node, (BinaryConvOp, ConvOp)):
        n, _, h, w = shape
        k, s, p = node.kernel_size, node.stride, node.padding
        return (n, node.out_channels,
                F.conv_output_size(h, k, s, p), F.conv_output_size(w, k, s, p))
    if isinstance(node, (BinaryDenseOp, DenseOp)):
        return (shape[0], node.out_features)
    if isinstance(node, PoolOp):
        if node.kind == "global_avg":
            return shape[:2]
        n, c, h, w = shape
        k, s = node.kernel_size, node.stride
        return (n, c, (h - k) // s + 1, (w - k) // s + 1)
    if isinstance(node, ReshapeOp):
        return (shape[0], int(np.prod(shape[1:])))
    if isinstance(node, ResidualOp):
        out = shape
        for sub in node.main:
            out = output_shape(sub, out)
        return out
    raise TypeError(f"unknown IR node type {type(node).__name__}")


def infer_shapes(
    program: Program, input_shape: tuple[int, ...]
) -> dict[str, tuple[tuple[int, ...], tuple[int, ...]]]:
    """Per-node ``name -> (input_shape, output_shape)`` for a program.

    Residual branches are resolved too (both branches see the residual
    node's input shape), so every node of :meth:`Program.walk` appears.
    """
    shapes: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}

    def visit(prog: Program, shape: tuple[int, ...]) -> tuple[int, ...]:
        for node in prog:
            out = output_shape(node, shape)
            shapes[node.name] = (shape, out)
            if isinstance(node, ResidualOp):
                visit(node.main, shape)
                if node.shortcut is not None:
                    visit(node.shortcut, shape)
            shape = out
        return shape

    visit(program, tuple(input_shape))
    return shapes


def _node_detail(node: OpNode) -> str:
    if isinstance(node, (BinaryConvOp, ConvOp)):
        return (f"{node.in_channels}->{node.out_channels} "
                f"k{node.kernel_size} s{node.stride} p{node.padding}"
                + (f" {node.scaling}" if isinstance(node, BinaryConvOp) else ""))
    if isinstance(node, (BinaryDenseOp, DenseOp)):
        return f"{node.in_features}->{node.out_features}"
    if isinstance(node, BatchNormAffine):
        return f"c={node.channels}"
    if isinstance(node, PoolOp):
        return node.kind
    if isinstance(node, (ActivationOp, ReshapeOp)):
        return node.kind
    if isinstance(node, ResidualOp):
        return (f"main[{len(node.main)}]"
                + ("" if node.shortcut is None
                   else f" shortcut[{len(node.shortcut)}]"))
    return ""


def describe(program: Program, input_shape: tuple[int, ...] | None = None) -> str:
    """Human-readable program listing (one line per walked node)."""
    shapes = infer_shapes(program, input_shape) if input_shape else {}
    lines = []
    for node in program.walk():
        line = f"{node.name:<24} {type(node).__name__:<16} {_node_detail(node)}"
        if node.name in shapes:
            _, out = shapes[node.name]
            line += f" -> {tuple(out)}"
        lines.append(line.rstrip())
    return "\n".join(lines)
