"""Lowering: one walk of a trained ``Module`` tree emits the IR.

This pass replaces the per-engine ``isinstance`` ladders that used to
live in ``repro.binary.inference`` — every engine (packed, float,
plane-scan) now consumes the same :class:`~repro.engine.ir.Program`,
so structural knowledge about the model zoo lives in exactly one place.

``Sequential`` containers and :class:`~repro.binary.block.BNNConvBlock`
(batch-norm + binary conv) are flattened into the parent program, so a
program is a flat node pipeline except for explicit
:class:`~repro.engine.ir.ResidualOp` branches.  That flatness is what
makes stem detection (:func:`find_plane_stem`) a scan over the node
list instead of a pattern match over layer classes.

Weights and batch-norm statistics are **copied** into the IR: lowering
snapshots the model, exactly like the old ``PackedBNN`` compile step.
"""

from __future__ import annotations

import numpy as np

from ..binary.binary_conv import BinaryConv2D
from ..binary.binary_dense import BinaryDense
from ..binary.block import BNNConvBlock
from ..nn.layers.activations import HardTanh, ReLU, SignSTE
from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.layers.container import Sequential
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.dropout import Dropout
from ..nn.layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from ..nn.layers.residual import ResidualBlock
from ..nn.layers.shape import Flatten
from ..nn.module import Module
from .ir import (
    ActivationOp,
    BatchNormAffine,
    BinaryConvOp,
    BinaryDenseOp,
    ConvOp,
    DenseOp,
    FusedBinaryConvOp,
    OpNode,
    PoolOp,
    Program,
    ReshapeOp,
    ResidualOp,
    is_pointwise,
)

# Re-exported so callers can treat lowering + optimization as one
# module: ``lower()`` emits the verbatim program, ``run_pipeline()``
# rewrites it (see :mod:`repro.engine.passes` for the pass registry).
from .passes import (  # noqa: F401
    DEFAULT_PIPELINE,
    pipeline_signature,
    run_pipeline,
    run_pipeline_snapshots,
)

__all__ = [
    "LoweringError",
    "lower",
    "freeze_batchnorm",
    "find_plane_stem",
    "DEFAULT_PIPELINE",
    "pipeline_signature",
    "run_pipeline",
    "run_pipeline_snapshots",
]


class LoweringError(TypeError):
    """A module tree contains a layer the IR cannot represent.

    Subclasses :class:`TypeError` so callers of the historical compile
    APIs (which raised ``TypeError`` on unknown layers) keep working;
    ``layer_type`` carries the offending class name for fallback-reason
    reporting in the serving layer.
    """

    def __init__(self, message: str, layer_type: str):
        super().__init__(message)
        self.layer_type = layer_type


def freeze_batchnorm(layer: BatchNorm2D, name: str) -> BatchNormAffine:
    """Fold running statistics into one per-channel affine node."""
    scale = layer.gamma.data / np.sqrt(layer.running_var + layer.eps)
    shift = layer.beta.data - layer.running_mean * scale
    return BatchNormAffine(
        name=name, channels=int(scale.size),
        scale=scale.copy(), shift=shift.copy(),
    )


def _join(prefix: str, part: str) -> str:
    return part if not prefix else f"{prefix}.{part}"


_ACTIVATION_KINDS: list[tuple[type, str]] = [
    (ReLU, "relu"),
    (HardTanh, "hardtanh"),
    (SignSTE, "sign"),
    (Dropout, "identity"),  # inference-time dropout is the identity
]


def _lower_into(module: Module, name: str, out: list[OpNode]) -> None:
    """Append the IR node(s) for ``module`` to ``out`` (flattening)."""
    if isinstance(module, Sequential):
        for index, layer in enumerate(module.layers):
            _lower_into(layer, _join(name, str(index)), out)
        return
    if isinstance(module, ResidualBlock):
        main: list[OpNode] = []
        _lower_into(module.main, _join(name, "main"), main)
        shortcut: list[OpNode] | None = None
        if module.shortcut is not None:
            nodes: list[OpNode] = []
            _lower_into(module.shortcut, _join(name, "shortcut"), nodes)
            shortcut = nodes
        out.append(ResidualOp(
            name=name,
            main=Program(tuple(main)),
            shortcut=None if shortcut is None else Program(tuple(shortcut)),
        ))
        return
    if isinstance(module, BNNConvBlock):
        # batch-norm-then-conv, flattened so the stem finder sees the
        # batch-norm as part of the element-wise prefix
        out.append(freeze_batchnorm(module.bn, _join(name, "bn")))
        _lower_into(module.conv, _join(name, "conv"), out)
        return
    if isinstance(module, BinaryConv2D):
        out.append(BinaryConvOp(
            name=name,
            in_channels=module.in_channels,
            out_channels=module.out_channels,
            kernel_size=module.kernel_size,
            stride=module.stride,
            padding=module.padding,
            scaling=module.scaling,
            weight=module.weight.data.copy(),
        ))
        return
    if isinstance(module, BinaryDense):
        weight = module.weight.data
        out.append(BinaryDenseOp(
            name=name,
            in_features=int(weight.shape[0]),
            out_features=int(weight.shape[1]),
            scaling=bool(module.scaling),
            weight=weight.copy(),
        ))
        return
    if isinstance(module, BatchNorm2D):
        out.append(freeze_batchnorm(module, name))
        return
    if isinstance(module, Conv2D):
        weight = module.weight.data
        out.append(ConvOp(
            name=name,
            in_channels=int(weight.shape[1]),
            out_channels=int(weight.shape[0]),
            kernel_size=int(weight.shape[2]),
            stride=module.stride,
            padding=module.padding,
            weight=weight.copy(),
            bias=None if module.bias is None else module.bias.data.copy(),
        ))
        return
    if isinstance(module, Dense):
        weight = module.weight.data
        out.append(DenseOp(
            name=name,
            in_features=int(weight.shape[0]),
            out_features=int(weight.shape[1]),
            weight=weight.copy(),
            bias=None if module.bias is None else module.bias.data.copy(),
        ))
        return
    if isinstance(module, MaxPool2D):
        out.append(PoolOp(name=name, kind="max",
                          kernel_size=module.kernel_size, stride=module.stride))
        return
    if isinstance(module, AvgPool2D):
        out.append(PoolOp(name=name, kind="avg",
                          kernel_size=module.kernel_size, stride=module.stride))
        return
    if isinstance(module, GlobalAvgPool2D):
        out.append(PoolOp(name=name, kind="global_avg"))
        return
    if isinstance(module, Flatten):
        out.append(ReshapeOp(name=name, kind="flatten"))
        return
    for layer_type, kind in _ACTIVATION_KINDS:
        if isinstance(module, layer_type):
            out.append(ActivationOp(name=name, kind=kind))
            return
    raise LoweringError(
        f"cannot lower layer type {type(module).__name__} to the engine IR",
        layer_type=type(module).__name__,
    )


def lower(model: Module) -> Program:
    """Lower a trained module tree to a flat :class:`Program`.

    Raises :class:`LoweringError` (a :class:`TypeError`) when the tree
    contains a layer type the IR has no node for.
    """
    nodes: list[OpNode] = []
    _lower_into(model, "", nodes)
    return Program(tuple(nodes))


def find_plane_stem(program: Program) -> int | None:
    """Index of the stem convolution the plane-scan engine can amortize.

    The stem is the first non-pointwise node of the program; it
    qualifies when it is a single-input-channel :class:`BinaryConvOp`
    — or the :class:`~repro.engine.ir.FusedBinaryConvOp` the pass
    pipeline folds it into, whose absorbed batch-norm is pointwise and
    so still plane-commuting — with ordinary ``padding < kernel_size``
    geometry.  Returns ``None`` otherwise — the plane scan then falls
    back to whole-window slicing.
    """
    index = 0
    while index < len(program) and is_pointwise(program[index]):
        index += 1
    if index >= len(program):
        return None
    node = program[index]
    if not isinstance(node, (BinaryConvOp, FusedBinaryConvOp)):
        return None
    if node.in_channels != 1 or node.padding >= node.kernel_size:
        return None
    return index
