"""Cross-backend parity harness: the correctness gate for backends.

Every registered backend must produce **bit-identical** logits on the
same lowered program — not merely close.  This is achievable because
the binary ops' channel-summed dot products are exact integers on every
substrate (popcount identities and float sums of ±1 products both
round nothing), and the shared scaling/structural kernels apply float
operations in one fixed expression order.  A backend that is "almost
right" — wrong padding semantics, a reordered reduction, a dropped
scaling factor — therefore fails loudly here instead of shifting
accuracy numbers quietly.

Use :func:`compare_backends` programmatically, or run as a module for
the CI quick gate::

    PYTHONPATH=src python -m repro.engine.parity --image-size 16

which exercises every registered backend pair on seeded models across
all scaling modes (including a ``stem_stride=1`` single-channel 3x3
stem, the table16 fast-path shape) and exits non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from .backends import available_backends, get_backend
from .executor import Executor
from .lower import lower, pipeline_signature, run_pipeline

__all__ = [
    "PairResult",
    "ParityResult",
    "seeded_model",
    "compare_backends",
    "assert_backend_parity",
    "main",
]


@dataclass(frozen=True)
class PairResult:
    """Outcome of one backend-pair comparison."""

    left: str
    right: str
    identical: bool  #: byte-for-byte equal logits (shape, dtype, bits)
    max_abs_diff: float  #: 0.0 when identical; inf on shape/dtype mismatch


@dataclass
class ParityResult:
    """All pairwise comparisons for one model and input batch."""

    backends: tuple[str, ...]
    pairs: list[PairResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(pair.identical for pair in self.pairs)

    def failures(self) -> list[PairResult]:
        return [pair for pair in self.pairs if not pair.identical]


def seeded_model(
    image_size: int = 16,
    base_width: int = 4,
    scaling: str = "xnor",
    stem_stride: int = 1,
    seed: int = 0,
):
    """A small deterministic BNN-ResNet with non-trivial BN statistics.

    ``stem_stride=1`` keeps the 1-channel 3x3 stem (9 packed bits) so
    the packed backend's table16 fast path is on the comparison.
    """
    from ..detect.bnn_detector import stages_for_image_size
    from ..models.bnn_resnet import build_bnn_resnet

    stages = stages_for_image_size(image_size, stem_stride=stem_stride)
    channels = [base_width * (1 << index) for index in range(stages)]
    model = build_bnn_resnet(
        channels, scaling=scaling, stem_stride=stem_stride, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    # one training-mode pass accumulates batch-norm running statistics,
    # so the frozen affines the backends compile are non-trivial
    model.forward(
        rng.normal(size=(8, 1, image_size, image_size)), training=True
    )
    return model


def _bit_identical(a: np.ndarray, b: np.ndarray) -> tuple[bool, float]:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False, float("inf")
    if a.tobytes() == b.tobytes():
        return True, 0.0
    return False, float(np.max(np.abs(a - b)))


def compare_backends(
    model,
    images: np.ndarray | None = None,
    backends: list[str] | None = None,
    image_size: int = 16,
    batch: int = 8,
    seed: int = 0,
    pipelines: list | None = None,
) -> ParityResult:
    """Lower ``model`` once, run every backend × pipeline, compare pairs.

    Each backend executes its compiled kernels over the program as
    rewritten by each pass pipeline in ``pipelines`` (default: the raw
    lowered program ``"none"`` and the full ``"default"`` pipeline), so
    the optimization passes themselves are under the bit-identity gate,
    not just the backends.  Variants are labelled
    ``backend[pipeline-signature]``.  Inputs default to a seeded ±1
    batch (the layout-clip domain); pass ``images`` to use real clips.
    """
    names = tuple(backends if backends is not None else available_backends())
    specs = tuple(pipelines if pipelines is not None else ("none", "default"))
    lowered = lower(model)
    if images is None:
        rng = np.random.default_rng(seed)
        images = np.where(
            rng.random((batch, 1, image_size, image_size)) < 0.5, 1.0, -1.0
        )
    variants: list[str] = []
    logits: dict[str, np.ndarray] = {}
    for spec in specs:
        program = run_pipeline(lowered, spec)
        tag = pipeline_signature(spec)
        for name in names:
            executor: Executor = get_backend(name).compile(program)
            variant = f"{name}[{tag}]"
            variants.append(variant)
            # fresh copy per variant: a kernel mutating its input would
            # otherwise corrupt the comparison instead of failing it
            logits[variant] = executor.run(images.copy())
    result = ParityResult(backends=tuple(variants))
    for i, left in enumerate(variants):
        for right in variants[i + 1:]:
            identical, diff = _bit_identical(logits[left], logits[right])
            result.pairs.append(PairResult(left, right, identical, diff))
    return result


def assert_backend_parity(
    model=None,
    backends: list[str] | None = None,
    image_size: int = 16,
    batch: int = 8,
    seed: int = 0,
) -> ParityResult:
    """Raise ``AssertionError`` naming every backend pair that diverges."""
    if model is None:
        model = seeded_model(image_size=image_size, seed=seed)
    result = compare_backends(
        model, backends=backends, image_size=image_size, batch=batch, seed=seed
    )
    if not result.ok:
        lines = [
            f"  {pair.left} vs {pair.right}: max |diff| = {pair.max_abs_diff:g}"
            for pair in result.failures()
        ]
        raise AssertionError(
            "backend parity violated (logits must be bit-identical):\n"
            + "\n".join(lines)
        )
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI gate: parity across all backends, every scaling mode."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.parity",
        description="Assert bit-identical logits across inference backends.",
    )
    parser.add_argument("--image-size", type=int, default=16)
    parser.add_argument("--base-width", type=int, default=4)
    parser.add_argument("--batch", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scaling", action="append", default=None,
        choices=["channelwise", "xnor", "none"],
        help="scaling mode(s) to test (default: all)",
    )
    parser.add_argument(
        "--stem-stride", type=int, action="append", default=None,
        help="stem stride(s) to test (default: 1 and 2)",
    )
    parser.add_argument(
        "--passes", action="append", default=None,
        help="pass pipeline(s) to test (default: 'none' and 'default')",
    )
    args = parser.parse_args(argv)

    scalings = args.scaling or ["channelwise", "xnor", "none"]
    strides = args.stem_stride or [1, 2]
    pipelines = args.passes or ["none", "default"]
    names = available_backends()
    print(f"backends:  {', '.join(names)}")
    print(f"pipelines: {', '.join(pipeline_signature(p) for p in pipelines)}")
    failed = False
    for scaling in scalings:
        for stem_stride in strides:
            model = seeded_model(
                image_size=args.image_size, base_width=args.base_width,
                scaling=scaling, stem_stride=stem_stride, seed=args.seed,
            )
            result = compare_backends(
                model, image_size=args.image_size,
                batch=args.batch, seed=args.seed, pipelines=pipelines,
            )
            status = "OK (bit-identical)" if result.ok else "MISMATCH"
            print(f"scaling={scaling:<12} stem_stride={stem_stride}  {status}")
            for pair in result.failures():
                failed = True
                print(f"    {pair.left} vs {pair.right}: "
                      f"max |diff| = {pair.max_abs_diff:g}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
