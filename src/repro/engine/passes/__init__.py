"""Graph-rewrite passes over the engine IR: the optimizing middle end.

Lowering (:mod:`repro.engine.lower`) emits a *verbatim* program — one
node per source layer, executed as written.  The passes here rewrite
that program into the fused form the ``compiled`` backend exploits,
under one inviolable contract: **a pass never changes an output bit**.
Every rewrite is value-preserving (the batch-norm→binarize fold relies
on float addition near zero being exact and rounding being monotone;
scale hoisting only moves compile-time-constant computation), and the
parity harness (:mod:`repro.engine.parity`) gates every backend across
{passes on, passes off}.

The default pipeline, in order:

1. ``fold-bn`` — fold ``BatchNormAffine -> BinaryConvOp`` pairs (and
   lone binary convolutions) into :class:`~repro.engine.ir.\
FusedBinaryConvOp` nodes whose binarization is a threshold compare.
2. ``hoist-scales`` — compute the Eq. 8 weight-side constants
   (``sign(W)``, per-filter ``mean|W|``) once at compile time and store
   them on the fused nodes.
3. ``liveness`` — drop identity ops and mark fused nodes whose input
   buffer dies at the node (never the head of a residual branch, whose
   input is shared with a sibling), licensing in-place kernel variants
   and per-node workspace reuse in the compiled backend.

``hoist-scales`` and ``liveness`` touch disjoint fields and commute;
``fold-bn`` must run before both (they only act on fused nodes) — the
claimed order properties are pinned by ``tests/engine/test_passes.py``.
Running the pipeline twice is a no-op (idempotence, also pinned).

Every pass runs :func:`~repro.engine.ir.verify_program` on its output,
so a malformed rewrite fails at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Program, verify_program

__all__ = [
    "Pass",
    "PassSnapshot",
    "register_pass",
    "available_passes",
    "get_pass",
    "DEFAULT_PIPELINE",
    "resolve_pipeline",
    "pipeline_signature",
    "run_pipeline",
    "run_pipeline_snapshots",
]

_REGISTRY: dict[str, type["Pass"]] = {}


class Pass:
    """One value-preserving program rewrite."""

    name = "base"

    def run(self, program: Program) -> Program:
        raise NotImplementedError

    def notes(self, before: Program, after: Program) -> dict[str, object]:
        """Pass-specific facts for ``repro engine describe`` snapshots."""
        return {}


def register_pass(name: str):
    """Class decorator adding a :class:`Pass` to the registry."""

    def decorate(cls: type[Pass]) -> type[Pass]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_passes() -> list[str]:
    """Registered pass names, sorted."""
    return sorted(_REGISTRY)


def get_pass(name: str) -> Pass:
    """Instantiate a pass by name; unknown names list what exists."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown pass {name!r} "
            f"(available: {', '.join(available_passes())})"
        ) from None
    return cls()


#: The default pipeline, in execution order.
DEFAULT_PIPELINE = ("fold-bn", "hoist-scales", "liveness")


def resolve_pipeline(
    spec: str | list[str] | tuple[str, ...] | None,
) -> tuple[Pass, ...]:
    """Resolve a pipeline spec to pass instances.

    ``"default"`` (or ``None``) is :data:`DEFAULT_PIPELINE`; ``"none"``
    is the empty pipeline (execute the lowered program verbatim); a
    list/tuple names passes explicitly, run in the given order.
    """
    if spec is None or spec == "default":
        names: tuple[str, ...] = DEFAULT_PIPELINE
    elif spec == "none":
        names = ()
    elif isinstance(spec, str):
        raise ValueError(
            f"unknown pipeline spec {spec!r} (use 'default', 'none', or "
            f"a list of pass names)"
        )
    else:
        names = tuple(spec)
    return tuple(get_pass(name) for name in names)


def pipeline_signature(
    spec: str | list[str] | tuple[str, ...] | None,
) -> str:
    """Canonical provenance string for a pipeline spec.

    ``"none"`` for the empty pipeline, else the ordered pass names
    joined with ``>``.  This is the token recorded by plane-scan plans,
    chip-scan journals, and serving checkpoints so artifacts compiled
    under different pipelines are never silently mixed.
    """
    passes = resolve_pipeline(spec)
    if not passes:
        return "none"
    return ">".join(p.name for p in passes)


@dataclass(frozen=True)
class PassSnapshot:
    """One pipeline stage for ``repro engine describe``.

    ``name`` is ``"lowered"`` for the stage-0 snapshot (the verbatim
    program), else the pass that produced ``program``.
    """

    name: str
    program: Program
    notes: dict[str, object]


def run_pipeline(
    program: Program,
    spec: str | list[str] | tuple[str, ...] | None = "default",
    input_shape: tuple[int, ...] | None = None,
) -> Program:
    """Run a pass pipeline, verifying the program after every pass."""
    for p in resolve_pipeline(spec):
        program = p.run(program)
        verify_program(program, input_shape)
    return program


def run_pipeline_snapshots(
    program: Program,
    spec: str | list[str] | tuple[str, ...] | None = "default",
    input_shape: tuple[int, ...] | None = None,
) -> list[PassSnapshot]:
    """Run a pipeline keeping the program after every stage.

    The first snapshot is the input program (``"lowered"``); each
    following snapshot is one pass's output plus its notes — what the
    ``repro engine describe`` CLI renders.
    """
    snapshots = [PassSnapshot("lowered", program, {})]
    for p in resolve_pipeline(spec):
        before = program
        program = p.run(program)
        verify_program(program, input_shape)
        snapshots.append(PassSnapshot(p.name, program, p.notes(before, program)))
    return snapshots


# Import concrete passes last so their @register_pass decorators run on
# package import (mirrors the backend registry).
from . import fold_bn  # noqa: E402,F401
from . import hoist_scales  # noqa: E402,F401
from . import liveness  # noqa: E402,F401
