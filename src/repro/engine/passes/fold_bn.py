"""Fold batch-norm into binarization: BN→BinaryConv pairs become fused ops.

The lowered graph runs ``y = x*scale + shift`` (frozen batch-norm), then
the convolution's backend binarizes ``y`` with ``y >= 0``.  Because
float addition of values that straddle zero is exact (Hauser's lemma:
when ``a + b`` is near zero the sum is representable, so no rounding
occurs) and rounding elsewhere is monotone and sign-preserving,

    fl(fl(x*scale) + shift) >= 0   ⟺   fl(x*scale) >= -shift

so a backend may binarize with a *threshold compare* against
``-shift`` without materializing the batch-norm output — and when it
does need the BN values (the ``|x|`` activation scale of Eq. 15), it
can still produce them exactly from the same ``t = x*scale`` product.
This pass only restructures the graph to license that: it moves the
affine's constants onto a :class:`~repro.engine.ir.FusedBinaryConvOp`
verbatim, with no arithmetic of its own.

Lone binary convolutions (no preceding batch-norm) are wrapped into
fused nodes too, so downstream passes and the compiled backend see one
node type for the whole Eq. 8 family.
"""

from __future__ import annotations

from ..ir import (
    BatchNormAffine,
    BinaryConvOp,
    FusedBinaryConvOp,
    OpNode,
    Program,
    ResidualOp,
    op_counts,
)
from . import Pass, register_pass


def _fuse(conv: BinaryConvOp, bn: BatchNormAffine | None) -> FusedBinaryConvOp:
    sources = (conv.name,) if bn is None else (bn.name, conv.name)
    return FusedBinaryConvOp(
        name=conv.name,
        in_channels=conv.in_channels,
        out_channels=conv.out_channels,
        kernel_size=conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        scaling=conv.scaling,
        weight=conv.weight,
        sources=sources,
        bn_scale=None if bn is None else bn.scale,
        bn_shift=None if bn is None else bn.shift,
    )


def _fold(program: Program) -> Program:
    nodes: list[OpNode] = []
    src = program.nodes
    i = 0
    while i < len(src):
        node = src[i]
        nxt = src[i + 1] if i + 1 < len(src) else None
        if (
            isinstance(node, BatchNormAffine)
            and isinstance(nxt, BinaryConvOp)
            and node.channels == nxt.in_channels
        ):
            nodes.append(_fuse(nxt, node))
            i += 2
        elif isinstance(node, BinaryConvOp):
            nodes.append(_fuse(node, None))
            i += 1
        elif isinstance(node, ResidualOp):
            nodes.append(
                ResidualOp(
                    name=node.name,
                    main=_fold(node.main),
                    shortcut=(
                        None if node.shortcut is None else _fold(node.shortcut)
                    ),
                )
            )
            i += 1
        else:
            nodes.append(node)
            i += 1
    return Program(tuple(nodes))


@register_pass("fold-bn")
class FoldBatchNorm(Pass):
    """Fold ``BatchNormAffine -> BinaryConvOp`` chains into fused nodes."""

    def run(self, program: Program) -> Program:
        return _fold(program)

    def notes(self, before: Program, after: Program) -> dict[str, object]:
        n_before = op_counts(before)
        n_after = op_counts(after)
        return {
            "bn_folded": (
                n_before.get("BatchNormAffine", 0)
                - n_after.get("BatchNormAffine", 0)
            ),
            "convs_fused": n_after.get("FusedBinaryConvOp", 0)
            - n_before.get("FusedBinaryConvOp", 0),
        }
