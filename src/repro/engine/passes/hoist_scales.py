"""Hoist the Eq. 8 weight-side constants to compile time.

Every backend binarizes the master filters the same way —
``B = sign(W)``, ``alpha = mean|W|`` per filter (Eq. 8) — and the
filters are frozen at lowering time, so recomputing these per forward
is pure waste.  This pass evaluates them once, with the *same* routine
backends use (:func:`repro.binary.quantize.binarize_weights`, so not a
reimplementation that could drift), and stores the results on the
fused nodes.  The verifier re-checks ``w_binary == sign(weight)`` on
every subsequent pass, so a stale hoist cannot survive a later rewrite
of the weights.

Activation-side scales (the ``|x|`` maps of Eq. 14-15) depend on the
input and stay runtime work; only weight-side constants move.
"""

from __future__ import annotations

from dataclasses import replace

from ...binary.quantize import binarize_weights
from ..ir import FusedBinaryConvOp, OpNode, Program, ResidualOp
from . import Pass, register_pass


def _hoist(program: Program) -> Program:
    nodes: list[OpNode] = []
    for node in program:
        if isinstance(node, FusedBinaryConvOp) and node.w_binary is None:
            w_binary, alpha_w = binarize_weights(node.weight)
            nodes.append(replace(node, w_binary=w_binary, alpha_w=alpha_w))
        elif isinstance(node, ResidualOp):
            nodes.append(
                ResidualOp(
                    name=node.name,
                    main=_hoist(node.main),
                    shortcut=(
                        None if node.shortcut is None else _hoist(node.shortcut)
                    ),
                )
            )
        else:
            nodes.append(node)
    return Program(tuple(nodes))


@register_pass("hoist-scales")
class HoistScales(Pass):
    """Precompute ``sign(W)`` and per-filter ``mean|W|`` (Eq. 8)."""

    def run(self, program: Program) -> Program:
        return _hoist(program)

    def notes(self, before: Program, after: Program) -> dict[str, object]:
        hoisted = sum(
            1
            for node in after.walk()
            if isinstance(node, FusedBinaryConvOp) and node.alpha_w is not None
        )
        already = sum(
            1
            for node in before.walk()
            if isinstance(node, FusedBinaryConvOp) and node.alpha_w is not None
        )
        return {"scales_hoisted": hoisted - already}
