"""Buffer-liveness pass: drop dead ops, mark inputs that die in place.

Two rewrites, both driven by the same question — *who else reads this
buffer?*:

* ``identity`` :class:`~repro.engine.ir.ActivationOp` nodes (what
  inference-time dropout lowers to) copy their input to their output;
  nobody observes the copy, so the node is removed outright.
* A fused convolution reads its input once (the threshold compare and
  the Eq. 15 ``|x|`` accumulation are single passes), so when no other
  node will read that buffer again the backend may treat it as scratch.
  The pass marks such nodes ``inplace_input=True``.  Exceptions, kept
  conservative: the first node of either residual branch (the branch
  input is shared with the sibling branch — and with the post-branch
  add when the shortcut is the identity) and the first node of the
  top-level program (the caller's array).

The executor's ownership tracking is the second line of defense — it
only offers a kernel's in-place variant a buffer the pipeline owns —
so this annotation is a license, never an obligation.
"""

from __future__ import annotations

from dataclasses import replace

from ..ir import (
    ActivationOp,
    FusedBinaryConvOp,
    OpNode,
    Program,
    ResidualOp,
)
from . import Pass, register_pass


def _sweep(program: Program, branch_head_shared: bool) -> Program:
    nodes: list[OpNode] = []
    first_kept = True
    for node in program:
        if isinstance(node, ActivationOp) and node.kind == "identity":
            continue
        protect = first_kept and branch_head_shared
        if isinstance(node, FusedBinaryConvOp):
            want = not protect
            if node.inplace_input != want:
                node = replace(node, inplace_input=want)
        elif isinstance(node, ResidualOp):
            node = ResidualOp(
                name=node.name,
                main=_sweep(node.main, branch_head_shared=True),
                shortcut=(
                    None
                    if node.shortcut is None
                    else _sweep(node.shortcut, branch_head_shared=True)
                ),
            )
        nodes.append(node)
        first_kept = False
    return Program(tuple(nodes))


@register_pass("liveness")
class Liveness(Pass):
    """Remove identity ops; annotate fused inputs that die in place."""

    def run(self, program: Program) -> Program:
        return _sweep(program, branch_head_shared=True)

    def notes(self, before: Program, after: Program) -> dict[str, object]:
        dropped = sum(
            1
            for node in before.walk()
            if isinstance(node, ActivationOp) and node.kind == "identity"
        )
        inplace = sum(
            1
            for node in after.walk()
            if isinstance(node, FusedBinaryConvOp) and node.inplace_input
        )
        return {"identity_dropped": dropped, "inplace_marked": inplace}
