"""Feature extraction: the paper's down-sampled-image preprocessing and
the hand-crafted encodings used by the baseline detectors."""

from .ccs import ccs_features, circle_samples, default_radii
from .dct import dct_feature_tensor, zigzag_indices
from .density import density_features, density_grid
from .downsample import (
    block_reduce_mean,
    downsample_area,
    downsample_binary,
    to_network_input,
)
from .selection import FeatureSelector, mutual_information, select_features

__all__ = [
    "ccs_features",
    "circle_samples",
    "default_radii",
    "dct_feature_tensor",
    "zigzag_indices",
    "density_features",
    "density_grid",
    "block_reduce_mean",
    "downsample_area",
    "downsample_binary",
    "to_network_input",
    "FeatureSelector",
    "mutual_information",
    "select_features",
]
