"""Concentric-circle-sampling (CCS) features — the ICCAD'16 baseline's
encoding (Matsunawa et al., optimised by Zhang et al.).

The clip is probed along concentric circles around its centre: each
circle contributes equally spaced samples of the (bilinearly
interpolated) layout image.  Rotation-robust and compact, CCS was the
state-of-the-art hand-crafted feature before feature tensors; the
information-theoretic optimisation of ICCAD'16 then selects the most
informative samples (see :mod:`repro.features.selection`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_radii", "circle_samples", "ccs_features"]


def default_radii(image_size: int, n_circles: int = 12) -> np.ndarray:
    """Evenly spaced circle radii covering the clip from centre to corner
    region (outermost radius 0.95 * half-side)."""
    if n_circles <= 0:
        raise ValueError(f"n_circles must be positive, got {n_circles}")
    half = image_size / 2.0
    return np.linspace(half / n_circles, 0.95 * half, n_circles)


def circle_samples(radius: float, min_samples: int = 8) -> int:
    """Sample count for one circle: proportional to circumference so the
    sampling density is roughly uniform in arc length."""
    return max(min_samples, int(np.ceil(2.0 * np.pi * radius / 2.0)))


def _bilinear(images: np.ndarray, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Bilinear interpolation of an image batch at float coordinates.

    ``images``: ``(n, h, w)``; ``ys``/``xs``: flat coordinate arrays.
    Returns ``(n, len(ys))``.
    """
    n, h, w = images.shape
    y0 = np.clip(np.floor(ys).astype(int), 0, h - 2)
    x0 = np.clip(np.floor(xs).astype(int), 0, w - 2)
    dy = np.clip(ys - y0, 0.0, 1.0)
    dx = np.clip(xs - x0, 0.0, 1.0)
    top = images[:, y0, x0] * (1 - dx) + images[:, y0, x0 + 1] * dx
    bottom = images[:, y0 + 1, x0] * (1 - dx) + images[:, y0 + 1, x0 + 1] * dx
    return top * (1 - dy) + bottom * dy


def ccs_features(
    images: np.ndarray,
    radii: np.ndarray | None = None,
    min_samples: int = 8,
) -> np.ndarray:
    """Concentric-circle-sampling feature vectors.

    Parameters
    ----------
    images:
        ``(n, h, w)`` or ``(n, 1, h, w)`` square image batch.
    radii:
        Circle radii in pixels (default :func:`default_radii`).
    min_samples:
        Minimum samples on the innermost circles.

    Returns
    -------
    np.ndarray
        ``(n, total_samples)`` feature matrix; samples are ordered
        inner circle outward, each circle counter-clockwise from the
        positive x-axis.
    """
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim == 4:
        if arr.shape[1] != 1:
            raise ValueError(f"expected single-channel images, got {arr.shape}")
        arr = arr[:, 0]
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError(f"expected square image batch, got {arr.shape}")
    size = arr.shape[1]
    if radii is None:
        radii = default_radii(size)
    center = (size - 1) / 2.0
    ys, xs = [], []
    for radius in radii:
        count = circle_samples(radius, min_samples)
        theta = np.linspace(0.0, 2.0 * np.pi, count, endpoint=False)
        ys.append(center + radius * np.sin(theta))
        xs.append(center + radius * np.cos(theta))
    return _bilinear(arr, np.concatenate(ys), np.concatenate(xs))
