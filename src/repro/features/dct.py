"""DCT feature-tensor extraction (the DAC'17 baseline's encoding).

Yang et al. split each layout clip into a grid of blocks, apply a 2-D
discrete cosine transform per block and keep the lowest-frequency
coefficients in zig-zag order.  The clip becomes a
``(coefficients, blocks, blocks)`` tensor: spectrally compressed, but —
as the paper under reproduction argues — discarding fine spatial
information, which motivates its direct down-sampled-image input.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn

__all__ = ["zigzag_indices", "dct_feature_tensor"]


def zigzag_indices(size: int) -> list[tuple[int, int]]:
    """Zig-zag scan order of a ``size x size`` block (JPEG convention).

    Lowest spatial frequencies come first, so truncating the scan keeps
    the most energetic coefficients of typical layout blocks.
    """
    order = []
    for s in range(2 * size - 1):
        rng = range(min(s, size - 1), max(0, s - size + 1) - 1, -1)
        diagonal = [(i, s - i) for i in rng]  # i decreasing along the diagonal
        if s % 2 == 1:
            diagonal.reverse()  # odd diagonals run top-right to bottom-left
        order.extend(diagonal)
    return order


def dct_feature_tensor(
    images: np.ndarray, block: int = 8, coefficients: int = 8
) -> np.ndarray:
    """Encode image batches as truncated block-DCT feature tensors.

    Parameters
    ----------
    images:
        ``(n, h, w)`` or ``(n, 1, h, w)`` batch; ``h == w`` and
        divisible by ``block``.
    block:
        Block side in pixels.
    coefficients:
        Number of zig-zag-ordered DCT coefficients kept per block
        (at most ``block * block``).

    Returns
    -------
    np.ndarray
        Feature tensor of shape ``(n, coefficients, h/block, w/block)``
        — coefficients become channels, blocks keep their grid
        positions, matching the DAC'17 network input.
    """
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim == 4:
        if arr.shape[1] != 1:
            raise ValueError(f"expected single-channel images, got {arr.shape}")
        arr = arr[:, 0]
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError(f"expected square image batch, got {arr.shape}")
    if coefficients > block * block:
        raise ValueError(
            f"cannot keep {coefficients} coefficients from a {block}x{block} block"
        )
    n, side, _ = arr.shape
    if side % block != 0:
        raise ValueError(f"image side {side} not divisible by block {block}")
    grid = side // block
    blocks = arr.reshape(n, grid, block, grid, block).transpose(0, 1, 3, 2, 4)
    spectra = dctn(blocks, axes=(-2, -1), norm="ortho")
    scan = zigzag_indices(block)[:coefficients]
    rows = np.array([i for i, _ in scan])
    cols = np.array([j for _, j in scan])
    # (n, grid, grid, coefficients) -> (n, coefficients, grid, grid)
    selected = spectra[..., rows, cols]
    return selected.transpose(0, 3, 1, 2)
