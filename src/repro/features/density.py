"""Density-grid features — the simplified encoding of the SPIE'15
AdaBoost baseline (Matsunawa et al.).

The clip is divided into a coarse grid; each cell's covered-area
fraction is one feature.  Cheap, robust, and the standard input to
boosted-tree hotspot detectors.
"""

from __future__ import annotations

import numpy as np

from .downsample import block_reduce_mean

__all__ = ["density_grid", "density_features"]


def density_grid(images: np.ndarray, grid: int = 8) -> np.ndarray:
    """Per-cell pattern density: ``(n, grid, grid)`` in [0, 1]."""
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim == 4:
        if arr.shape[1] != 1:
            raise ValueError(f"expected single-channel images, got {arr.shape}")
        arr = arr[:, 0]
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError(f"expected square image batch, got {arr.shape}")
    return block_reduce_mean(arr, grid)


def density_features(images: np.ndarray, grid: int = 8) -> np.ndarray:
    """Flattened density grid, ``(n, grid*grid)`` — the classifier input."""
    cells = density_grid(images, grid)
    return cells.reshape(cells.shape[0], -1)
