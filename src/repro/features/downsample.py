"""Image down-sampling — the paper's preprocessing (Section 3.4.1).

The paper feeds the network the layout clip images "simply
down-sampled" to ``l_s x l_s`` (``l_s = 128``), keeping the full spatial
information rather than a transform-domain encoding.  Two variants:

* :func:`downsample_area` — block-mean pooling; each output pixel is
  the covered-area fraction of its block (values in [0, 1]);
* :func:`downsample_binary` — block-mean then threshold at 0.5,
  preserving the binary character of the layout image.
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_reduce_mean", "downsample_area", "downsample_binary",
           "to_network_input"]


def block_reduce_mean(image: np.ndarray, target: int) -> np.ndarray:
    """Mean-pool a square image down to ``target x target``.

    The input side must be a multiple of ``target``.
    """
    side = image.shape[-1]
    if image.shape[-2] != side:
        raise ValueError(f"expected square image, got {image.shape}")
    if side % target != 0:
        raise ValueError(f"image side {side} not divisible by target {target}")
    factor = side // target
    new_shape = image.shape[:-2] + (target, factor, target, factor)
    return image.reshape(new_shape).mean(axis=(-3, -1))


def downsample_area(image: np.ndarray, target: int) -> np.ndarray:
    """Down-sample keeping fractional pixel coverage in [0, 1]."""
    if image.shape[-1] == target and image.shape[-2] == target:
        return image.astype(np.float64)
    return block_reduce_mean(image, target)


def downsample_binary(image: np.ndarray, target: int) -> np.ndarray:
    """Down-sample and re-threshold to a 0/1 image (majority vote)."""
    return (downsample_area(image, target) > 0.5).astype(np.float64)


def to_network_input(images: np.ndarray) -> np.ndarray:
    """Map 0/1 layout images to the {-1, +1} domain of the BNN.

    Empty layout becomes -1 and drawn geometry +1, matching the -1
    padding convention of the binary convolutions.  Accepts ``(n, h,
    w)`` or ``(n, c, h, w)``; returns ``(n, 1, h, w)`` float64.
    """
    arr = np.asarray(images, dtype=np.float64)
    if arr.ndim == 3:
        arr = arr[:, None, :, :]
    if arr.ndim != 4:
        raise ValueError(f"expected 3-D or 4-D image batch, got {arr.shape}")
    return 2.0 * arr - 1.0
