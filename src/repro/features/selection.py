"""Information-theoretic feature optimisation (ICCAD'16).

Zhang et al. rank candidate feature dimensions by their mutual
information with the hotspot label and keep the most informative
subset, shrinking the online learner's input.  Mutual information is
estimated from histogram counts with equal-width bins.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mutual_information", "select_features", "FeatureSelector"]


def mutual_information(
    feature: np.ndarray, labels: np.ndarray, bins: int = 8
) -> float:
    """MI (nats) between one continuous feature and binary labels.

    The feature is discretised into ``bins`` equal-width bins over its
    observed range; degenerate (constant) features have zero MI.
    """
    feature = np.asarray(feature, dtype=np.float64)
    labels = np.asarray(labels).astype(int)
    lo, hi = feature.min(), feature.max()
    if hi <= lo:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    digitized = np.clip(np.digitize(feature, edges[1:-1]), 0, bins - 1)
    joint = np.zeros((bins, 2))
    np.add.at(joint, (digitized, labels), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * np.log(joint / (px * py))
    return float(np.nansum(terms))


def select_features(
    features: np.ndarray, labels: np.ndarray, k: int, bins: int = 8
) -> np.ndarray:
    """Indices of the ``k`` features with highest label MI (descending)."""
    n_features = features.shape[1]
    if k <= 0 or k > n_features:
        raise ValueError(f"k must be in [1, {n_features}], got {k}")
    scores = np.array(
        [mutual_information(features[:, j], labels, bins) for j in range(n_features)]
    )
    return np.argsort(-scores)[:k]


class FeatureSelector:
    """Fit-once/apply-many wrapper around :func:`select_features`."""

    def __init__(self, k: int, bins: int = 8):
        self.k = k
        self.bins = bins
        self.indices_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "FeatureSelector":
        """Rank features on training data and remember the top-k set."""
        self.indices_ = select_features(features, labels, self.k, self.bins)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Project a feature matrix onto the selected dimensions."""
        if self.indices_ is None:
            raise RuntimeError("transform() called before fit()")
        return features[:, self.indices_]

    def fit_transform(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit the selector, then project the same features."""
        return self.fit(features, labels).transform(features)
