"""Lithography substrate: geometry, rasterisation, aerial-image
simulation, printability analysis and ICCAD-2012-shaped benchmark
synthesis (the stand-in for the contest GDS data)."""

from .benchmark import (
    PAPER_TABLE2,
    BenchmarkStats,
    HotspotBenchmark,
    generate_hotspot_dataset,
    generate_iccad2012_like,
)
from .epe import LithographySimulator, PrintabilityReport, analyze_contours
from .fullchip import (
    LayoutEdit,
    apply_edits,
    synthesize_chip,
    synthesize_edit_trace,
)
from .geometry import Clip, Rect
from .opc import IterativeOPC, rule_based_opc
from .optics import OpticalModel, gaussian_kernel
from .patterns import EXTENDED_FAMILIES, PATTERN_FAMILIES, Technology, sample_clip
from .process_window import dose_latitude, passes_at, process_window_area
from .raster import rasterize, rasterize_plane, rasterize_region
from .resist import (
    ProcessCorner,
    default_process_window,
    nominal_corner,
    print_contour,
)

__all__ = [
    "PAPER_TABLE2",
    "BenchmarkStats",
    "HotspotBenchmark",
    "generate_hotspot_dataset",
    "generate_iccad2012_like",
    "LithographySimulator",
    "PrintabilityReport",
    "analyze_contours",
    "Clip",
    "Rect",
    "LayoutEdit",
    "apply_edits",
    "synthesize_chip",
    "synthesize_edit_trace",
    "IterativeOPC",
    "rule_based_opc",
    "OpticalModel",
    "gaussian_kernel",
    "PATTERN_FAMILIES",
    "EXTENDED_FAMILIES",
    "Technology",
    "sample_clip",
    "dose_latitude",
    "passes_at",
    "process_window_area",
    "rasterize",
    "rasterize_plane",
    "rasterize_region",
    "ProcessCorner",
    "default_process_window",
    "nominal_corner",
    "print_contour",
]
