"""ICCAD-2012-shaped benchmark synthesis (Table 2 of the paper).

The paper merges all five ICCAD 2012 contest cases into one benchmark
with the statistics of Table 2:

    ============  =========  ==========
    split         hotspots   non-hotspots
    ============  =========  ==========
    train         1204       17096
    test          2524       13503
    ============  =========  ==========

We reproduce the *generating process* of that benchmark — layout clips
labelled by lithography simulation over a process window — at a
configurable ``scale``, preserving the class imbalance (6.6% hotspots
in train, 15.7% in test).  Clips are drawn from the synthetic pattern
families, simulated, and routed to the four quota buckets until all are
full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.downsample import downsample_area, downsample_binary
from ..nn.data import ArrayDataset
from .epe import LithographySimulator
from .patterns import Technology, sample_clip
from .raster import rasterize

__all__ = [
    "PAPER_TABLE2",
    "BenchmarkStats",
    "HotspotBenchmark",
    "generate_hotspot_dataset",
    "generate_iccad2012_like",
]

#: Table 2 of the paper: merged ICCAD 2012 contest statistics.
PAPER_TABLE2 = {
    "train_hs": 1204,
    "train_nhs": 17096,
    "test_hs": 2524,
    "test_nhs": 13503,
}


@dataclass(frozen=True)
class BenchmarkStats:
    """Instance counts of a generated benchmark (Table 2 layout)."""

    train_hs: int
    train_nhs: int
    test_hs: int
    test_nhs: int

    @property
    def train_total(self) -> int:
        """Total training instances."""
        return self.train_hs + self.train_nhs

    @property
    def test_total(self) -> int:
        """Total testing instances."""
        return self.test_hs + self.test_nhs


@dataclass
class HotspotBenchmark:
    """A generated benchmark: train/test datasets plus their statistics.

    Images are single-channel 0/1 layout clips shaped
    ``(n, 1, size, size)``; labels are 1 for hotspot, 0 for non-hotspot.
    """

    train: ArrayDataset
    test: ArrayDataset
    stats: BenchmarkStats
    image_size: int


def _clip_image(
    clip, simulator: LithographySimulator, image_size: int, downsample: str
) -> np.ndarray:
    """Rasterise a clip at simulation resolution and down-sample to the
    dataset image size.

    ``downsample="binary"`` majority-thresholds (the paper's binary
    images); ``"area"`` keeps fractional pixel coverage, preserving
    sub-pixel feature-size information at aggressive down-sampling
    ratios (used by the scaled-down benchmark configurations)."""
    native = rasterize(clip, simulator.resolution_px, mode="binary")
    if downsample == "area":
        return downsample_area(native, image_size)
    if downsample == "binary":
        return downsample_binary(native, image_size)
    raise ValueError(f"downsample must be 'area' or 'binary', got {downsample!r}")


def generate_hotspot_dataset(
    n_hotspot: int,
    n_nonhotspot: int,
    rng: np.random.Generator,
    simulator: LithographySimulator | None = None,
    tech: Technology | None = None,
    image_size: int = 128,
    downsample: str = "binary",
    max_draws: int | None = None,
) -> ArrayDataset:
    """Generate clips until the hotspot / non-hotspot quotas are filled.

    Each drawn clip is labelled by the lithography simulator and kept
    only while its class quota is open.  Raises ``RuntimeError`` if
    ``max_draws`` clips (default ``20 * (quota sum)``) were drawn
    without filling the quotas — a symptom of mis-calibrated pattern
    parameters.
    """
    simulator = simulator if simulator is not None else LithographySimulator()
    tech = tech if tech is not None else Technology()
    if max_draws is None:
        max_draws = 20 * max(1, n_hotspot + n_nonhotspot)
    need = {True: n_hotspot, False: n_nonhotspot}
    images: list[np.ndarray] = []
    labels: list[int] = []
    draws = 0
    while need[True] > 0 or need[False] > 0:
        if draws >= max_draws:
            raise RuntimeError(
                f"quota not filled after {draws} draws "
                f"(remaining: {need[True]} hotspot, {need[False]} non-hotspot)"
            )
        clip = sample_clip(rng, tech)
        draws += 1
        is_hs = simulator.is_hotspot(clip)
        if need[is_hs] <= 0:
            continue
        need[is_hs] -= 1
        images.append(_clip_image(clip, simulator, image_size, downsample))
        labels.append(int(is_hs))
    order = rng.permutation(len(images))
    stacked = np.stack(images)[order][:, None, :, :].astype(np.float32)
    return ArrayDataset(stacked, np.array(labels, dtype=np.int64)[order])


def generate_iccad2012_like(
    scale: float = 0.05,
    image_size: int = 128,
    seed: int = 2012,
    simulator: LithographySimulator | None = None,
    tech: Technology | None = None,
    downsample: str = "binary",
) -> HotspotBenchmark:
    """Generate an ICCAD-2012-shaped benchmark at ``scale``.

    ``scale = 1.0`` reproduces the Table 2 counts exactly; smaller
    scales preserve the class imbalance.  Train and test splits use
    independent random streams, so test patterns are unseen draws from
    the same distribution — mirroring the contest setup where both
    splits come from the same designs.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    counts = {k: max(1, int(round(v * scale))) for k, v in PAPER_TABLE2.items()}
    stats = BenchmarkStats(**counts)
    train_rng = np.random.default_rng(seed)
    test_rng = np.random.default_rng(seed + 1_000_003)
    train = generate_hotspot_dataset(
        stats.train_hs, stats.train_nhs, train_rng,
        simulator=simulator, tech=tech, image_size=image_size,
        downsample=downsample,
    )
    test = generate_hotspot_dataset(
        stats.test_hs, stats.test_nhs, test_rng,
        simulator=simulator, tech=tech, image_size=image_size,
        downsample=downsample,
    )
    return HotspotBenchmark(train=train, test=test, stats=stats,
                            image_size=image_size)
