"""Printability analysis: edge placement error, bridges and breaks.

Compares the printed resist contour against the drawn target geometry
and decides whether the pattern is a lithographic *hotspot*:

* **bridge** — one printed blob touches two or more distinct target
  shapes (a short between nets);
* **break** — a target shape prints in two or more fragments, or not at
  all (an open);
* **EPE** — the worst distance between the target edge and the printed
  edge; excessive EPE means the feature is out of tolerance even if
  topology survived.

These are exactly the failure modes lithography simulation flags on
real layouts; the ICCAD 2012 benchmark's labels come from such a
simulation, so labelling synthetic clips the same way preserves the
learning task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .geometry import Clip
from .optics import OpticalModel
from .raster import rasterize
from .resist import ProcessCorner, default_process_window, print_contour

__all__ = ["PrintabilityReport", "analyze_contours", "LithographySimulator"]

_STRUCTURE = np.ones((3, 3), dtype=bool)  # 8-connectivity


@dataclass
class PrintabilityReport:
    """Outcome of comparing one printed contour against its target."""

    max_epe_nm: float
    bridged: bool
    broken: bool

    def is_hotspot(self, epe_tolerance_nm: float) -> bool:
        """A pattern fails if topology breaks or EPE exceeds tolerance."""
        return self.bridged or self.broken or self.max_epe_nm > epe_tolerance_nm


def _boundary(mask: np.ndarray) -> np.ndarray:
    """Inner boundary pixels of a boolean mask."""
    if not mask.any():
        return np.zeros_like(mask)
    eroded = ndimage.binary_erosion(mask, structure=_STRUCTURE, border_value=0)
    return mask & ~eroded


def _max_edge_distance(
    from_mask: np.ndarray, to_mask: np.ndarray, pixel_nm: float
) -> float:
    """Largest distance from ``from_mask`` boundary to ``to_mask`` boundary."""
    from_edge = _boundary(from_mask)
    if not from_edge.any():
        return 0.0
    to_edge = _boundary(to_mask)
    if not to_edge.any():
        return float("inf")
    distance = ndimage.distance_transform_edt(~to_edge)
    return float(distance[from_edge].max() * pixel_nm)


def analyze_contours(
    target: np.ndarray, printed: np.ndarray, pixel_nm: float
) -> PrintabilityReport:
    """Compare a printed contour with the drawn target.

    ``target`` and ``printed`` are boolean images on the same grid;
    ``pixel_nm`` converts pixel distances to nanometres.
    """
    target = target.astype(bool)
    printed = printed.astype(bool)

    target_labels, n_target = ndimage.label(target, structure=_STRUCTURE)
    printed_labels, n_printed = ndimage.label(printed, structure=_STRUCTURE)

    # Bridge: a printed component overlapping >= 2 target components.
    bridged = False
    for printed_id in range(1, n_printed + 1):
        touched = np.unique(target_labels[printed_labels == printed_id])
        if (touched > 0).sum() >= 2:
            bridged = True
            break

    # Break: a target component covered by 0 printed pixels (vanished)
    # or printing in >= 2 fragments within its own footprint.
    broken = False
    for target_id in range(1, n_target + 1):
        footprint = target_labels == target_id
        inside = printed & footprint
        if not inside.any():
            broken = True
            break
        _, n_fragments = ndimage.label(inside, structure=_STRUCTURE)
        if n_fragments >= 2:
            broken = True
            break

    # EPE: symmetric worst edge displacement (pull-back and blooming).
    epe = max(
        _max_edge_distance(target, printed, pixel_nm),
        _max_edge_distance(printed, target, pixel_nm),
    )
    if not np.isfinite(epe):
        # one of the images is empty: total failure, fold into "broken"
        epe = 0.0
        broken = broken or target.any() != printed.any()
    return PrintabilityReport(max_epe_nm=epe, bridged=bridged, broken=broken)


class LithographySimulator:
    """End-to-end printability check: clip -> aerial -> contour -> report.

    Parameters
    ----------
    optics:
        Nominal optical model.
    resolution_px:
        Simulation raster resolution (pixels per clip side).
    threshold:
        Resist threshold as a fraction of clear-field intensity.
    corners:
        Process-window corners; the worst report over all corners
        decides the hotspot label ("sensitive to process variations").
    epe_tolerance_nm:
        EPE beyond which a pattern counts as failing.
    """

    def __init__(
        self,
        optics: OpticalModel | None = None,
        resolution_px: int = 128,
        threshold: float = 0.35,
        corners: list[ProcessCorner] | None = None,
        epe_tolerance_nm: float = 55.0,
    ):
        self.optics = optics if optics is not None else OpticalModel()
        self.resolution_px = resolution_px
        self.threshold = threshold
        self.corners = corners if corners is not None else default_process_window()
        self.epe_tolerance_nm = epe_tolerance_nm
        self._models: dict[float, OpticalModel] = {}

    def _model_at(self, broadening: float) -> OpticalModel:
        if broadening not in self._models:
            self._models[broadening] = self.optics.defocused(broadening)
        return self._models[broadening]

    def simulate_corner(
        self, mask: np.ndarray, pixel_nm: float, corner: ProcessCorner
    ) -> np.ndarray:
        """Printed contour of a mask image at one process corner."""
        model = self._model_at(corner.defocus_broadening)
        aerial = model.aerial_image(mask, pixel_nm)
        return print_contour(aerial, self.threshold, dose=corner.dose)

    def analyze(self, clip: Clip) -> PrintabilityReport:
        """Worst printability report of ``clip`` over the process window."""
        pixel_nm = clip.size / self.resolution_px
        mask = rasterize(clip, self.resolution_px, mode="area")
        target = rasterize(clip, self.resolution_px, mode="binary").astype(bool)
        worst: PrintabilityReport | None = None
        for corner in self.corners:
            printed = self.simulate_corner(mask, pixel_nm, corner)
            report = analyze_contours(target, printed, pixel_nm)
            if worst is None or self._severity(report) > self._severity(worst):
                worst = report
        assert worst is not None
        return worst

    def is_hotspot(self, clip: Clip) -> bool:
        """Hotspot label of a clip under this simulator's criteria."""
        return self.analyze(clip).is_hotspot(self.epe_tolerance_nm)

    @staticmethod
    def _severity(report: PrintabilityReport) -> tuple[int, float]:
        """Ordering key: topology failures dominate, then EPE."""
        return (int(report.bridged or report.broken), report.max_epe_nm)
