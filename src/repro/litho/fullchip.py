"""Full-chip layout synthesis and ECO edit traces.

The window-scale generators in :mod:`repro.litho.patterns` emit one
clip per call — fine for training data, useless for exercising a
mm-scale streaming scan.  This module synthesizes *whole layouts*:

* :func:`synthesize_chip` — a deterministic, :class:`Technology`-aware
  standard-cell-like fabric of arbitrary size.  Generation is
  block-local (each ``block`` x ``block`` nm region is filled from its
  own counter-based RNG stream), so the same ``(size, tech, seed)``
  always produces the same rectangle list, generation cost is linear in
  area, and no rectangle crosses a block boundary.
* :class:`LayoutEdit` / :func:`apply_edits` — the rect add/remove/move
  edit vocabulary of an ECO (engineering change order) loop, with
  deterministic list semantics the incremental scanner can mirror.
* :func:`synthesize_edit_trace` — a seeded generator of valid edit
  sequences, optionally confined to a sub-region so benchmarks can
  dial "how local is the edit" as an axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .geometry import Clip, Rect
from .patterns import Technology

__all__ = [
    "LayoutEdit",
    "apply_edits",
    "synthesize_chip",
    "synthesize_edit_trace",
]


# -- chip synthesis -------------------------------------------------------


def _fill_wires(clip: Clip, rng: np.random.Generator, tech: Technology,
                x0: int, y0: int, w: int, h: int, vertical: bool) -> None:
    """A grating of segmented wires spanning one block."""
    width = tech.random_width(rng)
    pitch = width + tech.random_space(rng)
    seg = int(rng.integers(6, 14)) * pitch
    span, across = (h, w) if vertical else (w, h)
    for off in range(pitch // 2, across - width, pitch):
        pos = 0
        while pos < span:
            length = min(int(seg * (0.6 + 0.8 * rng.random())), span - pos)
            if length > 2 * width and rng.random() < 0.88:
                if vertical:
                    clip.add(Rect(x0 + off, y0 + pos,
                                  x0 + off + width, y0 + pos + length))
                else:
                    clip.add(Rect(x0 + pos, y0 + off,
                                  x0 + pos + length, y0 + off + width))
            pos += length + tech.random_space(rng)


def _fill_vias(clip: Clip, rng: np.random.Generator, tech: Technology,
               x0: int, y0: int, w: int, h: int) -> None:
    """A farm of contact squares on a coarse grid."""
    side = int(rng.integers(tech.via_min, tech.via_max + 1))
    pitch = side + tech.random_space(rng)
    for gy in range(pitch // 2, h - side, pitch):
        for gx in range(pitch // 2, w - side, pitch):
            if rng.random() < 0.55:
                clip.add(Rect(x0 + gx, y0 + gy,
                              x0 + gx + side, y0 + gy + side))


def _fill_cell_row(clip: Clip, rng: np.random.Generator, tech: Technology,
                   x0: int, y0: int, w: int, h: int) -> None:
    """Rail-bounded rows of short vertical fingers (standard-cell-ish)."""
    rail = tech.width_max
    row = 4 * tech.width_max + 2 * tech.space_max
    for ry in range(0, h - rail, row):
        clip.add(Rect(x0, y0 + ry, x0 + w, y0 + ry + rail))
        width = tech.random_width(rng)
        pitch = width + tech.random_space(rng)
        top = min(ry + row - rail, h)
        if top - (ry + rail) < 2 * width:
            continue
        for off in range(pitch // 2, w - width, pitch):
            if rng.random() < 0.7:
                clip.add(Rect(x0 + off, y0 + ry + rail,
                              x0 + off + width, y0 + top))


_BLOCK_FILLS = (_fill_wires, _fill_vias, _fill_cell_row)


def synthesize_chip(
    size: int,
    tech: Technology | None = None,
    seed: int = 0,
    block: int = 4096,
) -> Clip:
    """Synthesize a deterministic full-chip metal layer of side ``size`` nm.

    The layout is a checkerboard of ``block`` x ``block`` nm regions,
    each filled with one motif (wire grating, via farm, or cell rows)
    drawn from a counter-based RNG stream seeded by ``(seed, bx, by)``
    — so layouts of different sizes share their common blocks, and the
    rectangle list is a pure function of the arguments.  Rectangles are
    emitted in row-major block order and never cross a block boundary.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    tech = tech if tech is not None else Technology()
    layout = Clip(size)
    for by in range(0, size, block):
        for bx in range(0, size, block):
            rng = np.random.default_rng([seed, bx, by])
            w = min(block, size - bx)
            h = min(block, size - by)
            fill = _BLOCK_FILLS[int(rng.integers(len(_BLOCK_FILLS)))]
            if fill is _fill_wires:
                fill(layout, rng, tech, bx, by, w, h,
                     vertical=bool(rng.integers(2)))
            else:
                fill(layout, rng, tech, bx, by, w, h)
    return layout


# -- ECO edits ------------------------------------------------------------


@dataclass(frozen=True)
class LayoutEdit:
    """One ECO edit: add, remove, or move a rectangle.

    ``rect`` is the subject (for ``"move"``: the rectangle's *current*
    position, which must exist in the layout); ``to`` is the target
    position of a move and must be ``None`` otherwise.
    """

    kind: str
    rect: Rect
    to: Rect | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove", "move"):
            raise ValueError(f"unknown edit kind {self.kind!r}")
        if (self.kind == "move") != (self.to is not None):
            raise ValueError("to= is required for move edits and only them")

    def dirty_rects(self) -> tuple[Rect, ...]:
        """The nm regions whose raster content this edit can change."""
        if self.kind == "move":
            return (self.rect, self.to)
        return (self.rect,)


def apply_edits(layout: Clip, edits: list[LayoutEdit]) -> Clip:
    """Apply an edit sequence, returning a new layout.

    List semantics are deterministic and mirrored by the incremental
    scanner's spatial index: ``remove`` deletes the *first* rectangle
    equal to ``edit.rect`` (``ValueError`` when absent), ``add`` appends
    the rectangle (clipped to the layout window), and ``move`` is a
    remove of ``rect`` followed by an append of ``to``.  The surviving
    rectangles keep their relative order, so the edited layout's raster
    accumulation order — and therefore its raster, bit for bit — is a
    pure function of the original layout and the edit list.
    """
    rects = list(layout.rects)
    for edit in edits:
        if edit.kind in ("remove", "move"):
            try:
                rects.remove(edit.rect)
            except ValueError:
                raise ValueError(
                    f"{edit.kind} edit targets a rectangle not in the "
                    f"layout: {edit.rect}"
                ) from None
        if edit.kind == "add":
            rects.append(edit.rect)
        elif edit.kind == "move":
            rects.append(edit.to)
    return Clip(layout.size, rects)


def synthesize_edit_trace(
    layout: Clip,
    n_edits: int,
    seed: int = 0,
    region: Rect | None = None,
    tech: Technology | None = None,
) -> list[LayoutEdit]:
    """Generate a valid, seeded ECO edit trace for ``layout``.

    Each edit is drawn uniformly from add/remove/move, confined to
    ``region`` (default: the whole layout) — the knob benchmarks turn
    to measure re-scan latency as a function of edit locality.  The
    trace is *sequentially valid*: removes and moves always target a
    rectangle still present at that point, so
    :func:`apply_edits(layout, trace)` never raises.
    """
    if n_edits < 0:
        raise ValueError(f"n_edits must be >= 0, got {n_edits}")
    tech = tech if tech is not None else Technology()
    region = region if region is not None else Rect(0, 0, layout.size,
                                                   layout.size)
    rng = np.random.default_rng(seed)
    live = list(layout.rects)
    local = [r for r in live if r.intersects(region)]
    edits: list[LayoutEdit] = []

    def draw_rect() -> Rect:
        side_w = int(rng.integers(tech.via_min, tech.width_max + 1))
        side_h = int(rng.integers(tech.via_min, tech.width_max + 1))
        x0 = int(rng.integers(region.x0, max(region.x0 + 1,
                                             region.x1 - side_w)))
        y0 = int(rng.integers(region.y0, max(region.y0 + 1,
                                             region.y1 - side_h)))
        x1 = min(x0 + side_w, layout.size)
        y1 = min(y0 + side_h, layout.size)
        return Rect(x0, y0, x1, y1)

    for _ in range(n_edits):
        kind = ("add", "remove", "move")[int(rng.integers(3))]
        if kind != "add" and not local:
            kind = "add"
        if kind == "add":
            rect = draw_rect()
            edits.append(LayoutEdit("add", rect))
            live.append(rect)
            if rect.intersects(region):
                local.append(rect)
        elif kind == "remove":
            rect = local.pop(int(rng.integers(len(local))))
            live.remove(rect)
            edits.append(LayoutEdit("remove", rect))
        else:
            rect = local.pop(int(rng.integers(len(local))))
            live.remove(rect)
            span = max(tech.space_min, 1)
            dx = int(rng.integers(-span, span + 1))
            dy = int(rng.integers(-span, span + 1))
            dx = min(max(dx, -rect.x0), layout.size - rect.x1)
            dy = min(max(dy, -rect.y0), layout.size - rect.y1)
            target = rect.shifted(dx, dy)
            edits.append(LayoutEdit("move", rect, to=target))
            live.append(target)
            if target.intersects(region):
                local.append(target)
    return edits
