"""Layout geometry primitives.

A *clip* is a square window of layout extracted around a point of
interest — the unit of classification in the ICCAD 2012 contest and in
the paper.  Geometry is Manhattan (axis-aligned rectangles) with
coordinates in integer nanometres, as in real layout databases.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect", "Clip"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle, half-open semantics ``[x0, x1) x [y0, y1)``."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate rectangle {self}")

    @property
    def width(self) -> int:
        """Extent along x in nanometres."""
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        """Extent along y in nanometres."""
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        """Covered area in square nanometres."""
        return self.width * self.height

    def shifted(self, dx: int, dy: int) -> "Rect":
        """Translate by (dx, dy)."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def intersects(self, other: "Rect") -> bool:
        """True when the interiors overlap (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rectangle, or ``None`` when disjoint."""
        x0, y0 = max(self.x0, other.x0), max(self.y0, other.y0)
        x1, y1 = min(self.x1, other.x1), min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def clipped(self, window: "Rect") -> "Rect | None":
        """Restrict to ``window`` (alias of :meth:`intersection`)."""
        return self.intersection(window)


class Clip:
    """A square layout clip: a window size plus its rectangles.

    Rectangles are clipped to the window on insertion; rectangles that
    fall entirely outside are dropped.  Overlapping rectangles are
    allowed (the raster ORs them), matching layout-database semantics.
    """

    def __init__(self, size: int, rects: list[Rect] | None = None):
        if size <= 0:
            raise ValueError(f"clip size must be positive, got {size}")
        self.size = size
        self.rects: list[Rect] = []
        if rects:
            for rect in rects:
                self.add(rect)

    @property
    def window(self) -> Rect:
        """The clip's bounding window rectangle."""
        return Rect(0, 0, self.size, self.size)

    def add(self, rect: Rect) -> None:
        """Insert a rectangle, clipped to the window; outside parts drop."""
        clipped = rect.clipped(self.window)
        if clipped is not None:
            self.rects.append(clipped)

    def __len__(self) -> int:
        return len(self.rects)

    def flip_horizontal(self) -> "Clip":
        """Mirror about the vertical axis."""
        s = self.size
        return Clip(s, [Rect(s - r.x1, r.y0, s - r.x0, r.y1) for r in self.rects])

    def flip_vertical(self) -> "Clip":
        """Mirror about the horizontal axis."""
        s = self.size
        return Clip(s, [Rect(r.x0, s - r.y1, r.x1, s - r.y0) for r in self.rects])

    def transposed(self) -> "Clip":
        """Swap x and y (reflect about the main diagonal)."""
        return Clip(self.size, [Rect(r.y0, r.x0, r.y1, r.x1) for r in self.rects])

    def density(self) -> float:
        """Fraction of the window covered by geometry (overlap-aware).

        Computed by sweeping x-events and measuring the covered y-length
        of the active rectangle set — exact for Manhattan geometry.
        """
        if not self.rects:
            return 0.0
        events = sorted({r.x0 for r in self.rects} | {r.x1 for r in self.rects})
        covered = 0
        for x_lo, x_hi in zip(events, events[1:]):
            spans = sorted(
                (r.y0, r.y1) for r in self.rects if r.x0 <= x_lo and r.x1 >= x_hi
            )
            y_len, cur_lo, cur_hi = 0, None, None
            for y0, y1 in spans:
                if cur_hi is None or y0 > cur_hi:
                    if cur_hi is not None:
                        y_len += cur_hi - cur_lo
                    cur_lo, cur_hi = y0, y1
                else:
                    cur_hi = max(cur_hi, y1)
            if cur_hi is not None:
                y_len += cur_hi - cur_lo
            covered += (x_hi - x_lo) * y_len
        return covered / (self.size * self.size)
