"""Layout clip persistence.

Two interchange formats:

* **JSON** — one document per clip set, round-trips exactly; the format
  benchmark datasets and example scripts use;
* **KLayout-style text** (a minimal GDS-adjacent format) — one polygon
  per line as ``BOX x0 y0 x1 y1``, with ``CLIP <size>`` headers, so
  clips can be eyeballed and diffed, or imported into external tooling
  with a trivial parser.
"""

from __future__ import annotations

import json
import os

from .geometry import Clip, Rect

__all__ = [
    "clips_to_json",
    "clips_from_json",
    "save_clips_json",
    "load_clips_json",
    "save_clips_text",
    "load_clips_text",
]

_FORMAT_VERSION = 1


def clips_to_json(clips: list[Clip]) -> dict:
    """Serialise clips to a JSON-compatible document."""
    return {
        "format": "repro-clips",
        "version": _FORMAT_VERSION,
        "clips": [
            {
                "size": clip.size,
                "rects": [[r.x0, r.y0, r.x1, r.y1] for r in clip.rects],
            }
            for clip in clips
        ],
    }


def clips_from_json(document: dict) -> list[Clip]:
    """Inverse of :func:`clips_to_json`, with format validation."""
    if document.get("format") != "repro-clips":
        raise ValueError("not a repro-clips document")
    if document.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported version {document.get('version')!r}")
    clips = []
    for entry in document["clips"]:
        clip = Clip(int(entry["size"]))
        for x0, y0, x1, y1 in entry["rects"]:
            clip.add(Rect(int(x0), int(y0), int(x1), int(y1)))
        clips.append(clip)
    return clips


def save_clips_json(clips: list[Clip], path: str | os.PathLike) -> None:
    """Write clips to a JSON file."""
    with open(path, "w") as handle:
        json.dump(clips_to_json(clips), handle, indent=1)


def load_clips_json(path: str | os.PathLike) -> list[Clip]:
    """Read clips written by :func:`save_clips_json`."""
    with open(path) as handle:
        return clips_from_json(json.load(handle))


def save_clips_text(clips: list[Clip], path: str | os.PathLike) -> None:
    """Write clips in the line-oriented text format."""
    with open(path, "w") as handle:
        handle.write("# repro-clips text format v1\n")
        for clip in clips:
            handle.write(f"CLIP {clip.size}\n")
            for rect in clip.rects:
                handle.write(f"BOX {rect.x0} {rect.y0} {rect.x1} {rect.y1}\n")


def load_clips_text(path: str | os.PathLike) -> list[Clip]:
    """Read clips written by :func:`save_clips_text`.

    Unknown lines raise ``ValueError`` with the offending line number;
    comments (``#``) and blank lines are skipped.
    """
    clips: list[Clip] = []
    with open(path) as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "CLIP" and len(parts) == 2:
                clips.append(Clip(int(parts[1])))
            elif parts[0] == "BOX" and len(parts) == 5:
                if not clips:
                    raise ValueError(f"line {number}: BOX before any CLIP")
                x0, y0, x1, y1 = (int(p) for p in parts[1:])
                clips[-1].add(Rect(x0, y0, x1, y1))
            else:
                raise ValueError(f"line {number}: cannot parse {line!r}")
    return clips
