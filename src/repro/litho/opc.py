"""Optical proximity correction (OPC).

The ICCAD 2012 layouts were drawn for a production flow that applies
OPC before exposure; our synthetic substrate exposes the drawn
geometry directly, which makes marginal patterns fail more often.  This
module provides the two standard correction levels so that experiments
can quantify the gap:

* :func:`rule_based_opc` — a constant mask bias plus line-end
  extension, the classic "rule-based" recipe;
* :class:`IterativeOPC` — model-based correction: simulate, measure
  each rectangle edge's placement error at the nominal condition, move
  the edge a damped fraction of the error, repeat.

Both operate on rectangle geometry (the natural granularity of this
substrate) rather than fractured edge segments; that is the appropriate
fidelity for clips made of a handful of rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .epe import LithographySimulator
from .geometry import Clip, Rect
from .raster import rasterize
from .resist import nominal_corner

__all__ = ["rule_based_opc", "IterativeOPC"]


def _biased_rect(rect: Rect, bias: int, window: int) -> Rect | None:
    """Grow a rectangle by ``bias`` on each side, clipped to the window."""
    grown = Rect(
        rect.x0 - bias, rect.y0 - bias, rect.x1 + bias, rect.y1 + bias
    )
    return grown.clipped(Rect(0, 0, window, window))


def rule_based_opc(
    clip: Clip, bias: int = 8, line_end_extension: int = 16
) -> Clip:
    """Rule-based correction: global bias + line-end extension.

    Every rectangle grows by ``bias`` nm per side (compensating the
    undersizing of a positive-tone process near threshold), and the
    short ends of high-aspect rectangles (wires) are additionally
    extended by ``line_end_extension`` nm to counter pull-back.
    """
    if bias < 0 or line_end_extension < 0:
        raise ValueError("bias and line_end_extension must be non-negative")
    corrected = Clip(clip.size)
    for rect in clip.rects:
        x0, y0, x1, y1 = rect.x0, rect.y0, rect.x1, rect.y1
        if rect.height >= 2 * rect.width:      # vertical wire: extend ends
            y0 -= line_end_extension
            y1 += line_end_extension
        elif rect.width >= 2 * rect.height:    # horizontal wire
            x0 -= line_end_extension
            x1 += line_end_extension
        grown = _biased_rect(Rect(x0, y0, x1, y1), bias, clip.size)
        if grown is not None:
            corrected.add(grown)
    return corrected


@dataclass
class _EdgeMeasurement:
    """Printed-edge placement for one rectangle, nm per side
    (positive = printed inside the drawn edge, i.e. pull-in)."""

    left: float
    right: float
    bottom: float
    top: float


class IterativeOPC:
    """Model-based OPC: move each rectangle edge against its EPE.

    Parameters
    ----------
    simulator:
        The lithography model to correct against (nominal corner only,
        as real OPC does; the process window is verification's job).
    iterations:
        Correction rounds.
    damping:
        Fraction of the measured error applied per round (< 1 for
        stability).
    max_move:
        Per-round clamp on edge movement in nm.
    """

    def __init__(
        self,
        simulator: LithographySimulator | None = None,
        iterations: int = 4,
        damping: float = 0.6,
        max_move: int = 24,
    ):
        if not 0.0 < damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {damping}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.simulator = (
            simulator if simulator is not None else LithographySimulator()
        )
        self.iterations = iterations
        self.damping = damping
        self.max_move = max_move

    # -- measurement ------------------------------------------------------

    def _printed(self, mask_clip: Clip) -> np.ndarray:
        sim = self.simulator
        pixel_nm = mask_clip.size / sim.resolution_px
        mask = rasterize(mask_clip, sim.resolution_px, mode="area")
        return sim.simulate_corner(mask, pixel_nm, nominal_corner())

    def _measure_edges(
        self, target_rect: Rect, printed: np.ndarray, pixel_nm: float
    ) -> _EdgeMeasurement:
        """Edge placement of the printed contour along each drawn edge.

        Scans the printed image along the row/column through the
        rectangle's centre; returns pull-in distances (positive when the
        printed edge sits inside the drawn edge).
        """
        cy = int((target_rect.y0 + target_rect.y1) / 2 / pixel_nm)
        cx = int((target_rect.x0 + target_rect.x1) / 2 / pixel_nm)
        size = printed.shape[0]
        cy = np.clip(cy, 0, size - 1)
        cx = np.clip(cx, 0, size - 1)

        def printed_span(line: np.ndarray, lo_nm: float, hi_nm: float):
            """Printed extent of a scan line within a window (nm)."""
            lo_px = int(np.clip(lo_nm / pixel_nm, 0, size - 1))
            hi_px = int(np.clip(hi_nm / pixel_nm, 1, size))
            inside = np.flatnonzero(line[lo_px:hi_px])
            if inside.size == 0:
                return None
            return (lo_px + inside[0]) * pixel_nm, (lo_px + inside[-1] + 1) * pixel_nm

        margin = 2 * self.max_move * self.iterations
        row = printed[cy, :]
        col = printed[:, cx]
        h_span = printed_span(row, target_rect.x0 - margin,
                              target_rect.x1 + margin)
        v_span = printed_span(col, target_rect.y0 - margin,
                              target_rect.y1 + margin)
        if h_span is None or v_span is None:
            # feature vanished: report full pull-in so edges push outward
            half_w = target_rect.width / 2
            half_h = target_rect.height / 2
            return _EdgeMeasurement(half_w, half_w, half_h, half_h)
        return _EdgeMeasurement(
            left=h_span[0] - target_rect.x0,
            right=target_rect.x1 - h_span[1],
            bottom=v_span[0] - target_rect.y0,
            top=target_rect.y1 - v_span[1],
        )

    # -- correction -------------------------------------------------------

    def correct(self, clip: Clip) -> Clip:
        """Return an OPC'd mask clip for the drawn target ``clip``."""
        sim = self.simulator
        pixel_nm = clip.size / sim.resolution_px
        window = Rect(0, 0, clip.size, clip.size)
        # mask starts as the drawn geometry; edges move independently
        mask_rects = [
            [float(r.x0), float(r.y0), float(r.x1), float(r.y1)]
            for r in clip.rects
        ]
        for _ in range(self.iterations):
            mask_clip = self._to_clip(mask_rects, clip.size)
            printed = self._printed(mask_clip)
            for target, mask in zip(clip.rects, mask_rects):
                measured = self._measure_edges(target, printed, pixel_nm)
                step = self.damping
                clamp = self.max_move
                mask[0] -= np.clip(step * measured.left, -clamp, clamp)
                mask[2] += np.clip(step * measured.right, -clamp, clamp)
                mask[1] -= np.clip(step * measured.bottom, -clamp, clamp)
                mask[3] += np.clip(step * measured.top, -clamp, clamp)
        return self._to_clip(mask_rects, clip.size)

    @staticmethod
    def _to_clip(mask_rects: list[list[float]], size: int) -> Clip:
        out = Clip(size)
        for x0, y0, x1, y1 in mask_rects:
            xi0, yi0 = int(round(x0)), int(round(y0))
            xi1, yi1 = int(round(x1)), int(round(y1))
            if xi1 > xi0 and yi1 > yi0:
                out.add(Rect(xi0, yi0, xi1, yi1))
        return out

    def residual_epe(self, clip: Clip) -> float:
        """Worst nominal-condition EPE after correction (nm)."""
        from .epe import analyze_contours

        corrected = self.correct(clip)
        sim = self.simulator
        pixel_nm = clip.size / sim.resolution_px
        printed = self._printed(corrected)
        target = rasterize(clip, sim.resolution_px, mode="binary").astype(bool)
        return analyze_contours(target, printed, pixel_nm).max_epe_nm
