"""Aerial-image simulation.

Partially coherent projection lithography is modelled with a small
sum-of-coherent-systems (SOCS) expansion: the aerial image is a
weighted sum of squared convolutions of the mask transmission with
coherent point-spread kernels,

    I(x, y) = sum_k  w_k * | (m * h_k)(x, y) |^2 .

Gaussian kernels stand in for the Hopkins eigen-kernels — they capture
the two behaviours the hotspot task depends on: low-pass blurring at
the scale ``lambda / NA`` (corner rounding, line-end pull-back, bridging
of tight spaces) and contrast loss for dense pitches.  Kernels are
L1-normalised so a clear field images to intensity 1.0, making the
resist threshold dimensionless.

Defocus is modelled as kernel widening — the standard Gaussian-optics
approximation — which is what degrades marginal patterns first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

__all__ = ["OpticalModel", "gaussian_kernel"]


def gaussian_kernel(sigma_px: float, radius: int | None = None) -> np.ndarray:
    """2-D Gaussian kernel, L1-normalised, truncated at ``radius`` pixels
    (default ``ceil(3 * sigma)``)."""
    if sigma_px <= 0:
        raise ValueError(f"sigma must be positive, got {sigma_px}")
    if radius is None:
        radius = int(np.ceil(3.0 * sigma_px))
    coords = np.arange(-radius, radius + 1)
    g1 = np.exp(-0.5 * (coords / sigma_px) ** 2)
    kernel = np.outer(g1, g1)
    return kernel / kernel.sum()


@dataclass
class OpticalModel:
    """SOCS-Gaussian imaging model.

    Parameters
    ----------
    wavelength_nm, na:
        Exposure wavelength and numerical aperture; 193 nm immersion
        (NA 1.35) by default, matching the 28-32 nm nodes of the
        ICCAD 2012 benchmark era.
    kernel_scales:
        Gaussian sigmas as fractions of ``lambda / NA``.
    kernel_weights:
        SOCS weights (need not be normalised; they are at build time).
    defocus_broadening:
        Multiplier applied to every sigma to emulate defocus
        (1.0 = best focus).
    """

    wavelength_nm: float = 193.0
    na: float = 1.35
    kernel_scales: tuple[float, ...] = (0.22, 0.40)
    kernel_weights: tuple[float, ...] = (0.8, 0.2)
    defocus_broadening: float = 1.0

    def __post_init__(self) -> None:
        if len(self.kernel_scales) != len(self.kernel_weights):
            raise ValueError("kernel_scales and kernel_weights must match")
        if self.defocus_broadening <= 0:
            raise ValueError("defocus_broadening must be positive")

    @property
    def resolution_nm(self) -> float:
        """The optical length scale ``lambda / NA``."""
        return self.wavelength_nm / self.na

    def defocused(self, broadening: float) -> "OpticalModel":
        """Return a copy of the model at a different defocus setting."""
        return OpticalModel(
            wavelength_nm=self.wavelength_nm,
            na=self.na,
            kernel_scales=self.kernel_scales,
            kernel_weights=self.kernel_weights,
            defocus_broadening=broadening,
        )

    def kernels(self, pixel_nm: float) -> list[tuple[float, np.ndarray]]:
        """Build the (weight, kernel) pairs on a ``pixel_nm`` grid."""
        total = sum(self.kernel_weights)
        pairs = []
        for scale, weight in zip(self.kernel_scales, self.kernel_weights):
            sigma_nm = scale * self.resolution_nm * self.defocus_broadening
            pairs.append((weight / total, gaussian_kernel(sigma_nm / pixel_nm)))
        return pairs

    def aerial_image(self, mask: np.ndarray, pixel_nm: float) -> np.ndarray:
        """Aerial intensity of a mask transmission image in [0, 1].

        The clear-field intensity is 1.0 by construction, so resist
        thresholds are expressed as a fraction of the open-frame dose.
        """
        intensity = np.zeros_like(mask, dtype=np.float64)
        for weight, kernel in self.kernels(pixel_nm):
            amplitude = fftconvolve(mask, kernel, mode="same")
            intensity += weight * amplitude**2
        return intensity
