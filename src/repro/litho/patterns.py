"""Synthetic layout-pattern generators.

Each generator emits a :class:`~repro.litho.geometry.Clip` drawn from a
family of metal-layer motifs whose printability ranges from comfortably
safe to marginal, so that the lithography simulator produces a
non-trivial mix of hotspot and non-hotspot labels.  The families mirror
the pattern classes the hotspot literature discusses:

* ``grating`` — parallel wires at varying pitch/width (dense pitches
  bridge, narrow wires neck);
* ``line_end_pair`` — facing wire tips across a gap (tip-to-tip
  bridging and line-end pull-back);
* ``elbows`` — L/T bends (inner-corner rounding EPE);
* ``via_array`` — small square contacts (small vias vanish);
* ``random_manhattan`` — mixed random routing.

All coordinates are integer nanometres inside a square clip window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .geometry import Clip, Rect

__all__ = [
    "Technology",
    "grating",
    "line_end_pair",
    "elbows",
    "via_array",
    "random_manhattan",
    "comb_fingers",
    "contacted_cell",
    "PATTERN_FAMILIES",
    "EXTENDED_FAMILIES",
    "sample_clip",
]


@dataclass(frozen=True)
class Technology:
    """Feature-size envelope of the pattern generators (nanometres).

    The defaults target a 193i metal layer: drawn widths straddle the
    printability edge of the default optical model so that a meaningful
    fraction of generated clips fails somewhere in the process window.
    """

    clip_size: int = 1024
    width_min: int = 56
    width_max: int = 150
    space_min: int = 56
    space_max: int = 260
    via_min: int = 60
    via_max: int = 130

    def random_width(self, rng: np.random.Generator) -> int:
        """Draw a legal feature width."""
        return int(rng.integers(self.width_min, self.width_max + 1))

    def random_space(self, rng: np.random.Generator) -> int:
        """Draw a legal feature spacing."""
        return int(rng.integers(self.space_min, self.space_max + 1))


def _maybe_transpose(clip: Clip, rng: np.random.Generator) -> Clip:
    """Randomise orientation: half the clips are transposed."""
    return clip.transposed() if rng.random() < 0.5 else clip


def grating(rng: np.random.Generator, tech: Technology = Technology()) -> Clip:
    """Parallel vertical wires; one wire may carry a width jog.

    Tight pitches risk bridging between neighbours; narrow wires risk
    necking under negative dose.
    """
    clip = Clip(tech.clip_size)
    width = tech.random_width(rng)
    space = tech.random_space(rng)
    pitch = width + space
    offset = int(rng.integers(0, pitch))
    x = offset
    jog_column = int(rng.integers(0, max(1, tech.clip_size // pitch)))
    column = 0
    while x + width <= tech.clip_size:
        y0 = int(rng.integers(0, tech.clip_size // 8))
        y1 = tech.clip_size - int(rng.integers(0, tech.clip_size // 8))
        if column == jog_column and rng.random() < 0.5:
            # split the wire at a jog: the lower half is narrowed
            y_mid = int(rng.integers(tech.clip_size // 3, 2 * tech.clip_size // 3))
            narrow = max(tech.width_min // 2, width - int(rng.integers(8, 40)))
            clip.add(Rect(x, y0, x + narrow, y_mid))
            clip.add(Rect(x, y_mid, x + width, y1))
        else:
            clip.add(Rect(x, y0, x + width, y1))
        x += pitch
        column += 1
    return _maybe_transpose(clip, rng)


def line_end_pair(
    rng: np.random.Generator, tech: Technology = Technology()
) -> Clip:
    """Two collinear wires whose tips face across a gap, with neighbours.

    The tip-to-tip gap is the classic hotspot: pull-back opens the gap
    (EPE failure) while over-exposure bridges it.
    """
    clip = Clip(tech.clip_size)
    width = tech.random_width(rng)
    gap = int(rng.integers(tech.space_min - 12, tech.space_max))
    center = tech.clip_size // 2
    x = center - width // 2
    y_break = int(rng.integers(tech.clip_size // 3, 2 * tech.clip_size // 3))
    clip.add(Rect(x, 0, x + width, max(1, y_break - gap // 2)))
    clip.add(Rect(x, min(tech.clip_size - 1, y_break + (gap + 1) // 2),
                  x + width, tech.clip_size))
    # flanking wires to create a realistic dense context
    pitch = width + tech.random_space(rng)
    for side in (-1, 1):
        n_neighbors = int(rng.integers(0, 3))
        for i in range(1, n_neighbors + 1):
            nx = x + side * i * pitch
            if 0 <= nx and nx + width <= tech.clip_size:
                clip.add(Rect(nx, 0, nx + width, tech.clip_size))
    return _maybe_transpose(clip, rng)


def elbows(rng: np.random.Generator, tech: Technology = Technology()) -> Clip:
    """Nested L-shaped bends; inner corners round and can pinch.

    Two facing elbows with a small diagonal clearance also create a
    corner-to-corner bridging risk.
    """
    clip = Clip(tech.clip_size)
    width = tech.random_width(rng)
    space = tech.random_space(rng)
    n_nested = int(rng.integers(1, 4))
    margin = int(rng.integers(60, 200))
    for i in range(n_nested):
        inset = margin + i * (width + space)
        arm = tech.clip_size - 2 * inset
        if arm < 3 * width:
            break
        # horizontal arm then vertical arm of an L
        clip.add(Rect(inset, inset, inset + arm, inset + width))
        clip.add(Rect(inset, inset, inset + width, inset + arm))
    if rng.random() < 0.5:
        # opposing corner block to create corner-to-corner spacing
        blk = int(rng.integers(width, 3 * width))
        gap = tech.random_space(rng)
        x0 = margin + width + gap
        if x0 + blk < tech.clip_size:
            clip.add(Rect(x0, x0, min(x0 + blk, tech.clip_size),
                          min(x0 + blk, tech.clip_size)))
    return _maybe_transpose(clip, rng)


def via_array(rng: np.random.Generator, tech: Technology = Technology()) -> Clip:
    """A grid of small square contacts; small isolated vias vanish."""
    clip = Clip(tech.clip_size)
    via = int(rng.integers(tech.via_min, tech.via_max + 1))
    pitch = via + tech.random_space(rng) + int(rng.integers(0, 120))
    n = max(1, (tech.clip_size - via) // pitch)
    offset = int(rng.integers(0, max(1, tech.clip_size - n * pitch)))
    keep = rng.random((n, n)) < rng.uniform(0.4, 1.0)
    for i in range(n):
        for j in range(n):
            if not keep[i, j]:
                continue
            x = offset + i * pitch
            y = offset + j * pitch
            if x + via <= tech.clip_size and y + via <= tech.clip_size:
                clip.add(Rect(x, y, x + via, y + via))
    return clip


def random_manhattan(
    rng: np.random.Generator, tech: Technology = Technology()
) -> Clip:
    """Random mixed routing: horizontal and vertical wire segments."""
    clip = Clip(tech.clip_size)
    n_wires = int(rng.integers(3, 9))
    for _ in range(n_wires):
        width = tech.random_width(rng)
        start = int(rng.integers(0, tech.clip_size - width))
        lo = int(rng.integers(0, tech.clip_size // 2))
        hi = int(rng.integers(lo + tech.clip_size // 4, tech.clip_size + 1))
        if rng.random() < 0.5:
            clip.add(Rect(start, lo, start + width, hi))
        else:
            clip.add(Rect(lo, start, hi, start + width))
    return clip


def comb_fingers(
    rng: np.random.Generator, tech: Technology = Technology()
) -> Clip:
    """Interdigitated comb: fingers from two opposite buses.

    The gap between a finger tip and the opposing bus is the critical
    dimension — a frequent hotspot motif in power-grid and capacitor
    layouts.
    """
    clip = Clip(tech.clip_size)
    width = tech.random_width(rng)
    space = tech.random_space(rng)
    pitch = width + space
    bus = int(rng.integers(80, 160))
    tip_gap = int(rng.integers(tech.space_min - 8, tech.space_max))
    clip.add(Rect(0, 0, tech.clip_size, bus))                       # bottom bus
    clip.add(Rect(0, tech.clip_size - bus, tech.clip_size, tech.clip_size))
    x = int(rng.integers(0, pitch))
    finger = 0
    while x + width <= tech.clip_size:
        if finger % 2 == 0:   # grows from the bottom bus
            clip.add(Rect(x, bus, x + width,
                          tech.clip_size - bus - tip_gap))
        else:                 # grows from the top bus
            clip.add(Rect(x, bus + tip_gap, x + width,
                          tech.clip_size - bus))
        x += pitch
        finger += 1
    return _maybe_transpose(clip, rng)


def contacted_cell(
    rng: np.random.Generator, tech: Technology = Technology()
) -> Clip:
    """A standard-cell-like motif: parallel gates with landing pads.

    Wide pads attached to narrow lines create the line-width transition
    hotspots (necking at the junction) typical of contacted poly.
    """
    clip = Clip(tech.clip_size)
    width = tech.random_width(rng)
    space = tech.random_space(rng)
    pitch = width + space
    pad = width + int(rng.integers(30, 90))
    x = int(rng.integers(0, pitch))
    while x + width <= tech.clip_size:
        clip.add(Rect(x, 0, x + width, tech.clip_size))
        pad_y = int(rng.integers(100, tech.clip_size - 100 - pad))
        pad_x0 = max(0, x - (pad - width) // 2)
        clip.add(Rect(pad_x0, pad_y,
                      min(tech.clip_size, pad_x0 + pad), pad_y + pad))
        x += pitch
    return _maybe_transpose(clip, rng)


#: The core families the ICCAD-2012-shaped benchmark samples from.
#: Fixed: changing this set changes every generated dataset.
PATTERN_FAMILIES = {
    "grating": grating,
    "line_end_pair": line_end_pair,
    "elbows": elbows,
    "via_array": via_array,
    "random_manhattan": random_manhattan,
}

#: Core plus the additional motifs (comb fingers, contacted cells) for
#: custom datasets and out-of-distribution generalisation experiments.
EXTENDED_FAMILIES = {
    **PATTERN_FAMILIES,
    "comb_fingers": comb_fingers,
    "contacted_cell": contacted_cell,
}


def sample_clip(
    rng: np.random.Generator,
    tech: Technology = Technology(),
    weights: dict[str, float] | None = None,
) -> Clip:
    """Draw one clip from a randomly chosen pattern family.

    Without ``weights``, samples uniformly over the core
    :data:`PATTERN_FAMILIES`.  With ``weights``, any family of
    :data:`EXTENDED_FAMILIES` can participate, proportionally to its
    weight.
    """
    if weights is None:
        names = list(PATTERN_FAMILIES)
        probs = np.full(len(names), 1.0 / len(names))
    else:
        names = list(EXTENDED_FAMILIES)
        raw = np.array([weights.get(name, 0.0) for name in names], dtype=float)
        if raw.sum() <= 0:
            raise ValueError("weights must include at least one known family")
        probs = raw / raw.sum()
    family = names[int(rng.choice(len(names), p=probs))]
    return EXTENDED_FAMILIES[family](rng, tech)
