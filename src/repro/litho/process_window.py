"""Process-window analysis.

A pattern's *process window* is the region of exposure conditions
(dose, focus) over which it prints within specification — the
quantitative form of "sensitive to process variations" that defines a
hotspot.  This module measures per-pattern windows:

* :func:`dose_latitude` — the symmetric dose range around nominal where
  the pattern passes, at a fixed focus;
* :func:`process_window_area` — the fraction of a (dose x defocus)
  grid where the pattern passes.

Hotspots are precisely the patterns with small windows, so these
measurements give the benchmark's binary labels a continuous
underlying score.
"""

from __future__ import annotations

import numpy as np

from .epe import LithographySimulator, analyze_contours
from .geometry import Clip
from .raster import rasterize
from .resist import ProcessCorner

__all__ = ["passes_at", "dose_latitude", "process_window_area"]


def passes_at(
    simulator: LithographySimulator,
    clip: Clip,
    corner: ProcessCorner,
    epe_tolerance_nm: float | None = None,
) -> bool:
    """Does ``clip`` print within spec at one exposure condition?"""
    tolerance = (epe_tolerance_nm if epe_tolerance_nm is not None
                 else simulator.epe_tolerance_nm)
    pixel_nm = clip.size / simulator.resolution_px
    mask = rasterize(clip, simulator.resolution_px, mode="area")
    target = rasterize(clip, simulator.resolution_px, mode="binary").astype(bool)
    printed = simulator.simulate_corner(mask, pixel_nm, corner)
    report = analyze_contours(target, printed, pixel_nm)
    return not report.is_hotspot(tolerance)


def dose_latitude(
    simulator: LithographySimulator,
    clip: Clip,
    defocus_broadening: float = 1.0,
    max_latitude: float = 0.25,
    resolution: float = 0.02,
) -> float:
    """Largest symmetric dose deviation the pattern tolerates.

    Scans outward from the nominal dose in ``resolution`` steps (up to
    ``max_latitude``); returns the last deviation at which the pattern
    still passed at *both* the over- and under-dose points.  A pattern
    that already fails at nominal has zero latitude.
    """
    if not passes_at(simulator, clip,
                     ProcessCorner(1.0, defocus_broadening)):
        return 0.0
    latitude = 0.0
    steps = int(round(max_latitude / resolution))
    for i in range(1, steps + 1):
        deviation = i * resolution
        over = ProcessCorner(1.0 + deviation, defocus_broadening)
        under = ProcessCorner(1.0 - deviation, defocus_broadening)
        if not (passes_at(simulator, clip, over)
                and passes_at(simulator, clip, under)):
            break
        latitude = deviation
    return latitude


def process_window_area(
    simulator: LithographySimulator,
    clip: Clip,
    dose_range: tuple[float, float] = (0.88, 1.12),
    defocus_range: tuple[float, float] = (1.0, 1.3),
    grid: int = 5,
) -> float:
    """Fraction of a (dose x defocus) grid where the pattern passes.

    A coarse but monotone window metric: robust patterns approach 1.0,
    marginal ones fall toward 0.  ``grid`` points per axis.
    """
    if grid < 2:
        raise ValueError(f"grid must be >= 2, got {grid}")
    doses = np.linspace(*dose_range, grid)
    defoci = np.linspace(*defocus_range, grid)
    passed = 0
    for dose in doses:
        for defocus in defoci:
            corner = ProcessCorner(float(dose), float(defocus))
            passed += passes_at(simulator, clip, corner)
    return passed / (grid * grid)
