"""Rasterisation of layout clips to images.

Two modes:

* ``"area"`` — each pixel holds its covered-area fraction in [0, 1];
  used as the mask transmission function for lithography simulation.
* ``"binary"`` — 0/1 occupancy (area fraction > 0.5); the down-sampled
  binary images the paper feeds to the network (Section 3.4.1).
"""

from __future__ import annotations

import numpy as np

from .geometry import Clip, Rect

__all__ = ["rasterize", "coverage_1d"]


def coverage_1d(lo: float, hi: float, pixels: int, scale: float) -> np.ndarray:
    """Covered fraction of each pixel by the 1-D interval [lo, hi).

    ``scale`` is nanometres per pixel.  The result has length
    ``pixels``; entries are in [0, 1].
    """
    edges = np.arange(pixels + 1) * scale
    left = np.clip(lo, edges[:-1], edges[1:])
    right = np.clip(hi, edges[:-1], edges[1:])
    return np.maximum(right - left, 0.0) / scale


def _rect_coverage(rect: Rect, pixels: int, scale: float) -> np.ndarray:
    """Per-pixel coverage of one rectangle (outer product of 1-D runs)."""
    cov_x = coverage_1d(rect.x0, rect.x1, pixels, scale)
    cov_y = coverage_1d(rect.y0, rect.y1, pixels, scale)
    return np.outer(cov_y, cov_x)  # rows are y


def rasterize(clip: Clip, pixels: int, mode: str = "area") -> np.ndarray:
    """Rasterise ``clip`` onto a ``pixels x pixels`` grid.

    Overlapping rectangles are ORed: per-pixel coverage is accumulated
    and clamped to 1 (exact for disjoint geometry; a tight upper bound
    for overlaps, which the pattern generators keep rare).

    Returns ``float64`` coverage in ``"area"`` mode, ``float64`` 0/1 in
    ``"binary"`` mode.  Row 0 is the bottom of the clip (y increases
    with row index).
    """
    if mode not in ("area", "binary"):
        raise ValueError(f"mode must be 'area' or 'binary', got {mode!r}")
    scale = clip.size / pixels
    image = np.zeros((pixels, pixels))
    for rect in clip.rects:
        # restrict the outer-product update to the rectangle's pixel span
        px0 = max(int(rect.x0 / scale), 0)
        px1 = min(int(np.ceil(rect.x1 / scale)), pixels)
        py0 = max(int(rect.y0 / scale), 0)
        py1 = min(int(np.ceil(rect.y1 / scale)), pixels)
        if px1 <= px0 or py1 <= py0:
            continue
        cov_x = coverage_1d(rect.x0, rect.x1, pixels, scale)[px0:px1]
        cov_y = coverage_1d(rect.y0, rect.y1, pixels, scale)[py0:py1]
        image[py0:py1, px0:px1] += np.outer(cov_y, cov_x)
    np.clip(image, 0.0, 1.0, out=image)
    if mode == "binary":
        return (image > 0.5).astype(np.float64)
    return image
