"""Rasterisation of layout clips to images.

Two modes:

* ``"area"`` — each pixel holds its covered-area fraction in [0, 1];
  used as the mask transmission function for lithography simulation.
* ``"binary"`` — 0/1 occupancy (area fraction > 0.5); the down-sampled
  binary images the paper feeds to the network (Section 3.4.1).
"""

from __future__ import annotations

import numpy as np

from .geometry import Clip, Rect

__all__ = ["rasterize", "rasterize_plane", "rasterize_region", "coverage_1d"]


def coverage_1d(lo: float, hi: float, pixels: int, scale: float) -> np.ndarray:
    """Covered fraction of each pixel by the 1-D interval [lo, hi).

    ``scale`` is nanometres per pixel.  The result has length
    ``pixels``; entries are in [0, 1].
    """
    edges = np.arange(pixels + 1) * scale
    left = np.clip(lo, edges[:-1], edges[1:])
    right = np.clip(hi, edges[:-1], edges[1:])
    return np.maximum(right - left, 0.0) / scale


def _coverage_span(
    lo: float, hi: float, px0: int, px1: int, scale: float
) -> np.ndarray:
    """:func:`coverage_1d` restricted to pixels ``[px0, px1)``.

    Computes exactly the values ``coverage_1d(lo, hi, ...)[px0:px1]``
    (each pixel edge is the same ``j * scale`` product) without
    allocating the full-width arrays — the point of the restriction for
    full-layout planes, where a rectangle spans a tiny fraction of the
    row.
    """
    edges = np.arange(px0, px1 + 1) * scale
    left = np.clip(lo, edges[:-1], edges[1:])
    right = np.clip(hi, edges[:-1], edges[1:])
    return np.maximum(right - left, 0.0) / scale


def _rect_coverage(rect: Rect, pixels: int, scale: float) -> np.ndarray:
    """Per-pixel coverage of one rectangle (outer product of 1-D runs)."""
    cov_x = coverage_1d(rect.x0, rect.x1, pixels, scale)
    cov_y = coverage_1d(rect.y0, rect.y1, pixels, scale)
    return np.outer(cov_y, cov_x)  # rows are y


def _accumulate_rects(image: np.ndarray, rects, scale: float) -> None:
    """Add every rectangle's per-pixel coverage into ``image`` in order.

    The shared core of :func:`rasterize` and :func:`rasterize_plane`:
    both walk rectangles in insertion order and add identical coverage
    values per pixel, which is what makes a plane raster's window slice
    bit-identical to rasterizing the extracted window (the per-pixel
    float additions happen in the same order with the same operands).
    """
    pixels_y, pixels_x = image.shape
    for rect in rects:
        # restrict the outer-product update to the rectangle's pixel span
        px0 = max(int(rect.x0 / scale), 0)
        px1 = min(int(np.ceil(rect.x1 / scale)), pixels_x)
        py0 = max(int(rect.y0 / scale), 0)
        py1 = min(int(np.ceil(rect.y1 / scale)), pixels_y)
        if px1 <= px0 or py1 <= py0:
            continue
        cov_x = _coverage_span(rect.x0, rect.x1, px0, px1, scale)
        cov_y = _coverage_span(rect.y0, rect.y1, py0, py1, scale)
        image[py0:py1, px0:px1] += np.outer(cov_y, cov_x)


def _finish(image: np.ndarray, mode: str) -> np.ndarray:
    """Clamp accumulated coverage and apply the output mode."""
    np.clip(image, 0.0, 1.0, out=image)
    if mode == "binary":
        return (image > 0.5).astype(np.float64)
    return image


def rasterize(clip: Clip, pixels: int, mode: str = "area") -> np.ndarray:
    """Rasterise ``clip`` onto a ``pixels x pixels`` grid.

    Overlapping rectangles are ORed: per-pixel coverage is accumulated
    and clamped to 1 (exact for disjoint geometry; a tight upper bound
    for overlaps, which the pattern generators keep rare).

    Returns ``float64`` coverage in ``"area"`` mode, ``float64`` 0/1 in
    ``"binary"`` mode.  Row 0 is the bottom of the clip (y increases
    with row index).
    """
    if mode not in ("area", "binary"):
        raise ValueError(f"mode must be 'area' or 'binary', got {mode!r}")
    scale = clip.size / pixels
    image = np.zeros((pixels, pixels))
    _accumulate_rects(image, clip.rects, scale)
    return _finish(image, mode)


def rasterize_plane(layout: Clip, scale: float, mode: str = "area") -> np.ndarray:
    """Rasterise a full layout once at a fixed ``scale`` (nm per pixel).

    The plane raster amortizes a sliding-window scan: windows whose
    origins fall on pixel boundaries are plain array views of the
    returned plane.  When ``scale`` is a positive integer dividing
    ``layout.size`` and the window origins (the geometry the serving
    layer checks before taking this path), each aligned
    ``pixels x pixels`` slice is **bit-identical** to
    ``rasterize(extract_window(layout, x, y, window), pixels, mode)``:
    rectangle clipping at window borders lands exactly on pixel edges,
    per-pixel coverage terms are the same exact-integer differences
    divided by the same ``scale``, and rectangles accumulate in the
    same order.

    ``layout.size / scale`` must be a whole number of pixels.
    """
    if mode not in ("area", "binary"):
        raise ValueError(f"mode must be 'area' or 'binary', got {mode!r}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    pixels = round(layout.size / scale)
    if pixels * scale != layout.size:
        raise ValueError(
            f"scale {scale} does not divide layout size {layout.size}"
        )
    image = np.zeros((pixels, pixels))
    _accumulate_rects(image, layout.rects, scale)
    return _finish(image, mode)


def rasterize_region(
    rects, region: Rect, scale: float, mode: str = "area"
) -> np.ndarray:
    """Rasterise one rectangular sub-region of a layout.

    ``rects`` is an iterable of layout rectangles *in insertion order*
    (a superset containing every rectangle that overlaps ``region`` is
    fine — rectangles outside contribute exactly ``+0.0`` per pixel,
    which never changes a float bit).  ``region`` is the axis-aligned
    nm window to rasterise; its four coordinates must be whole multiples
    of ``scale`` so that clipping at the region border lands exactly on
    pixel edges.

    **Bit-identity contract** (the streaming scan depends on it): when
    ``scale`` is a positive integer, the returned ``(h, w)`` image is
    bit-identical to the matching slice of the monolithic
    :func:`rasterize_plane` raster of the whole layout::

        rasterize_plane(layout, scale, mode)[region.y0 // scale :
                                             region.y1 // scale,
                                             region.x0 // scale :
                                             region.x1 // scale]

    Clipping a rectangle to a pixel-aligned region does not change its
    per-pixel coverage inside the region (the clipped bound is outside
    every interior pixel's span), shifting to region-local coordinates
    subtracts the same exact integers from rectangle bounds and pixel
    edges, and rectangles accumulate in the same order — so every float
    operation sees the same operands in the same order as the plane
    raster.
    """
    if mode not in ("area", "binary"):
        raise ValueError(f"mode must be 'area' or 'binary', got {mode!r}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    for name, value in (("x0", region.x0), ("y0", region.y0),
                        ("x1", region.x1), ("y1", region.y1)):
        steps = round(value / scale)
        if steps * scale != value:
            raise ValueError(
                f"region.{name} = {value} is not a multiple of scale {scale}"
            )
    width = round((region.x1 - region.x0) / scale)
    height = round((region.y1 - region.y0) / scale)
    local = []
    for rect in rects:
        part = rect.intersection(region)
        if part is not None:
            local.append(part.shifted(-region.x0, -region.y0))
    image = np.zeros((height, width))
    _accumulate_rects(image, local, scale)
    return _finish(image, mode)
