"""Resist model and process corners.

A constant-threshold resist (CTR): material prints wherever the aerial
intensity exceeds a dose-scaled threshold.  Process variation — the
physical origin of hotspots — is modelled as a set of (dose, defocus)
corners around the nominal condition; a pattern that fails at any
corner of the process window is a candidate hotspot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProcessCorner", "nominal_corner", "default_process_window",
           "print_contour"]


@dataclass(frozen=True)
class ProcessCorner:
    """One exposure condition.

    ``dose`` scales the delivered intensity (1.0 = nominal);
    ``defocus_broadening`` widens the optical kernels (1.0 = best
    focus).
    """

    dose: float = 1.0
    defocus_broadening: float = 1.0

    def __post_init__(self) -> None:
        if self.dose <= 0 or self.defocus_broadening <= 0:
            raise ValueError(f"invalid process corner {self}")


def nominal_corner() -> ProcessCorner:
    """The nominal exposure condition."""
    return ProcessCorner(1.0, 1.0)


def default_process_window(
    dose_latitude: float = 0.06, defocus: float = 1.18
) -> list[ProcessCorner]:
    """The standard corner set: nominal plus the two worst-case pairings.

    ``dose_latitude`` is the fractional over/under exposure; ``defocus``
    the kernel broadening at the focus corner.  Over-exposure at best
    focus grows features (bridging); under-exposure at defocus shrinks
    them (necking, pull-back, vanishing vias) — the two extremes of the
    process window.
    """
    return [
        nominal_corner(),
        ProcessCorner(1.0 + dose_latitude, 1.0),
        ProcessCorner(1.0 - dose_latitude, defocus),
    ]


def print_contour(
    aerial: np.ndarray, threshold: float = 0.35, dose: float = 1.0
) -> np.ndarray:
    """Constant-threshold resist: boolean printed image.

    ``threshold`` is a fraction of the clear-field intensity; ``dose``
    scales the aerial image (over-exposure grows printed features,
    under-exposure shrinks them).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    return (aerial * dose) >= threshold
