"""Classical machine-learning substrate for the baseline detectors."""

from .adaboost import AdaBoost
from .decision_tree import DecisionTree
from .online import OnlineLogisticClassifier
from .svm import KernelSVM, LinearSVM, polynomial_kernel, rbf_kernel

__all__ = [
    "AdaBoost",
    "DecisionTree",
    "OnlineLogisticClassifier",
    "KernelSVM",
    "LinearSVM",
    "polynomial_kernel",
    "rbf_kernel",
]
