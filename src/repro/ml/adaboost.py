"""Discrete AdaBoost over decision trees (the SPIE'15 baseline core).

Matsunawa et al. detect hotspots with an AdaBoost classifier over
simplified (density) features.  This is the classic discrete AdaBoost:
each round fits a weighted weak tree, and misclassified samples are
up-weighted for the next round.  Decision scores are the usual signed
weighted vote, which also provides a tunable decision threshold.
"""

from __future__ import annotations

import numpy as np

from .decision_tree import DecisionTree

__all__ = ["AdaBoost"]


class AdaBoost:
    """Binary AdaBoost ensemble of depth-limited CART trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    max_depth:
        Depth of each weak tree (1 = stumps).
    learning_rate:
        Shrinkage on the per-round vote weights.
    class_weight:
        ``"balanced"`` starts boosting from weights that equalise the
        total class mass — the standard imbalance handle for boosted
        hotspot detectors; ``None`` starts uniform.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 2,
        learning_rate: float = 1.0,
        class_weight: str | None = None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced'")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.class_weight = class_weight
        self.trees_: list[DecisionTree] = []
        self.alphas_: list[float] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "AdaBoost":
        """Boost on binary (0/1) labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).astype(int)
        n = labels.shape[0]
        signs = 2.0 * labels - 1.0  # {0,1} -> {-1,+1}
        if self.class_weight == "balanced":
            n_pos = max(int((labels == 1).sum()), 1)
            n_neg = max(int((labels == 0).sum()), 1)
            weights = np.where(labels == 1, 0.5 / n_pos, 0.5 / n_neg)
        else:
            weights = np.full(n, 1.0 / n)
        self.trees_, self.alphas_ = [], []
        for _ in range(self.n_estimators):
            tree = DecisionTree(max_depth=self.max_depth, min_samples_leaf=1)
            tree.fit(features, labels, sample_weight=weights)
            pred_signs = 2.0 * tree.predict(features) - 1.0
            miss = pred_signs != signs
            error = float(weights[miss].sum())
            if error >= 0.5:
                # weak learner no better than chance: stop boosting
                break
            error = max(error, 1e-12)
            alpha = self.learning_rate * 0.5 * np.log((1.0 - error) / error)
            self.trees_.append(tree)
            self.alphas_.append(alpha)
            weights = weights * np.exp(-alpha * signs * pred_signs)
            weights /= weights.sum()
            if error == 1e-12:
                break  # perfect weak learner; further rounds are redundant
        if not self.trees_:
            # degenerate data: keep one unweighted tree as fallback
            tree = DecisionTree(max_depth=self.max_depth)
            tree.fit(features, labels)
            self.trees_ = [tree]
            self.alphas_ = [1.0]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed vote score; positive means hotspot."""
        if not self.trees_:
            raise RuntimeError("decision_function() called before fit()")
        features = np.asarray(features, dtype=np.float64)
        score = np.zeros(features.shape[0])
        for tree, alpha in zip(self.trees_, self.alphas_):
            score += alpha * (2.0 * tree.predict(features) - 1.0)
        return score

    def predict(self, features: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Class prediction (1 = hotspot) at the given score threshold."""
        return (self.decision_function(features) > threshold).astype(np.int64)
