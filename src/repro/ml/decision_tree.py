"""CART decision trees (gini impurity, axis-aligned splits).

The weak learner of the SPIE'15 AdaBoost baseline.  Supports
per-sample weights (required by boosting) and depth limiting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    prediction: int = 0
    confidence: float = 0.0  # weighted majority fraction at the leaf
    left: "_Node | None" = None
    right: "_Node | None" = None


def _weighted_gini(weights_pos: float, weights_neg: float) -> float:
    """Gini impurity of a weighted binary node."""
    total = weights_pos + weights_neg
    if total <= 0:
        return 0.0
    p = weights_pos / total
    return 2.0 * p * (1.0 - p)


class DecisionTree:
    """Binary CART classifier.

    Parameters
    ----------
    max_depth:
        Depth limit; ``max_depth=1`` is a decision stump.
    min_samples_leaf:
        Minimum (unweighted) samples allowed in a leaf.
    n_thresholds:
        Candidate thresholds per feature: midpoints of that many
        quantile cuts (keeps fitting fast on large feature matrices).
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        n_thresholds: int = 16,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_thresholds = n_thresholds
        self._root: _Node | None = None

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTree":
        """Grow the tree on ``(features, labels)`` with optional weights."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).astype(int)
        if sample_weight is None:
            sample_weight = np.full(labels.shape[0], 1.0 / labels.shape[0])
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            sample_weight = sample_weight / sample_weight.sum()
        self._root = self._grow(features, labels, sample_weight, depth=0)
        return self

    def _leaf(self, labels: np.ndarray, weights: np.ndarray) -> _Node:
        w_pos = weights[labels == 1].sum()
        w_neg = weights[labels == 0].sum()
        total = w_pos + w_neg
        prediction = int(w_pos >= w_neg)
        confidence = (max(w_pos, w_neg) / total) if total > 0 else 0.5
        return _Node(prediction=prediction, confidence=confidence)

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        unique = np.unique(column)
        if unique.size <= 1:
            return np.empty(0)
        if unique.size <= self.n_thresholds:
            return (unique[:-1] + unique[1:]) / 2.0
        quantiles = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
        return np.unique(np.quantile(column, quantiles))

    def _grow(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        depth: int,
    ) -> _Node:
        if (
            depth >= self.max_depth
            or labels.size < 2 * self.min_samples_leaf
            or np.unique(labels).size == 1
        ):
            return self._leaf(labels, weights)
        best = None  # (impurity, feature, threshold, mask)
        for j in range(features.shape[1]):
            column = features[:, j]
            for threshold in self._candidate_thresholds(column):
                mask = column <= threshold
                n_left = int(mask.sum())
                if (
                    n_left < self.min_samples_leaf
                    or labels.size - n_left < self.min_samples_leaf
                ):
                    continue
                w_left = weights[mask]
                w_right = weights[~mask]
                lab_left = labels[mask]
                lab_right = labels[~mask]
                impurity = w_left.sum() * _weighted_gini(
                    w_left[lab_left == 1].sum(), w_left[lab_left == 0].sum()
                ) + w_right.sum() * _weighted_gini(
                    w_right[lab_right == 1].sum(), w_right[lab_right == 0].sum()
                )
                if best is None or impurity < best[0]:
                    best = (impurity, j, threshold, mask)
        if best is None:
            return self._leaf(labels, weights)
        _, feature, threshold, mask = best
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(features[mask], labels[mask], weights[mask], depth + 1)
        node.right = self._grow(
            features[~mask], labels[~mask], weights[~mask], depth + 1
        )
        return node

    # -- prediction --------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class (0/1) per row."""
        if self._root is None:
            raise RuntimeError("predict() called before fit()")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(features.shape[0], dtype=np.int64)
        for i, row in enumerate(features):
            node = self._root
            while node.feature != -1:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out
