"""Online linear learners (the ICCAD'16 baseline core).

Zhang et al. enable *online* hotspot detection: the model ingests
samples one mini-batch at a time (matching a verification flow where
lithography-simulated labels trickle in) and can keep learning during
deployment.  The learner here is logistic regression trained by
streaming SGD with optional class re-weighting — the linear core their
smooth-boosting scheme reduces to — over optimised CCS features.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OnlineLogisticClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class OnlineLogisticClassifier:
    """Streaming logistic regression with L2 regularisation.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    lr:
        SGD step size (decays as ``lr / sqrt(t)`` over updates).
    l2:
        Ridge penalty strength.
    positive_weight:
        Loss weight of hotspot samples — the class-imbalance handle the
        online baseline uses in place of deep biased learning.
    """

    def __init__(
        self,
        n_features: int,
        lr: float = 0.5,
        l2: float = 1e-4,
        positive_weight: float = 1.0,
    ):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        self.lr = lr
        self.l2 = l2
        self.positive_weight = positive_weight
        self._updates = 0

    def partial_fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """One online update from a mini-batch (the streaming interface)."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels).astype(np.float64)
        self._updates += 1
        step = self.lr / np.sqrt(self._updates)
        probs = _sigmoid(features @ self.weights + self.bias)
        sample_w = np.where(labels == 1.0, self.positive_weight, 1.0)
        residual = sample_w * (probs - labels)
        grad_w = features.T @ residual / labels.size + self.l2 * self.weights
        grad_b = residual.mean()
        self.weights -= step * grad_w
        self.bias -= step * grad_b

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 5,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
    ) -> "OnlineLogisticClassifier":
        """Convenience batch training: stream shuffled mini-batches."""
        rng = rng if rng is not None else np.random.default_rng()
        n = labels.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                self.partial_fit(features[idx], labels[idx])
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Hotspot probability per row."""
        features = np.asarray(features, dtype=np.float64)
        return _sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Class prediction (1 = hotspot)."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)
