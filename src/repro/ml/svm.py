"""Support vector machines.

The hotspot literature the paper builds on is SVM-heavy: [8][9] use
SVMs over critical features, [12] (EPIC) combines multiple kernels,
[13] applies unsupervised SVMs.  Two from-scratch trainers:

* :class:`LinearSVM` — Pegasos (primal stochastic sub-gradient) with
  hinge loss and optional class weighting; fast and the right tool for
  the high-dimensional density/CCS features;
* :class:`KernelSVM` — kernelised dual ascent (a simplified SMO that
  optimises one coordinate at a time against its box constraint) with
  RBF or polynomial kernels, for the small-data regimes of the early
  papers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearSVM", "KernelSVM", "rbf_kernel", "polynomial_kernel"]


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian kernel matrix ``exp(-gamma * ||a_i - b_j||^2)``."""
    a2 = (a**2).sum(axis=1)[:, None]
    b2 = (b**2).sum(axis=1)[None, :]
    sq = np.maximum(a2 + b2 - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * sq)


def polynomial_kernel(a: np.ndarray, b: np.ndarray, degree: int = 3,
                      coef0: float = 1.0) -> np.ndarray:
    """Polynomial kernel ``(a . b + coef0) ** degree``."""
    return (a @ b.T + coef0) ** degree


class LinearSVM:
    """Pegasos-trained linear SVM.

    Parameters
    ----------
    lam:
        Regularisation strength (Pegasos' lambda).
    epochs:
        Passes over the data.
    positive_weight:
        Multiplier on the hinge loss of positive samples (class
        imbalance handle).
    """

    def __init__(self, lam: float = 1e-3, epochs: int = 10,
                 positive_weight: float = 1.0):
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        self.lam = lam
        self.epochs = epochs
        self.positive_weight = positive_weight
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray,
            rng: np.random.Generator | None = None) -> "LinearSVM":
        """Train on 0/1 labels (mapped internally to -1/+1)."""
        rng = rng if rng is not None else np.random.default_rng()
        features = np.asarray(features, dtype=np.float64)
        signs = 2.0 * np.asarray(labels).astype(np.float64) - 1.0
        n, d = features.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        step_count = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                step_count += 1
                eta = 1.0 / (self.lam * step_count)
                margin = signs[i] * (features[i] @ self.weights + self.bias)
                # the bias is treated as the weight of an appended
                # constant feature, so it shrinks with the rest — an
                # unregularised bias drifts without bound under Pegasos
                shrink = 1.0 - eta * self.lam
                self.weights *= shrink
                self.bias *= shrink
                if margin < 1.0:
                    weight = (self.positive_weight if signs[i] > 0 else 1.0)
                    self.weights += eta * weight * signs[i] * features[i]
                    self.bias += eta * weight * signs[i]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margin; positive means hotspot."""
        if self.weights is None:
            raise RuntimeError("decision_function() called before fit()")
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict(self, features: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        return (self.decision_function(features) > threshold).astype(np.int64)


class KernelSVM:
    """Kernel SVM trained by cyclic coordinate ascent on the dual.

    A simplified SMO: each pass optimises every dual coefficient
    ``alpha_i`` in closed form against its box constraint ``[0, C_i]``
    while the others are fixed (no pairwise working-set selection —
    adequate for the few-hundred-sample fits of the baselines).
    """

    def __init__(self, c: float = 1.0, kernel: str = "rbf",
                 gamma: float = 1.0, degree: int = 3, passes: int = 10,
                 positive_weight: float = 1.0):
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        if kernel not in ("rbf", "poly"):
            raise ValueError(f"kernel must be 'rbf' or 'poly', got {kernel!r}")
        self.c = c
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.passes = passes
        self.positive_weight = positive_weight
        self._support: np.ndarray | None = None
        self._alpha_signs: np.ndarray | None = None
        self.bias = 0.0

    def _gram(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(a, b, self.gamma)
        return polynomial_kernel(a, b, self.degree)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KernelSVM":
        """Train the detector on the dataset (see class docstring)."""
        features = np.asarray(features, dtype=np.float64)
        signs = 2.0 * np.asarray(labels).astype(np.float64) - 1.0
        n = features.shape[0]
        gram = self._gram(features, features)
        box = np.where(signs > 0, self.c * self.positive_weight, self.c)
        alpha = np.zeros(n)
        # decision (without bias) at every training point
        decision = np.zeros(n)
        for _ in range(self.passes):
            for i in range(n):
                k_ii = gram[i, i]
                if k_ii <= 1e-12:
                    continue
                # closed-form unconstrained optimum for alpha_i
                gradient = 1.0 - signs[i] * decision[i] + alpha[i] * k_ii
                new_alpha = np.clip(gradient / k_ii, 0.0, box[i])
                delta = new_alpha - alpha[i]
                if delta != 0.0:
                    decision += delta * signs[i] * gram[i]
                    alpha[i] = new_alpha
        support = alpha > 1e-10
        self._support = features[support]
        self._alpha_signs = alpha[support] * signs[support]
        # bias from on-margin vectors (0 < alpha < box)
        margin = support & (alpha < box - 1e-10)
        if margin.any():
            self.bias = float(np.mean(signs[margin] - decision[margin]))
        else:
            self.bias = float(np.mean(signs - decision)) if n else 0.0
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed decision score; positive means hotspot."""
        if self._support is None:
            raise RuntimeError("decision_function() called before fit()")
        if self._support.shape[0] == 0:
            return np.full(np.asarray(features).shape[0], self.bias)
        gram = self._gram(np.asarray(features, dtype=np.float64),
                          self._support)
        return gram @ self._alpha_signs + self.bias

    def predict(self, features: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Predicted 0/1 labels (1 = hotspot)."""
        return (self.decision_function(features) > threshold).astype(np.int64)

    @property
    def n_support(self) -> int:
        """Number of support vectors retained after fitting."""
        if self._support is None:
            raise RuntimeError("n_support read before fit()")
        return int(self._support.shape[0])
