"""Model zoo: the paper's binarized residual network and the float
baselines it is compared against."""

from .bnn_resnet import bnn_resnet8, bnn_resnet12, bnn_resnet18, build_bnn_resnet
from .dac17_cnn import dac17_cnn
from .quantized import QuantConvBlock, build_quantized_resnet
from .resnet import FloatConvBlock, build_resnet, resnet12, resnet18
from .summary import LayerInfo, count_network_layers, summarize

__all__ = [
    "bnn_resnet8",
    "bnn_resnet12",
    "bnn_resnet18",
    "build_bnn_resnet",
    "dac17_cnn",
    "QuantConvBlock",
    "build_quantized_resnet",
    "FloatConvBlock",
    "build_resnet",
    "resnet12",
    "resnet18",
    "LayerInfo",
    "count_network_layers",
    "summarize",
]
