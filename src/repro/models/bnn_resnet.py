"""The paper's binarized residual network (Figure 2).

The architecture starts from ResNet-18, replaces every convolution with
a binary convolution block (Figure 3), reduces the depth to 12 layers
and re-balances the filter counts following the rule "the deeper a
layer, the more filters; keep as few filters as possible" (Section 3.1).

Layer accounting follows ResNet convention: the stem convolution, the
two 3x3 convolutions of each residual block's main path, and the final
fully connected layer.  The 1x1 projection convolutions in shortcut
connections (present wherever a block changes the tensor shape) are not
counted, exactly as in the ResNet paper.

* ``bnn_resnet12`` — the paper's network: stem + 5 residual blocks + FC
  = 1 + 10 + 1 = 12 layers.
* ``bnn_resnet8`` / ``bnn_resnet18`` — shallower/deeper variants for the
  depth ablation ("the network is preliminarily set to be with fewer
  than 20 layers").
"""

from __future__ import annotations

import numpy as np

from ..binary.block import BNNConvBlock
from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.layers.container import Sequential
from ..nn.layers.dense import Dense
from ..nn.layers.pooling import GlobalAvgPool2D
from ..nn.layers.residual import ResidualBlock

__all__ = [
    "build_bnn_resnet",
    "bnn_resnet8",
    "bnn_resnet12",
    "bnn_resnet18",
]


def _residual_stage(
    in_channels: int,
    out_channels: int,
    stride: int,
    scaling: str,
    rng: np.random.Generator,
) -> ResidualBlock:
    """One residual block of two 3x3 binary convolution blocks.

    When the block changes shape (stride > 1 or a channel increase) the
    shortcut is a 1x1 binary convolution block projecting the input to
    the output shape, as in Figure 2.
    """
    main = Sequential(
        BNNConvBlock(in_channels, out_channels, 3, stride=stride,
                     scaling=scaling, rng=rng),
        BNNConvBlock(out_channels, out_channels, 3, stride=1,
                     scaling=scaling, rng=rng),
    )
    if stride == 1 and in_channels == out_channels:
        return ResidualBlock(main)
    shortcut = BNNConvBlock(
        in_channels, out_channels, 1, stride=stride, padding=0,
        scaling=scaling, rng=rng,
    )
    return ResidualBlock(main, shortcut)


def build_bnn_resnet(
    channels: tuple[int, ...],
    blocks_per_stage: tuple[int, ...] | None = None,
    in_channels: int = 1,
    num_classes: int = 2,
    scaling: str = "channelwise",
    seed: int | None = None,
    stem_stride: int = 1,
) -> Sequential:
    """Build a binarized residual network.

    Parameters
    ----------
    channels:
        Filter count of each stage; every stage after the first starts
        with a stride-2 down-sampling block.  Filter counts should be
        non-decreasing (the paper's rule).
    blocks_per_stage:
        Residual blocks per stage (default: one each, the paper's
        12-layer layout when 5 stages are given).
    in_channels:
        Input channels (1 for layout clips).
    num_classes:
        Output classes (2: hotspot / non-hotspot).
    scaling:
        Activation scaling mode of every binary convolution.
    seed:
        Seed for weight initialisation.
    stem_stride:
        Stride of the stem convolution; 2 reproduces the ResNet-18-style
        early down-sampling for large inputs.
    """
    if not channels:
        raise ValueError("channels must be non-empty")
    if blocks_per_stage is None:
        blocks_per_stage = (1,) * len(channels)
    if len(blocks_per_stage) != len(channels):
        raise ValueError("blocks_per_stage must match channels in length")
    rng = np.random.default_rng(seed)
    net = Sequential()
    net.append(BNNConvBlock(in_channels, channels[0], 3, stride=stem_stride,
                            scaling=scaling, rng=rng))
    current = channels[0]
    for stage, (width, n_blocks) in enumerate(zip(channels, blocks_per_stage)):
        for block in range(n_blocks):
            stride = 2 if block == 0 else 1
            net.append(_residual_stage(current, width, stride, scaling, rng))
            current = width
    net.append(BatchNorm2D(current))
    net.append(GlobalAvgPool2D())
    net.append(Dense(current, num_classes, rng=rng))
    return net


def bnn_resnet12(
    scaling: str = "channelwise",
    seed: int | None = None,
    base_width: int = 8,
    num_classes: int = 2,
) -> Sequential:
    """The paper's 12-layer network: stem + 5 residual blocks + FC.

    Filter counts double stage by stage from ``base_width``, realising
    "the deeper a layer is, the more filters it contains" with as few
    filters as possible.  With 128x128 inputs the five stride-2 stages
    reduce the map to 4x4 before global average pooling.
    """
    channels = tuple(base_width * (2**i) for i in range(5))
    return build_bnn_resnet(channels, scaling=scaling, seed=seed,
                            num_classes=num_classes)


def bnn_resnet8(
    scaling: str = "channelwise",
    seed: int | None = None,
    base_width: int = 16,
    num_classes: int = 2,
) -> Sequential:
    """8-layer variant (stem + 3 residual blocks + FC) for the depth ablation."""
    channels = tuple(base_width * (2**i) for i in range(3))
    return build_bnn_resnet(channels, scaling=scaling, seed=seed,
                            num_classes=num_classes)


def bnn_resnet18(
    scaling: str = "channelwise",
    seed: int | None = None,
    base_width: int = 8,
    num_classes: int = 2,
) -> Sequential:
    """18-layer variant (stem + 4 stages x 2 blocks + FC), the binarized
    form of the ResNet-18 starting point of Section 3.1."""
    channels = tuple(base_width * (2**i) for i in range(4))
    return build_bnn_resnet(
        channels, blocks_per_stage=(2, 2, 2, 2), scaling=scaling, seed=seed,
        num_classes=num_classes,
    )
