"""The DAC'17 baseline CNN (Yang et al., "Layout Hotspot Detection with
Feature Tensor Generation and Deep Biased Learning").

A full-precision convolutional network operating on the DCT *feature
tensor* (see :mod:`repro.features.dct`): each layout clip becomes a
``(coeffs, blocks, blocks)`` tensor of truncated block-DCT
coefficients.  The reference architecture uses two convolution stages
(each two 3x3 conv+ReLU layers followed by 2x2 max-pooling) and two
fully connected layers; filter counts here are parameterised so the
model scales to the synthetic benchmark sizes.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.activations import ReLU
from ..nn.layers.container import Sequential
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.pooling import MaxPool2D
from ..nn.layers.shape import Flatten

__all__ = ["dac17_cnn"]


def dac17_cnn(
    in_channels: int,
    spatial_size: int,
    stage_widths: tuple[int, int] = (16, 32),
    hidden: int = 64,
    num_classes: int = 2,
    seed: int | None = None,
) -> Sequential:
    """Build the DAC'17-style CNN.

    Parameters
    ----------
    in_channels:
        Number of retained DCT coefficients per block.
    spatial_size:
        Side of the block grid (the feature tensor is
        ``in_channels x spatial_size x spatial_size``); must be
        divisible by 4 (two 2x2 poolings).
    stage_widths:
        Filter counts of the two convolution stages.
    hidden:
        Width of the penultimate fully connected layer.
    """
    if spatial_size % 4 != 0:
        raise ValueError(f"spatial_size must be divisible by 4, got {spatial_size}")
    rng = np.random.default_rng(seed)
    w1, w2 = stage_widths
    final_side = spatial_size // 4
    return Sequential(
        Conv2D(in_channels, w1, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(w1, w1, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Conv2D(w1, w2, 3, padding=1, rng=rng),
        ReLU(),
        Conv2D(w2, w2, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(w2 * final_side * final_side, hidden, rng=rng),
        ReLU(),
        Dense(hidden, num_classes, rng=rng),
    )
