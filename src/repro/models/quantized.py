"""Quantized residual networks for the precision-ladder experiments.

The paper's background (Section 2.2) situates binarization on a
spectrum of quantization schemes — 8-bit fixed point, ternary weights,
1-bit.  These builders instantiate the same topology as
:func:`repro.models.resnet.build_resnet` with quantized convolutions so
the ladder can be measured end to end on the hotspot task.
"""

from __future__ import annotations

import numpy as np

from ..binary.fixed_point import Int8Conv2D
from ..binary.ternary import TernaryConv2D
from ..nn.layers.activations import ReLU
from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.layers.container import Sequential
from ..nn.layers.dense import Dense
from ..nn.layers.pooling import GlobalAvgPool2D
from ..nn.layers.residual import ResidualBlock
from ..nn.module import Module

__all__ = ["QuantConvBlock", "build_quantized_resnet"]

_CONV_CLASSES = {"int8": Int8Conv2D, "ternary": TernaryConv2D}


class QuantConvBlock(Module):
    """Pre-activation block with a quantized convolution:
    BN -> ReLU -> QuantConv (the float twin's structure, lower precision)."""

    def __init__(
        self,
        conv_cls,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if padding is None:
            padding = kernel_size // 2
        self.bn = BatchNorm2D(in_channels)
        self.act = ReLU()
        self.conv = conv_cls(
            in_channels, out_channels, kernel_size,
            stride=stride, padding=padding, rng=rng,
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        out = self.bn.forward(x, training)
        out = self.act.forward(out, training)
        return self.conv.forward(out, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        return self.bn.backward(self.act.backward(self.conv.backward(grad)))


def _stage(conv_cls, in_channels: int, out_channels: int, stride: int,
           rng: np.random.Generator) -> ResidualBlock:
    main = Sequential(
        QuantConvBlock(conv_cls, in_channels, out_channels, 3,
                       stride=stride, rng=rng),
        QuantConvBlock(conv_cls, out_channels, out_channels, 3,
                       stride=1, rng=rng),
    )
    if stride == 1 and in_channels == out_channels:
        return ResidualBlock(main)
    shortcut = QuantConvBlock(conv_cls, in_channels, out_channels, 1,
                              stride=stride, padding=0, rng=rng)
    return ResidualBlock(main, shortcut)


def build_quantized_resnet(
    precision: str,
    channels: tuple[int, ...],
    in_channels: int = 1,
    num_classes: int = 2,
    seed: int | None = None,
    stem_stride: int = 1,
) -> Sequential:
    """Residual network with ``"int8"`` or ``"ternary"`` convolutions.

    Same topology rules as the float and binary builders: one residual
    block per stage, stride-2 at each stage entry, 1x1 projection
    shortcuts at shape changes, global average pooling and a float
    dense head.
    """
    if precision not in _CONV_CLASSES:
        raise ValueError(
            f"precision must be one of {sorted(_CONV_CLASSES)}, got {precision!r}"
        )
    if not channels:
        raise ValueError("channels must be non-empty")
    conv_cls = _CONV_CLASSES[precision]
    rng = np.random.default_rng(seed)
    net = Sequential()
    net.append(QuantConvBlock(conv_cls, in_channels, channels[0], 3,
                              stride=stem_stride, rng=rng))
    current = channels[0]
    for width in channels:
        net.append(_stage(conv_cls, current, width, 2, rng))
        current = width
    net.append(BatchNorm2D(current))
    net.append(GlobalAvgPool2D())
    net.append(Dense(current, num_classes, rng=rng))
    return net
