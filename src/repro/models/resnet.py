"""Full-precision residual networks.

The float twin of :mod:`repro.models.bnn_resnet`: identical topology
with pre-activation float blocks (BN -> ReLU -> Conv) in place of the
binarized blocks (BN -> Binarize -> BinaryConv).  Used as the
"real-valued neural network" side of Figure 1 and as the ResNet-18
starting point of Section 3.1.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.activations import ReLU
from ..nn.layers.batchnorm import BatchNorm2D
from ..nn.layers.container import Sequential
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.pooling import GlobalAvgPool2D
from ..nn.layers.residual import ResidualBlock
from ..nn.module import Module

__all__ = ["FloatConvBlock", "build_resnet", "resnet12", "resnet18"]


class FloatConvBlock(Module):
    """Pre-activation float block: BN -> ReLU -> Conv (no conv bias)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if padding is None:
            padding = kernel_size // 2
        self.bn = BatchNorm2D(in_channels)
        self.act = ReLU()
        self.conv = Conv2D(
            in_channels, out_channels, kernel_size,
            stride=stride, padding=padding, bias=False, rng=rng,
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        out = self.bn.forward(x, training)
        out = self.act.forward(out, training)
        return self.conv.forward(out, training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        return self.bn.backward(self.act.backward(self.conv.backward(grad)))


def _residual_stage(
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> ResidualBlock:
    """Pre-activation float residual block mirroring the BNN layout."""
    main = Sequential(
        FloatConvBlock(in_channels, out_channels, 3, stride=stride, rng=rng),
        FloatConvBlock(out_channels, out_channels, 3, stride=1, rng=rng),
    )
    if stride == 1 and in_channels == out_channels:
        return ResidualBlock(main)
    shortcut = FloatConvBlock(
        in_channels, out_channels, 1, stride=stride, padding=0, rng=rng
    )
    return ResidualBlock(main, shortcut)


def build_resnet(
    channels: tuple[int, ...],
    blocks_per_stage: tuple[int, ...] | None = None,
    in_channels: int = 1,
    num_classes: int = 2,
    seed: int | None = None,
    stem_stride: int = 1,
) -> Sequential:
    """Build a float residual network with the same topology rules as
    :func:`repro.models.bnn_resnet.build_bnn_resnet`."""
    if not channels:
        raise ValueError("channels must be non-empty")
    if blocks_per_stage is None:
        blocks_per_stage = (1,) * len(channels)
    if len(blocks_per_stage) != len(channels):
        raise ValueError("blocks_per_stage must match channels in length")
    rng = np.random.default_rng(seed)
    net = Sequential()
    net.append(FloatConvBlock(in_channels, channels[0], 3, stride=stem_stride,
                              rng=rng))
    current = channels[0]
    for width, n_blocks in zip(channels, blocks_per_stage):
        for block in range(n_blocks):
            stride = 2 if block == 0 else 1
            net.append(_residual_stage(current, width, stride, rng))
            current = width
    net.append(BatchNorm2D(current))
    net.append(GlobalAvgPool2D())
    net.append(Dense(current, num_classes, rng=rng))
    return net


def resnet12(seed: int | None = None, base_width: int = 8,
             num_classes: int = 2) -> Sequential:
    """Float twin of the paper's 12-layer network."""
    channels = tuple(base_width * (2**i) for i in range(5))
    return build_resnet(channels, seed=seed, num_classes=num_classes)


def resnet18(seed: int | None = None, base_width: int = 8,
             num_classes: int = 2) -> Sequential:
    """Float 18-layer network (stem + 4 stages x 2 blocks + FC)."""
    channels = tuple(base_width * (2**i) for i in range(4))
    return build_resnet(channels, blocks_per_stage=(2, 2, 2, 2), seed=seed,
                        num_classes=num_classes)
