"""Model introspection: layer counting and architecture summaries.

Used by the Figure 2 benchmark to audit that the constructed network
matches the paper's description (12 layers, filter counts non-decreasing
with depth, 1x1 projection shortcuts only at shape changes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binary.binary_conv import BinaryConv2D
from ..binary.block import BNNConvBlock
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from ..nn.layers.residual import ResidualBlock
from ..nn.module import Module
from .resnet import FloatConvBlock

__all__ = ["LayerInfo", "count_network_layers", "summarize"]


@dataclass
class LayerInfo:
    """One counted layer of a network summary."""

    kind: str          # "conv", "binary_conv" or "dense"
    shape: tuple       # weight shape
    params: int        # parameter count
    shortcut: bool     # True for 1x1 projection shortcuts


def _iter_layers(module: Module, in_shortcut: bool):
    """Yield ``(layer, in_shortcut)`` for every conv/dense layer."""
    if isinstance(module, Dense):
        yield module, in_shortcut
        return
    if isinstance(module, BNNConvBlock):
        yield module.conv, in_shortcut
        return
    if isinstance(module, FloatConvBlock):
        yield module.conv, in_shortcut
        return
    if isinstance(module, (BinaryConv2D, Conv2D)):
        yield module, in_shortcut
        return
    if isinstance(module, ResidualBlock):
        yield from _iter_layers(module.main, in_shortcut)
        if module.shortcut is not None:
            yield from _iter_layers(module.shortcut, True)
        return
    for child in module.children():
        yield from _iter_layers(child, in_shortcut)


def summarize(model: Module) -> list[LayerInfo]:
    """List every convolution / dense layer with its role and size."""
    infos = []
    for layer, in_shortcut in _iter_layers(model, False):
        if isinstance(layer, BinaryConv2D):
            kind = "binary_conv"
        elif isinstance(layer, Conv2D):
            kind = "conv"
        else:
            kind = "dense"
        params = sum(p.size for p in layer.parameters())
        infos.append(
            LayerInfo(kind=kind, shape=tuple(layer.weight.shape),
                      params=params, shortcut=in_shortcut)
        )
    return infos


def count_network_layers(model: Module) -> int:
    """Count layers by ResNet convention: main-path convolutions plus
    fully connected layers; 1x1 shortcut projections are excluded."""
    return sum(1 for info in summarize(model) if not info.shortcut)
