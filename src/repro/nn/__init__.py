"""A from-scratch NumPy deep-learning framework.

This subpackage is the execution substrate for the paper's binarized
residual network: explicit layer-wise backpropagation, im2col
convolutions, batch normalisation, the NAdam optimizer and the
plateau-decay learning-rate schedule described in Section 3.4 of the
paper.
"""

from . import functional, gradcheck, init
from .callbacks import BestWeightsKeeper, EarlyStopping
from .data import (
    ArrayDataset,
    DataLoader,
    RandomFlip,
    balanced_weights,
    capture_rng_state,
    restore_rng_state,
    train_val_split,
)
from .layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    HardTanh,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
    SignSTE,
    sign,
)
from .losses import SoftmaxCrossEntropy, WeightedCrossEntropy, log_softmax, softmax
from .module import Module, Parameter
from .optim import SGD, Adam, Momentum, NAG, NAdam, Optimizer
from .schedulers import LinearWarmup, ReduceLROnPlateau, StepDecay
from .serialization import (
    CheckpointError,
    checkpoint_path,
    load_meta,
    load_model,
    save_model,
    state_checksum,
)
from .trainer import (
    GradientExplosionError,
    History,
    Trainer,
    evaluate_loss,
    predict_logits,
)

__all__ = [
    "functional",
    "gradcheck",
    "init",
    "ArrayDataset",
    "BestWeightsKeeper",
    "DataLoader",
    "EarlyStopping",
    "RandomFlip",
    "balanced_weights",
    "capture_rng_state",
    "restore_rng_state",
    "train_val_split",
    "AvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "HardTanh",
    "MaxPool2D",
    "ReLU",
    "ResidualBlock",
    "Sequential",
    "SignSTE",
    "sign",
    "SoftmaxCrossEntropy",
    "WeightedCrossEntropy",
    "log_softmax",
    "softmax",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "Momentum",
    "NAG",
    "NAdam",
    "Optimizer",
    "LinearWarmup",
    "ReduceLROnPlateau",
    "StepDecay",
    "CheckpointError",
    "checkpoint_path",
    "load_meta",
    "load_model",
    "save_model",
    "state_checksum",
    "GradientExplosionError",
    "History",
    "Trainer",
    "evaluate_loss",
    "predict_logits",
]
