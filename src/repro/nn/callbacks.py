"""Training callbacks: early stopping and checkpointing.

The paper trains for a fixed schedule; these callbacks support the
longer exploratory runs of the ablation experiments (stop when the
validation loss stagnates, keep the best weights seen).
"""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["EarlyStopping", "BestWeightsKeeper"]


class EarlyStopping:
    """Stop training when the validation loss stops improving.

    Parameters
    ----------
    patience:
        Non-improving epochs tolerated before requesting a stop.
    min_delta:
        Absolute improvement required to reset the counter.
    """

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best = float("inf")
        self.num_bad_epochs = 0

    def step(self, val_loss: float) -> bool:
        """Record an epoch's validation loss; return True to stop."""
        if val_loss < self.best - self.min_delta:
            self.best = val_loss
            self.num_bad_epochs = 0
            return False
        self.num_bad_epochs += 1
        return self.num_bad_epochs >= self.patience


class BestWeightsKeeper:
    """Snapshot the model whenever validation loss improves; restore on
    demand (poor man's checkpointing, in memory)."""

    def __init__(self, model: Module):
        self.model = model
        self.best = float("inf")
        self._state: dict[str, np.ndarray] | None = None

    def step(self, val_loss: float) -> bool:
        """Record an epoch; snapshot and return True when improved."""
        if val_loss < self.best:
            self.best = val_loss
            self._state = self.model.state_dict()
            return True
        return False

    def restore(self) -> None:
        """Load the best snapshot back into the model."""
        if self._state is None:
            raise RuntimeError("restore() called before any snapshot")
        self.model.load_state_dict(self._state)
