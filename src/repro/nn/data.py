"""Datasets, mini-batch loading and augmentation.

The paper trains with mini-batch gradient descent (batch size 128) and
augments with random horizontal and vertical flips only — random
cropping is deliberately *not* used because a hotspot may sit anywhere
in the clip (Section 3.4.1).
"""

from __future__ import annotations

import json
from typing import Iterator

import numpy as np

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "RandomFlip",
    "balanced_weights",
    "capture_rng_state",
    "restore_rng_state",
    "train_val_split",
]


def capture_rng_state(rng: np.random.Generator) -> str:
    """Serialize a generator's ``bit_generator.state`` to a JSON string.

    The state dict carries arbitrary-precision integers (PCG64 uses
    128-bit words), which JSON represents exactly — so the string
    round-trips through ``np.savez`` (as a 0-d unicode array) and back
    into a bit-identical generator via :func:`restore_rng_state`.
    """
    return json.dumps(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: str) -> None:
    """Restore a state captured with :func:`capture_rng_state` in place."""
    rng.bit_generator.state = json.loads(state)


def balanced_weights(labels: np.ndarray, positive_mass: float = 0.5) -> np.ndarray:
    """Per-sample weights apportioning class mass for resampling.

    Used for class-rebalanced mini-batch sampling on the heavily
    imbalanced hotspot benchmark (6.6% hotspots in the training split).
    ``positive_mass`` is the expected fraction of positive (label 1)
    samples per epoch; 0.5 equalises the classes.  For multi-class
    labels only 0.5 (uniform over classes) is supported.
    """
    labels = np.asarray(labels)
    classes, counts = np.unique(labels, return_counts=True)
    if len(classes) == 2 and set(classes) == {0, 1}:
        if not 0.0 < positive_mass < 1.0:
            raise ValueError(f"positive_mass must be in (0, 1), got {positive_mass}")
        n_neg, n_pos = counts[0], counts[1]
        weight_of = {0: (1.0 - positive_mass) / n_neg, 1: positive_mass / n_pos}
    else:
        if positive_mass != 0.5:
            raise ValueError("positive_mass is only meaningful for 0/1 labels")
        weight_of = {c: 1.0 / (len(classes) * n) for c, n in zip(classes, counts)}
    return np.array([weight_of[label] for label in labels])


class ArrayDataset:
    """In-memory dataset of ``(images, labels)`` arrays.

    ``images`` has shape ``(n, c, h, w)``; ``labels`` is either integer
    class ids of shape ``(n,)`` or soft targets of shape ``(n, k)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        images = np.asarray(images)
        labels = np.asarray(labels)
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) "
                "must have the same length"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.images.shape[0]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        return ArrayDataset(self.images[indices], self.labels[indices])

    def with_labels(self, labels: np.ndarray) -> "ArrayDataset":
        """Return a dataset with the same images but replaced labels
        (used by biased fine-tuning to soften non-hotspot targets)."""
        return ArrayDataset(self.images, labels)


class RandomFlip:
    """Random horizontal/vertical flip augmentation.

    Each sample is independently flipped along each spatial axis with
    probability 1/2.  Layout clips are flip-invariant in their hotspot
    label (lithography is symmetric under mirroring at this abstraction
    level), so labels are untouched.
    """

    def __init__(self, rng: np.random.Generator, horizontal: bool = True,
                 vertical: bool = True):
        self.rng = rng
        self.horizontal = horizontal
        self.vertical = vertical

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        out = batch.copy()
        n = batch.shape[0]
        if self.horizontal:
            flip_h = self.rng.random(n) < 0.5
            out[flip_h] = out[flip_h, :, :, ::-1]
        if self.vertical:
            flip_v = self.rng.random(n) < 0.5
            out[flip_v] = out[flip_v, :, ::-1, :]
        return out


class DataLoader:
    """Shuffled mini-batch iterator over an :class:`ArrayDataset`.

    Mirrors the MGD scheme of the paper: a group of instances is
    randomly picked from the training set for each iteration.  With
    ``sample_weights`` given, each epoch draws ``len(dataset)`` samples
    *with replacement* proportionally to the weights (see
    :func:`balanced_weights` for class rebalancing).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = True,
        augment: RandomFlip | None = None,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
        sample_weights: np.ndarray | None = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if drop_last and len(dataset) < batch_size:
            # would silently yield zero batches every epoch — an easy
            # footgun with small validation splits
            raise ValueError(
                f"drop_last=True with dataset length {len(dataset)} < "
                f"batch_size {batch_size} would yield no batches; "
                "lower batch_size or use drop_last=False"
            )
        if sample_weights is not None:
            sample_weights = np.asarray(sample_weights, dtype=np.float64)
            if sample_weights.shape[0] != len(dataset):
                raise ValueError("sample_weights must match the dataset length")
            sample_weights = sample_weights / sample_weights.sum()
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self.rng = rng if rng is not None else np.random.default_rng()
        self.drop_last = drop_last
        self.sample_weights = sample_weights

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if self.sample_weights is not None:
            order = self.rng.choice(n, size=n, replace=True, p=self.sample_weights)
        elif self.shuffle:
            order = self.rng.permutation(n)
        else:
            order = np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            images = self.dataset.images[idx]
            if self.augment is not None:
                images = self.augment(images)
            yield images, self.dataset.labels[idx]

    # -- state dict ----------------------------------------------------

    def state_dict(self) -> dict[str, str]:
        """RNG states that determine the batch stream from here on.

        Sampling order and augmentation flips are the loader's only
        nondeterminism; capturing both generators is what lets a resumed
        training run replay the exact batch stream of the original
        (see :mod:`repro.train`).
        """
        state = {"rng": capture_rng_state(self.rng)}
        if self.augment is not None:
            state["augment_rng"] = capture_rng_state(self.augment.rng)
        return state

    def load_state_dict(self, state: dict[str, str]) -> None:
        """Restore RNG states saved by :meth:`state_dict`."""
        restore_rng_state(self.rng, state["rng"])
        if self.augment is not None:
            if "augment_rng" not in state:
                raise KeyError(
                    "loader state dict has no 'augment_rng' but this "
                    "loader augments; saved from a different configuration?"
                )
            restore_rng_state(self.augment.rng, state["augment_rng"])


def train_val_split(
    dataset: ArrayDataset, val_fraction: float, rng: np.random.Generator
) -> tuple[ArrayDataset, ArrayDataset]:
    """Randomly split a dataset into (train, validation) parts."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    n = len(dataset)
    order = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    if n - n_val < 1:
        raise ValueError(
            f"val_fraction={val_fraction} of a {n}-sample dataset leaves "
            f"{n - n_val} training samples; lower val_fraction or provide "
            "more data (need at least 1 sample on each side)"
        )
    return dataset.subset(order[n_val:]), dataset.subset(order[:n_val])
