"""Low-level tensor operations for the NumPy neural-network framework.

All image tensors use the ``NCHW`` layout: ``(batch, channels, height,
width)``.  Convolutions are implemented with the classic im2col/col2im
lowering so that both the forward and backward passes reduce to dense
matrix multiplications, which is the fastest strategy available to pure
NumPy code.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "pad2d",
    "unpad2d",
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool2d_forward",
    "avgpool2d_backward",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Return the spatial output size of a convolution/pooling window.

    Raises ``ValueError`` when the window does not fit the padded input.
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window (kernel={kernel}, stride={stride}, padding={padding}) "
            f"does not fit input of size {size}"
        )
    return out


def pad2d(x: np.ndarray, padding: int, value: float = 0.0) -> np.ndarray:
    """Zero-pad (or constant-pad) the two trailing spatial axes of ``x``."""
    if padding == 0:
        return x
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding}")
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
        constant_values=value,
    )


def unpad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Inverse of :func:`pad2d`: strip ``padding`` pixels from each border."""
    if padding == 0:
        return x
    return x[:, :, padding:-padding, padding:-padding]


def _window_strides(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Return a strided (no-copy) view of sliding windows over ``x``.

    ``x`` must already be padded.  The view has shape
    ``(n, c, out_h, out_w, kh, kw)``.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    pad_value: float = 0.0,
) -> np.ndarray:
    """Lower sliding convolution windows of ``x`` into a matrix.

    Parameters
    ----------
    x:
        Input tensor of shape ``(n, c, h, w)``.
    kh, kw, stride, padding:
        Convolution geometry.

    Returns
    -------
    np.ndarray
        Matrix of shape ``(c * kh * kw, n * out_h * out_w)``.  Column
        ``j`` holds one receptive field; rows are ordered channel-major
        then row-major within the kernel, matching
        ``weight.reshape(c_out, -1)``.

    ``pad_value`` fills the border (binary convolutions pad with -1,
    the "empty layout" value, so the packed popcount engine needs no
    validity mask).
    """
    xp = pad2d(x, padding, value=pad_value)
    windows = _window_strides(xp, kh, kw, stride)
    n, c, out_h, out_w = windows.shape[:4]
    # (n, out_h, out_w, c, kh, kw) -> (c*kh*kw, n*out_h*out_w)
    cols = windows.transpose(1, 4, 5, 0, 2, 3).reshape(c * kh * kw, n * out_h * out_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add an im2col matrix back into an image tensor.

    This is the adjoint of :func:`im2col` and is used to route output
    gradients back to the convolution input.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    cols6 = cols.reshape(c, kh, kw, n, out_h, out_w)
    xp = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, i, j].transpose(
                1, 0, 2, 3
            )
    if padding == 0:
        return xp
    return xp[:, :, padding:-padding, padding:-padding]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    cols: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run a 2-D convolution forward pass.

    Parameters
    ----------
    x:
        Input of shape ``(n, c_in, h, w)``.
    weight:
        Filters of shape ``(c_out, c_in, kh, kw)``.
    bias:
        Optional per-filter bias of shape ``(c_out,)``.
    cols:
        Pre-computed ``im2col(x, ...)`` matrix; passed by layers that
        already lowered the input (e.g. to share it with a scaling-factor
        computation).

    Returns
    -------
    (out, cols):
        ``out`` has shape ``(n, c_out, out_h, out_w)``; ``cols`` is the
        lowered input, cached for the backward pass.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input has {c_in} channels but weight expects {c_in_w}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if cols is None:
        cols = im2col(x, kh, kw, stride, padding)
    out = weight.reshape(c_out, -1) @ cols
    out = out.reshape(c_out, n, out_h, out_w).transpose(1, 0, 2, 3)
    if bias is not None:
        out = out + bias.reshape(1, c_out, 1, 1)
    return out, cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
    with_bias: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_weight, grad_bias)`` where ``grad_bias`` is
    ``None`` when ``with_bias`` is false.
    """
    n = x_shape[0]
    c_out, c_in, kh, kw = weight.shape
    # (n, c_out, oh, ow) -> (c_out, n*oh*ow)
    grad_mat = grad_out.transpose(1, 0, 2, 3).reshape(c_out, -1)
    grad_weight = (grad_mat @ cols.T).reshape(weight.shape)
    grad_bias = grad_out.sum(axis=(0, 2, 3)) if with_bias else None
    grad_cols = weight.reshape(c_out, -1).T @ grad_mat
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
    return grad_x, grad_weight, grad_bias


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling.  Returns ``(out, argmax)``; ``argmax`` is cached for
    the backward pass (flat index within each window)."""
    windows = _window_strides(x, kernel, kernel, stride)
    n, c, out_h, out_w = windows.shape[:4]
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    return out, argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Route each output gradient back to the argmax position."""
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2:]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    ki, kj = np.divmod(argmax, kernel)
    oi = np.arange(out_h).reshape(1, 1, out_h, 1)
    oj = np.arange(out_w).reshape(1, 1, 1, out_w)
    rows = oi * stride + ki
    cols = oj * stride + kj
    ni = np.arange(n).reshape(n, 1, 1, 1)
    ci = np.arange(c).reshape(1, c, 1, 1)
    np.add.at(grad_x, (ni, ci, rows, cols), grad_out)
    return grad_x


def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Average pooling forward pass."""
    windows = _window_strides(x, kernel, kernel, stride)
    return windows.mean(axis=(4, 5))


def avgpool2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Spread each output gradient uniformly over its pooling window."""
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    out_h, out_w = grad_out.shape[2:]
    share = grad_out / (kernel * kernel)
    for i in range(kernel):
        for j in range(kernel):
            grad_x[
                :,
                :,
                i : i + stride * out_h : stride,
                j : j + stride * out_w : stride,
            ] += share
    return grad_x
