"""Numerical gradient checking.

Every analytic backward pass in this library is validated against
central finite differences; this module makes that machinery public so
downstream layers can be checked the same way::

    from repro.nn.gradcheck import check_layer_gradients
    report = check_layer_gradients(MyLayer(...), x)
    assert report.max_input_error < 1e-5

Layers with non-differentiable forwards (the binarized layers use
straight-through estimators) cannot pass a finite-difference check by
design; check their float relaxations or their hand-derived rules
against independent formulas instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .module import Module

__all__ = ["GradCheckReport", "numerical_gradient", "check_layer_gradients"]


@dataclass
class GradCheckReport:
    """Outcome of a gradient check.

    ``max_input_error`` is the worst absolute difference between the
    analytic and numerical input gradients; ``parameter_errors`` maps
    parameter names to their worst differences.
    """

    max_input_error: float
    parameter_errors: dict[str, float]

    @property
    def max_parameter_error(self) -> float:
        """Worst parameter-gradient discrepancy."""
        if not self.parameter_errors:
            return 0.0
        return max(self.parameter_errors.values())

    def ok(self, tolerance: float = 1e-5) -> bool:
        """True when every gradient matches within ``tolerance``."""
        return (self.max_input_error <= tolerance
                and self.max_parameter_error <= tolerance)


def numerical_gradient(f, x: np.ndarray, grad_out: np.ndarray,
                       eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(f(x) * grad_out)`` w.r.t. x.

    ``x`` is perturbed in place and restored; ``f`` must be
    deterministic.
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = float((f(x) * grad_out).sum())
        flat[i] = original - eps
        lo = float((f(x) * grad_out).sum())
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2.0 * eps)
    return grad


def check_layer_gradients(
    layer: Module,
    x: np.ndarray,
    eps: float = 1e-6,
    seed: int = 0,
) -> GradCheckReport:
    """Compare a layer's backward pass against finite differences.

    Runs ``forward(training=True)`` once, backpropagates a fixed random
    upstream gradient, and differences both the input and every
    parameter.  Stateful layers must be deterministic given the same
    input (batch-norm in training mode qualifies; dropout does not).
    """
    rng = np.random.default_rng(seed)
    out = layer.forward(x, training=True)
    grad_out = rng.normal(size=out.shape)
    layer.zero_grad()
    analytic_input = layer.backward(grad_out)

    numeric_input = numerical_gradient(
        lambda value: layer.forward(value, training=True), x.copy(), grad_out,
        eps=eps,
    )
    # restore caches clobbered by the probing forwards
    layer.forward(x, training=True)
    input_error = float(np.abs(analytic_input - numeric_input).max())

    parameter_errors: dict[str, float] = {}
    for name, parameter in layer.named_parameters():
        analytic = parameter.grad.copy()

        def f(values: np.ndarray) -> np.ndarray:
            """Forward pass with the probed parameter values."""
            parameter.data[...] = values
            return layer.forward(x, training=True)

        original = parameter.data.copy()
        numeric = numerical_gradient(f, original.copy(), grad_out, eps=eps)
        parameter.data[...] = original
        parameter_errors[name] = float(np.abs(analytic - numeric).max())
    return GradCheckReport(max_input_error=input_error,
                           parameter_errors=parameter_errors)
