"""Weight initialisers.

The paper initialises all real-valued kernels with the Xavier scheme
(Glorot & Bengio, 2010) — see Section 3.4.2.  He initialisation is also
provided for the float baselines that use ReLU activations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fan_in_out", "xavier_uniform", "xavier_normal", "he_normal", "zeros"]


def fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense or convolutional weights.

    Dense weights are ``(in, out)``; convolution weights are
    ``(c_out, c_in, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, 2 / fan_in), suited to ReLU networks."""
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialiser (biases)."""
    return np.zeros(shape)
