"""Layer library for the NumPy neural-network framework."""

from .activations import HardTanh, ReLU, SignSTE, sign
from .batchnorm import BatchNorm1D, BatchNorm2D
from .container import Sequential
from .conv import Conv2D
from .dense import Dense
from .dropout import Dropout
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .residual import ResidualBlock
from .shape import Flatten

__all__ = [
    "AvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "HardTanh",
    "MaxPool2D",
    "ReLU",
    "ResidualBlock",
    "Sequential",
    "SignSTE",
    "sign",
]
