"""Activation layers, including the straight-through-estimated sign.

The binarizing layer of the paper (Figure 3) is :class:`SignSTE`:
forward is ``sign(x)`` and backward applies the straight-through
estimator of Eq. (10)-(11)::

    d sign(x) / dx  =  1  if |x| < 1  else  0

which is exactly the derivative of hard-tanh, hence the companion
:class:`HardTanh`.
"""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["ReLU", "HardTanh", "SignSTE", "sign"]


def sign(x: np.ndarray) -> np.ndarray:
    """Binarize to {-1, +1}; zeros map to +1 so outputs are never 0."""
    return np.where(x >= 0, 1.0, -1.0)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._mask is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return grad * self._mask


class HardTanh(Module):
    """Clamp to [-1, 1]; the real-valued relaxation of :class:`SignSTE`."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._mask = (np.abs(x) < 1.0) if training else None
        return np.clip(x, -1.0, 1.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._mask is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return grad * self._mask


class SignSTE(Module):
    """Binarizing layer: forward ``sign``, backward straight-through.

    Gradients are passed through unchanged where ``|x| < 1`` and zeroed
    elsewhere (the saturation effect of Eq. 10).
    """

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._mask = (np.abs(x) < 1.0) if training else None
        return sign(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._mask is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return grad * self._mask
