"""Batch normalisation (Ioffe & Szegedy, 2015).

In the paper's BNN block (Figure 3) batch normalisation is placed
*before* the binarizing layer, following XNOR-Net, to reduce the
information lost by binarization.
"""

from __future__ import annotations

import numpy as np

from ..module import Module, Parameter

__all__ = ["BatchNorm2D", "BatchNorm1D"]


class _BatchNormBase(Module):
    """Shared implementation; subclasses define the reduction axes."""

    #: axes reduced to compute per-channel statistics
    _axes: tuple[int, ...] = ()

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def _reshape(self, v: np.ndarray, ndim: int) -> np.ndarray:
        """Broadcast a per-channel vector against an input of rank ndim."""
        shape = [1] * ndim
        shape[1] = self.num_features
        return v.reshape(shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        if training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            m = self.momentum
            self.running_mean[...] = m * self.running_mean + (1.0 - m) * mean
            self.running_var[...] = m * self.running_var + (1.0 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape(mean, x.ndim)) * self._reshape(inv_std, x.ndim)
        out = self._reshape(self.gamma.data, x.ndim) * x_hat + self._reshape(
            self.beta.data, x.ndim
        )
        if training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._cache is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        x_hat, inv_std = self._cache
        axes = self._axes
        # number of elements reduced per channel
        m = grad.size // self.num_features
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        g = self._reshape(self.gamma.data, grad.ndim)
        inv = self._reshape(inv_std, grad.ndim)
        dxhat = grad * g
        sum_dxhat = self._reshape(dxhat.sum(axis=axes), grad.ndim)
        sum_dxhat_xhat = self._reshape((dxhat * x_hat).sum(axis=axes), grad.ndim)
        return (inv / m) * (m * dxhat - sum_dxhat - x_hat * sum_dxhat_xhat)

    def extra_state(self) -> dict[str, np.ndarray]:
        """Non-parameter arrays persisted with the model."""
        return {"running_mean": self.running_mean, "running_var": self.running_var}


class BatchNorm2D(_BatchNormBase):
    """Per-channel normalisation over ``(n, c, h, w)`` inputs."""

    _axes = (0, 2, 3)


class BatchNorm1D(_BatchNormBase):
    """Per-feature normalisation over ``(n, c)`` inputs."""

    _axes = (0,)
