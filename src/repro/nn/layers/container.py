"""Layer containers."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Sequential"]


class Sequential(Module):
    """Run child modules in order; backpropagate in reverse order."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        """Append a layer to the container."""
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad
