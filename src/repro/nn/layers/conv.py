"""Full-precision 2-D convolution layer."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter

__all__ = ["Conv2D"]


class Conv2D(Module):
    """Standard float convolution, ``(n, c_in, h, w) -> (n, c_out, oh, ow)``.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side.
    stride, padding:
        Convolution geometry.
    bias:
        Whether to learn a per-filter bias.  Layers followed by batch
        normalisation typically disable it.
    rng:
        Generator for Xavier initialisation (Section 3.4.2 of the paper).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.xavier_uniform(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None
        self._cols: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._x_shape = x.shape
        out, cols = F.conv2d_forward(
            x,
            self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride,
            self.padding,
        )
        self._cols = cols if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad,
            self._cols,
            self._x_shape,
            self.weight.data,
            self.stride,
            self.padding,
            with_bias=self.bias is not None,
        )
        self.weight.grad += grad_w
        if self.bias is not None and grad_b is not None:
            self.bias.grad += grad_b
        return grad_x
