"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter

__all__ = ["Dense"]


class Dense(Module):
    """Affine layer ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._x = x if training else None
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._x is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        self.weight.grad += self._x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.data.T
