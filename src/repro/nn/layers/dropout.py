"""Inverted dropout.

The paper does *not* use dropout (Section 3.4.2, following the ResNet
practice); the layer is provided for baseline models and ablations.
"""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: activations are scaled by ``1/keep`` at train
    time so inference is a plain identity."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        if not training or self.p == 0.0:
            self._mask = None if not training else np.ones_like(x)
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._mask is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return grad * self._mask
