"""Pooling layers."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None
        self._argmax: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        out, argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        self._x_shape = x.shape if training else None
        self._argmax = argmax if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return F.maxpool2d_backward(
            grad, self._argmax, self._x_shape, self.kernel_size, self.stride
        )


class AvgPool2D(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._x_shape = x.shape if training else None
        return F.avgpool2d_forward(x, self.kernel_size, self.stride)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._x_shape is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return F.avgpool2d_backward(grad, self._x_shape, self.kernel_size, self.stride)


class GlobalAvgPool2D(Module):
    """Collapse each channel to its spatial mean: ``(n, c, h, w) -> (n, c)``.

    Used as the head of the residual networks (Figure 2) in place of a
    large dense layer.
    """

    def __init__(self) -> None:
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._x_shape = x.shape if training else None
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._x_shape is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        n, c, h, w = self._x_shape
        return np.broadcast_to(grad[:, :, None, None], self._x_shape) / (h * w)
