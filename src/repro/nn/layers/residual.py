"""Residual block with optional projection shortcut (He et al., 2016).

The paper's network (Figure 2) is built from residual blocks of two
3x3 convolution blocks.  Where the block changes the tensor shape
(stride-2 down-sampling or a channel increase) the identity shortcut is
replaced by a 1x1 convolution block that projects the input to the
output shape so the two paths can be summed.
"""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["ResidualBlock"]


class ResidualBlock(Module):
    """``out = main(x) + shortcut(x)`` with ``shortcut = identity`` by default.

    Both branches receive the same input; the backward pass sums the two
    branch gradients, mirroring the forward sum.
    """

    def __init__(self, main: Module, shortcut: Module | None = None):
        self.main = main
        self.shortcut = shortcut

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        main_out = self.main.forward(x, training=training)
        if self.shortcut is None:
            if main_out.shape != x.shape:
                raise ValueError(
                    f"identity shortcut requires matching shapes, got "
                    f"{x.shape} -> {main_out.shape}; supply a projection shortcut"
                )
            return main_out + x
        return main_out + self.shortcut.forward(x, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        grad_main = self.main.backward(grad)
        if self.shortcut is None:
            return grad_main + grad
        return grad_main + self.shortcut.backward(grad)
