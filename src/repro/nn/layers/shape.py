"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from ..module import Module

__all__ = ["Flatten"]


class Flatten(Module):
    """Flatten all axes after the batch axis: ``(n, ...) -> (n, k)``."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        self._x_shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        if self._x_shape is None:
            raise RuntimeError("backward() requires a prior forward(training=True)")
        return grad.reshape(self._x_shape)
