"""Loss functions.

The paper trains with softmax cross-entropy (Section 3.4.3) and
fine-tunes with *biased* soft targets: the non-hotspot label is changed
from ``[1, 0]`` to ``[1 - eps, eps]`` while the hotspot label stays
``[0, 1]``.  :class:`SoftmaxCrossEntropy` therefore accepts either
integer class labels or full soft-target distributions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "SoftmaxCrossEntropy",
           "WeightedCrossEntropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise log-softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class SoftmaxCrossEntropy:
    """Softmax cross-entropy with hard or soft targets.

    ``forward`` returns the mean loss over the batch; ``backward``
    returns the gradient with respect to the logits.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    @staticmethod
    def _as_distribution(targets: np.ndarray, num_classes: int) -> np.ndarray:
        """Promote integer labels to one-hot rows; pass soft targets through."""
        targets = np.asarray(targets)
        if targets.ndim == 1:
            onehot = np.zeros((targets.shape[0], num_classes))
            onehot[np.arange(targets.shape[0]), targets.astype(int)] = 1.0
            return onehot
        if targets.ndim == 2 and targets.shape[1] == num_classes:
            return targets.astype(np.float64)
        raise ValueError(
            f"targets shape {targets.shape} incompatible with {num_classes} classes"
        )

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy ``-sum(t * log_softmax(z)) / batch``."""
        dist = self._as_distribution(targets, logits.shape[-1])
        logp = log_softmax(logits)
        self._probs = np.exp(logp)
        self._targets = dist
        return float(-(dist * logp).sum(axis=-1).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits: ``(p - t) / n``."""
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward() called before forward()")
        n = self._probs.shape[0]
        return (self._probs - self._targets) / n

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class WeightedCrossEntropy(SoftmaxCrossEntropy):
    """Cross-entropy with per-class loss weights.

    An alternative imbalance handle to resampling and biased targets:
    each sample's loss is scaled by the weight of its (hard) class, or
    by the target-weighted average for soft targets.
    """

    def __init__(self, class_weights: np.ndarray):
        super().__init__()
        class_weights = np.asarray(class_weights, dtype=np.float64)
        if class_weights.ndim != 1 or (class_weights <= 0).any():
            raise ValueError("class_weights must be a 1-D positive vector")
        self.class_weights = class_weights
        self._sample_weights: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean class-weighted cross-entropy over the batch."""
        if logits.shape[-1] != self.class_weights.shape[0]:
            raise ValueError(
                f"{self.class_weights.shape[0]} class weights but "
                f"{logits.shape[-1]} classes"
            )
        dist = self._as_distribution(targets, logits.shape[-1])
        logp = log_softmax(logits)
        self._probs = np.exp(logp)
        self._targets = dist
        weights = dist @ self.class_weights
        self._sample_weights = weights
        per_sample = -(dist * logp).sum(axis=-1)
        return float((weights * per_sample).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the weighted mean loss w.r.t. the logits."""
        grad = super().backward()
        if self._sample_weights is None:
            raise RuntimeError("backward() called before forward()")
        return grad * self._sample_weights[:, None]
