"""Module and Parameter abstractions.

The framework uses explicit layer-wise backpropagation rather than a
taped autograd: every :class:`Module` caches what it needs during
``forward`` and implements ``backward`` to (a) accumulate parameter
gradients and (b) return the gradient with respect to its input.  This
keeps the dataflow explicit — appropriate for a reproduction whose whole
point is a hand-derived backward rule (Eq. 13 of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter value (updated in place by optimizers).
    grad:
        Accumulated gradient, same shape as ``data``.
    name:
        Dotted path assigned during :meth:`Module.named_parameters`
        traversal; useful for debugging and serialization.
    trainable:
        Optimizers skip parameters with ``trainable`` set to ``False``
        (used e.g. to freeze layers during biased fine-tuning ablations).
    """

    def __init__(self, data: np.ndarray, name: str = "", trainable: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses implement ``forward(x, training)`` and ``backward(grad)``.
    Child modules and :class:`Parameter` attributes are discovered by
    attribute inspection, so plain assignment (``self.conv = Conv2D(...)``)
    is all that is needed to register them.
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer's forward pass (see class docstring)."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layer (see class docstring)."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    # -- traversal -----------------------------------------------------

    def children(self) -> Iterator["Module"]:
        """Yield direct child modules (attribute order)."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first.

        Also stamps each parameter's ``name`` attribute with its path.
        """
        for attr, value in self.__dict__.items():
            path = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                value.name = path
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters as a list (stable traversal order)."""
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        """Reset the gradients of every parameter in the subtree."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the subtree."""
        return sum(
            p.size for p in self.parameters() if p.trainable or not trainable_only
        )

    # -- state dict ----------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter paths to copied arrays.

        Layers with non-parameter state (e.g. batch-norm running
        statistics) extend this by overriding ``extra_state``.
        """
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, arr in self._named_extra_state():
            state[name] = arr.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters (and extra state) saved by :meth:`state_dict`."""
        for name, p in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if state[name].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{state[name].shape} vs {p.data.shape}"
                )
            p.data[...] = state[name]
        for name, arr in self._named_extra_state():
            if name not in state:
                raise KeyError(f"missing extra state {name!r} in state dict")
            arr[...] = state[name]

    def extra_state(self) -> dict[str, np.ndarray]:
        """Non-parameter arrays to persist (override in subclasses)."""
        return {}

    def _named_extra_state(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, arr in self.extra_state().items():
            yield f"{prefix}{name}", arr
        for attr, value in self.__dict__.items():
            if isinstance(value, Module):
                yield from value._named_extra_state(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_extra_state(
                            prefix=f"{prefix}{attr}.{i}."
                        )
