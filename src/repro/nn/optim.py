"""Optimizers.

The paper trains with mini-batch gradient descent using the **NAdam**
optimizer (Dozat, 2016), which combines Adam's adaptive moments with
Nesterov momentum (Section 3.4.2).  SGD, classical momentum, NAG and
Adam are provided for the baselines and ablations.

All optimizers share one interface::

    opt = NAdam(model.parameters(), lr=0.15)
    ...
    opt.step()        # apply accumulated gradients
    model.zero_grad()

The learning rate is exposed as a mutable ``lr`` attribute so that
schedulers (see :mod:`repro.nn.schedulers`) can adjust it between
epochs.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Momentum", "NAG", "Adam", "NAdam"]


class Optimizer:
    """Base optimizer: holds the parameter list and the learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        raise NotImplementedError

    def _trainable(self) -> list[Parameter]:
        return [p for p in self.params if p.trainable]

    # -- state dict ----------------------------------------------------
    #
    # Optimizers carry internal state (moment estimates, velocities,
    # step counters) that must survive a crash for a resumed run to be
    # bit-identical to an uninterrupted one.  The format is a flat
    # mapping of string keys to arrays — the same shape as
    # :meth:`Module.state_dict` — so run-state checkpoints can bundle
    # model and optimizer state in one ``.npz`` archive.

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of optimizer state (lr + subclass slots)."""
        state = {"lr": np.float64(self.lr)}
        state.update(self._slot_state())
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict` (exact shapes)."""
        if "lr" not in state:
            raise KeyError("optimizer state dict is missing 'lr'")
        self.lr = float(state["lr"])
        self._load_slot_state(state)

    def _slot_state(self) -> dict[str, np.ndarray]:
        """Subclass hook: per-parameter slots and counters to persist."""
        return {}

    def _load_slot_state(self, state: dict[str, np.ndarray]) -> None:
        """Subclass hook: restore what :meth:`_slot_state` returned."""

    def _load_slot_arrays(
        self, state: dict[str, np.ndarray], name: str, slots: list[np.ndarray]
    ) -> None:
        """Copy ``state[f"{name}.{i}"]`` into ``slots[i]`` with checks."""
        for i, slot in enumerate(slots):
            key = f"{name}.{i}"
            if key not in state:
                raise KeyError(
                    f"optimizer state dict is missing {key!r} "
                    f"(saved with a different parameter list?)"
                )
            if state[key].shape != slot.shape:
                raise ValueError(
                    f"shape mismatch for optimizer slot {key!r}: "
                    f"{state[key].shape} vs {slot.shape}"
                )
            slot[...] = state[key]


class SGD(Optimizer):
    """Vanilla (mini-batch) gradient descent."""

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        for p in self._trainable():
            p.data -= self.lr * p.grad


class _VelocityMixin:
    """Shared state-dict plumbing for velocity-slot optimizers."""

    def _slot_state(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def _load_slot_state(self, state: dict[str, np.ndarray]) -> None:
        self._load_slot_arrays(state, "velocity", self._velocity)


class Momentum(_VelocityMixin, Optimizer):
    """Classical (heavy-ball) momentum."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        for p, v in zip(self.params, self._velocity):
            if not p.trainable:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class NAG(_VelocityMixin, Optimizer):
    """Nesterov accelerated gradient (Nesterov, 1983), in the common
    "lookahead rewritten at the current point" form."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        mu = self.momentum
        for p, v in zip(self.params, self._velocity):
            if not p.trainable:
                continue
            v_prev = v.copy()
            v *= mu
            v -= self.lr * p.grad
            p.data += -mu * v_prev + (1.0 + mu) * v


class _MomentMixin:
    """Shared state-dict plumbing for Adam-family optimizers."""

    def _slot_state(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"t": np.int64(self._t)}
        state.update({f"m.{i}": m.copy() for i, m in enumerate(self._m)})
        state.update({f"v.{i}": v.copy() for i, v in enumerate(self._v)})
        return state

    def _load_slot_state(self, state: dict[str, np.ndarray]) -> None:
        if "t" not in state:
            raise KeyError("optimizer state dict is missing 't'")
        self._t = int(state["t"])
        self._load_slot_arrays(state, "m", self._m)
        self._load_slot_arrays(state, "v", self._v)


class Adam(_MomentMixin, Optimizer):
    """Adam (Kingma & Ba, 2014) with bias-corrected moment estimates."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.trainable:
                continue
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class NAdam(_MomentMixin, Optimizer):
    """NAdam (Dozat, 2016): Adam with Nesterov momentum.

    Uses the widely adopted simplification in which the Nesterov
    lookahead is expressed as a convex combination of the bias-corrected
    first moment and the current gradient::

        m_hat = beta1 * m_t / (1 - beta1^(t+1)) + (1 - beta1) * g / (1 - beta1^t)
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 2e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        t = self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.trainable:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g**2
            m_hat = b1 * m / (1.0 - b1 ** (t + 1)) + (1.0 - b1) * g / (1.0 - b1**t)
            v_hat = v / (1.0 - b2**t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
