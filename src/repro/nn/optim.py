"""Optimizers.

The paper trains with mini-batch gradient descent using the **NAdam**
optimizer (Dozat, 2016), which combines Adam's adaptive moments with
Nesterov momentum (Section 3.4.2).  SGD, classical momentum, NAG and
Adam are provided for the baselines and ablations.

All optimizers share one interface::

    opt = NAdam(model.parameters(), lr=0.15)
    ...
    opt.step()        # apply accumulated gradients
    model.zero_grad()

The learning rate is exposed as a mutable ``lr`` attribute so that
schedulers (see :mod:`repro.nn.schedulers`) can adjust it between
epochs.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Momentum", "NAG", "Adam", "NAdam"]


class Optimizer:
    """Base optimizer: holds the parameter list and the learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        raise NotImplementedError

    def _trainable(self) -> list[Parameter]:
        return [p for p in self.params if p.trainable]


class SGD(Optimizer):
    """Vanilla (mini-batch) gradient descent."""

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        for p in self._trainable():
            p.data -= self.lr * p.grad


class Momentum(Optimizer):
    """Classical (heavy-ball) momentum."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        for p, v in zip(self.params, self._velocity):
            if not p.trainable:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class NAG(Optimizer):
    """Nesterov accelerated gradient (Nesterov, 1983), in the common
    "lookahead rewritten at the current point" form."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.9):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        mu = self.momentum
        for p, v in zip(self.params, self._velocity):
            if not p.trainable:
                continue
            v_prev = v.copy()
            v *= mu
            v -= self.lr * p.grad
            p.data += -mu * v_prev + (1.0 + mu) * v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias-corrected moment estimates."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.trainable:
                continue
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class NAdam(Optimizer):
    """NAdam (Dozat, 2016): Adam with Nesterov momentum.

    Uses the widely adopted simplification in which the Nesterov
    lookahead is expressed as a convex combination of the bias-corrected
    first moment and the current gradient::

        m_hat = beta1 * m_t / (1 - beta1^(t+1)) + (1 - beta1) * g / (1 - beta1^t)
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 2e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one update step (see class docstring)."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        t = self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.trainable:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g**2
            m_hat = b1 * m / (1.0 - b1 ** (t + 1)) + (1.0 - b1) * g / (1.0 - b1**t)
            v_hat = v / (1.0 - b2**t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
