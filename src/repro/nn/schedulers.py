"""Learning-rate schedulers.

The paper's scheme (Section 3.4.2, following Szegedy et al. 2016) is to
*exponentially decay the learning rate each time the validation loss
plateaus after an epoch* — implemented here as
:class:`ReduceLROnPlateau`.  :class:`StepDecay` is included for
ablations.
"""

from __future__ import annotations

import numpy as np

from .optim import Optimizer

__all__ = ["LinearWarmup", "ReduceLROnPlateau", "StepDecay"]


class ReduceLROnPlateau:
    """Multiply the learning rate by ``factor`` when the monitored
    validation loss has not improved for ``patience`` epochs.

    Parameters
    ----------
    optimizer:
        The optimizer whose ``lr`` attribute is adjusted.
    factor:
        Exponential decay multiplier (0 < factor < 1).
    patience:
        Number of non-improving epochs tolerated before decaying.
    min_lr:
        Floor below which the learning rate is never reduced.
    threshold:
        Relative improvement required to count as "better".
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 1,
        min_lr: float = 1e-5,
        threshold: float = 1e-4,
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self.best = float("inf")
        self.num_bad_epochs = 0

    def step(self, val_loss: float | None) -> bool:
        """Record an epoch's validation loss; return True if lr decayed.

        ``None`` (no validation signal this epoch) is a no-op."""
        if val_loss is None:
            return False
        if val_loss < self.best * (1.0 - self.threshold):
            self.best = val_loss
            self.num_bad_epochs = 0
            return False
        self.num_bad_epochs += 1
        if self.num_bad_epochs <= self.patience:
            return False
        self.num_bad_epochs = 0
        new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
        decayed = new_lr < self.optimizer.lr
        self.optimizer.lr = new_lr
        return decayed

    def state_dict(self) -> dict[str, np.ndarray]:
        """Mutable scheduler state (the lr itself lives in the optimizer)."""
        return {
            "best": np.float64(self.best),
            "num_bad_epochs": np.int64(self.num_bad_epochs),
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self.best = float(state["best"])
        self.num_bad_epochs = int(state["num_bad_epochs"])


class LinearWarmup:
    """Ramp the learning rate linearly from ``start_factor * lr`` to the
    target over ``warmup_epochs``, then hand over to an optional inner
    scheduler.  Useful for the larger binarized networks whose early
    straight-through gradients are noisy."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 start_factor: float = 0.1, after=None):
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError(f"start_factor must be in (0, 1], got {start_factor}")
        self.optimizer = optimizer
        self.warmup_epochs = warmup_epochs
        self.target_lr = optimizer.lr
        self.after = after
        self._epoch = 0
        optimizer.lr = start_factor * self.target_lr
        self._start_lr = optimizer.lr

    def step(self, val_loss: float | None = None) -> bool:
        """Advance one epoch; returns True whenever the lr changed."""
        self._epoch += 1
        if self._epoch <= self.warmup_epochs:
            fraction = self._epoch / self.warmup_epochs
            self.optimizer.lr = (
                self._start_lr + fraction * (self.target_lr - self._start_lr)
            )
            return True
        if self.after is not None and val_loss is not None:
            return self.after.step(val_loss)
        return False

    def state_dict(self) -> dict[str, np.ndarray]:
        """Warmup position plus the inner scheduler's state (if any)."""
        state = {"epoch": np.int64(self._epoch)}
        if self.after is not None:
            inner = self.after.state_dict()
            state.update({f"after.{key}": value for key, value in inner.items()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self._epoch = int(state["epoch"])
        if self.after is not None:
            prefix = "after."
            inner = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            self.after.load_state_dict(inner)


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self, val_loss: float | None = None) -> bool:
        """Advance one epoch; return True if the lr was decayed."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
            return True
        return False

    def state_dict(self) -> dict[str, np.ndarray]:
        """Epoch counter (the lr itself lives in the optimizer)."""
        return {"epoch": np.int64(self._epoch)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict`."""
        self._epoch = int(state["epoch"])
