"""Model weight persistence (.npz checkpoints)."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model"]


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Serialize every parameter and extra state array to a ``.npz`` file."""
    state = model.state_dict()
    # npz keys cannot contain '/', but dots are fine.
    np.savez(path, **state)


def load_model(model: Module, path: str | os.PathLike) -> Module:
    """Load a checkpoint written by :func:`save_model` into ``model``.

    The model must already have the matching architecture; shapes are
    validated by :meth:`Module.load_state_dict`.
    """
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model
