"""Model weight persistence (.npz checkpoints).

Checkpoints are flat ``np.savez`` archives mapping dotted parameter
paths to arrays (see :meth:`Module.state_dict`).  A checkpoint may also
carry a small metadata record (architecture knobs, decision threshold)
under ``__meta__.``-prefixed keys so that consumers — notably the
serving layer's model registry — can rebuild the matching architecture
without out-of-band information.

Integrity: :func:`save_model` records a SHA-256 over the parameter
arrays (``content_sha256``) *and* one over the metadata record itself
(``meta_sha256`` — architecture knobs and the decision threshold drive
model reconstruction, so they need tamper detection just as much as the
weights).  :func:`load_model` and :func:`load_meta` re-verify the
digests covering what they return, so a corrupt or tampered checkpoint
fails loudly with :class:`CheckpointError` instead of serving garbage
predictions.  Truncated or non-zip files raise the same typed error.
Checkpoints written before a checksum existed load unchanged (no
checksum recorded, none verified).
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "save_model",
    "load_model",
    "load_meta",
    "checkpoint_path",
    "CheckpointError",
    "state_checksum",
]

#: Archive-key prefix separating metadata entries from model state.
_META_PREFIX = "__meta__."

#: Metadata key holding the parameter-content checksum.
_CHECKSUM_KEY = "content_sha256"

#: Metadata key holding the checksum over the metadata record itself
#: (every other ``__meta__.`` entry, including ``content_sha256``).
_META_CHECKSUM_KEY = "meta_sha256"


class CheckpointError(RuntimeError):
    """A checkpoint file is corrupt, truncated, or fails its checksum."""


def state_checksum(state: dict[str, np.ndarray]) -> str:
    """SHA-256 over a state dict: key names, dtypes, shapes, and bytes.

    Keys are visited in sorted order so the digest is independent of
    dict insertion order; dtype and shape are hashed so a reshaped or
    re-typed array with identical bytes still changes the digest.
    """
    digest = hashlib.sha256()
    for key in sorted(state):
        array = np.ascontiguousarray(state[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def checkpoint_path(path: str | os.PathLike) -> Path:
    """Normalize a checkpoint path to carry the ``.npz`` suffix.

    ``np.savez`` silently appends ``.npz`` when the path lacks it, so
    without normalization ``save_model(m, "ckpt")`` writes ``ckpt.npz``
    while ``load_model(m, "ckpt")`` looks for ``ckpt`` and fails.  Both
    directions go through this helper so suffix-less paths round-trip.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_model(
    model: Module,
    path: str | os.PathLike,
    meta: dict[str, object] | None = None,
) -> Path:
    """Serialize every parameter and extra state array to a ``.npz`` file.

    ``meta`` entries (ints, floats, strings, or arrays) are stored under
    ``__meta__.`` keys and recovered with :func:`load_meta`.  A
    ``content_sha256`` checksum over the parameter arrays and a
    ``meta_sha256`` over the metadata record (architecture knobs,
    decision threshold — everything the registry rebuilds a model from)
    are always added.  Returns the path actually written (the input
    with ``.npz`` appended if missing).
    """
    path = checkpoint_path(path)
    state = model.state_dict()
    checksum = state_checksum(state)
    # npz keys cannot contain '/', but dots are fine.
    if meta:
        for key, value in meta.items():
            state[_META_PREFIX + key] = np.asarray(value)
    state[_META_PREFIX + _CHECKSUM_KEY] = np.asarray(checksum)
    meta_state = {
        key: value
        for key, value in state.items()
        if key.startswith(_META_PREFIX)
    }
    state[_META_PREFIX + _META_CHECKSUM_KEY] = np.asarray(
        state_checksum(meta_state)
    )
    np.savez(path, **state)
    return path


def _read_archive(path: Path) -> dict[str, np.ndarray]:
    """Read every array of a checkpoint, typed-erroring on corruption.

    ``np.load`` surfaces truncation and bit-rot as a grab-bag of
    ``zipfile.BadZipFile`` / ``OSError`` / ``ValueError`` / ``EOFError``
    depending on where the damage sits; all of them become one
    :class:`CheckpointError` naming the file.
    """
    try:
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError, KeyError) as exc:
        raise CheckpointError(
            f"corrupt or truncated checkpoint {path}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _recorded_digest(arrays: dict[str, np.ndarray], key: str) -> str | None:
    """The hex digest stored under a ``__meta__.`` key, or None."""
    recorded = arrays.get(_META_PREFIX + key)
    if recorded is None:
        return None
    return str(recorded.item() if recorded.ndim == 0 else recorded)


def _verify_meta(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Check ``meta_sha256`` over the metadata record, when recorded.

    The registry rebuilds architecture and decision threshold from the
    metadata, so a flipped ``__meta__.`` entry is exactly as dangerous
    as a flipped weight — it gets the same loud :class:`CheckpointError`.
    """
    expected = _recorded_digest(arrays, _META_CHECKSUM_KEY)
    if expected is None:
        return  # pre-meta-checksum checkpoint: nothing to verify
    meta_state = {
        key: value
        for key, value in arrays.items()
        if key.startswith(_META_PREFIX)
        and key != _META_PREFIX + _META_CHECKSUM_KEY
    }
    actual = state_checksum(meta_state)
    if actual != expected:
        raise CheckpointError(
            f"checkpoint {path} failed its metadata checksum "
            f"(recorded {expected[:12]}…, computed {actual[:12]}…); "
            "the metadata record is corrupt or was modified after writing"
        )


def load_model(model: Module, path: str | os.PathLike) -> Module:
    """Load a checkpoint written by :func:`save_model` into ``model``.

    The model must already have the matching architecture; shapes are
    validated by :meth:`Module.load_state_dict`.  When the checkpoint
    records a ``content_sha256`` / ``meta_sha256``, the parameter arrays
    and the metadata record are re-hashed and a mismatch raises
    :class:`CheckpointError` before any state is applied.  Metadata
    entries are ignored here — use :func:`load_meta` to read them.
    """
    path = checkpoint_path(path)
    arrays = _read_archive(path)
    state = {
        key: value
        for key, value in arrays.items()
        if not key.startswith(_META_PREFIX)
    }
    expected = _recorded_digest(arrays, _CHECKSUM_KEY)
    if expected is not None:
        actual = state_checksum(state)
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {path} failed its content checksum "
                f"(recorded {expected[:12]}…, computed {actual[:12]}…); "
                "the file is corrupt or was modified after writing"
            )
    _verify_meta(path, arrays)
    model.load_state_dict(state)
    return model


def load_meta(path: str | os.PathLike) -> dict[str, object]:
    """Read the metadata record of a checkpoint (empty dict if none).

    Scalar entries come back as plain Python values (``int``, ``float``,
    ``str``); array entries stay arrays.  When the checkpoint records a
    ``meta_sha256``, the record is re-hashed first and a mismatch raises
    :class:`CheckpointError` — consumers (the serving registry) rebuild
    architectures and decision thresholds from these entries.
    """
    path = checkpoint_path(path)
    arrays = _read_archive(path)
    _verify_meta(path, arrays)
    meta: dict[str, object] = {}
    for key, value in arrays.items():
        if key.startswith(_META_PREFIX):
            name = key[len(_META_PREFIX):]
            if name in (_CHECKSUM_KEY, _META_CHECKSUM_KEY):
                continue  # integrity records, not user metadata
            meta[name] = value.item() if value.ndim == 0 else value
    return meta
