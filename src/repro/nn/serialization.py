"""Model weight persistence (.npz checkpoints).

Checkpoints are flat ``np.savez`` archives mapping dotted parameter
paths to arrays (see :meth:`Module.state_dict`).  A checkpoint may also
carry a small metadata record (architecture knobs, decision threshold)
under ``__meta__.``-prefixed keys so that consumers — notably the
serving layer's model registry — can rebuild the matching architecture
without out-of-band information.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model", "load_meta", "checkpoint_path"]

#: Archive-key prefix separating metadata entries from model state.
_META_PREFIX = "__meta__."


def checkpoint_path(path: str | os.PathLike) -> Path:
    """Normalize a checkpoint path to carry the ``.npz`` suffix.

    ``np.savez`` silently appends ``.npz`` when the path lacks it, so
    without normalization ``save_model(m, "ckpt")`` writes ``ckpt.npz``
    while ``load_model(m, "ckpt")`` looks for ``ckpt`` and fails.  Both
    directions go through this helper so suffix-less paths round-trip.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_model(
    model: Module,
    path: str | os.PathLike,
    meta: dict[str, object] | None = None,
) -> Path:
    """Serialize every parameter and extra state array to a ``.npz`` file.

    ``meta`` entries (ints, floats, strings, or arrays) are stored under
    ``__meta__.`` keys and recovered with :func:`load_meta`.  Returns the
    path actually written (the input with ``.npz`` appended if missing).
    """
    path = checkpoint_path(path)
    state = model.state_dict()
    # npz keys cannot contain '/', but dots are fine.
    if meta:
        for key, value in meta.items():
            state[_META_PREFIX + key] = np.asarray(value)
    np.savez(path, **state)
    return path


def load_model(model: Module, path: str | os.PathLike) -> Module:
    """Load a checkpoint written by :func:`save_model` into ``model``.

    The model must already have the matching architecture; shapes are
    validated by :meth:`Module.load_state_dict`.  Metadata entries are
    ignored here — use :func:`load_meta` to read them.
    """
    with np.load(checkpoint_path(path)) as archive:
        state = {
            key: archive[key]
            for key in archive.files
            if not key.startswith(_META_PREFIX)
        }
    model.load_state_dict(state)
    return model


def load_meta(path: str | os.PathLike) -> dict[str, object]:
    """Read the metadata record of a checkpoint (empty dict if none).

    Scalar entries come back as plain Python values (``int``, ``float``,
    ``str``); array entries stay arrays.
    """
    meta: dict[str, object] = {}
    with np.load(checkpoint_path(path)) as archive:
        for key in archive.files:
            if key.startswith(_META_PREFIX):
                value = archive[key]
                meta[key[len(_META_PREFIX):]] = (
                    value.item() if value.ndim == 0 else value
                )
    return meta
