"""Training loop implementing Algorithm 1 of the paper.

The loop is the standard mini-batch gradient descent procedure: for
each batch, run the forward pass (binarized layers binarize their
weights and inputs internally), evaluate the loss, backpropagate
(binarized layers apply Eq. 13 internally), and let the optimizer
update the *real-valued* master weights.  Between epochs a validation
pass feeds the plateau-based learning-rate decay (Section 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .data import DataLoader
from .losses import SoftmaxCrossEntropy
from .module import Module
from .optim import Optimizer
from .schedulers import ReduceLROnPlateau

__all__ = [
    "GradientExplosionError",
    "History",
    "Trainer",
    "evaluate_loss",
    "predict_logits",
]


class GradientExplosionError(FloatingPointError):
    """The global gradient norm exceeded the trainer's limit (or went
    non-finite) — raised *before* the optimizer step so the master
    weights are never poisoned by the exploding update."""


@dataclass
class History:
    """Per-epoch training telemetry.

    ``events`` records out-of-band incidents — divergence rollbacks,
    preemptions, resumes — as dicts with at least a ``"kind"`` key (see
    :class:`repro.train.TrainingRun`); empty for plain uneventful runs.
    """

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of recorded epochs."""
        return len(self.train_loss)


def predict_logits(
    model: Module, images: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Run inference in batches and return stacked logits."""
    if images.shape[0] == 0:
        # np.concatenate([]) raises a cryptic "need at least one array";
        # a zero-batch forward yields the correctly shaped empty logits
        return model.forward(images)
    outputs = []
    for start in range(0, images.shape[0], batch_size):
        outputs.append(model.forward(images[start : start + batch_size]))
    return np.concatenate(outputs, axis=0)


def evaluate_loss(
    model: Module,
    loader: DataLoader,
    loss_fn: SoftmaxCrossEntropy | None = None,
) -> float:
    """Mean loss of ``model`` over every batch of ``loader`` (no grad)."""
    loss_fn = loss_fn if loss_fn is not None else SoftmaxCrossEntropy()
    total, count = 0.0, 0
    for images, labels in loader:
        logits = model.forward(images)
        total += loss_fn.forward(logits, labels) * images.shape[0]
        count += images.shape[0]
    if count == 0:
        raise ValueError("loader produced no batches")
    return total / count


class Trainer:
    """Mini-batch gradient-descent trainer (Algorithm 1).

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` with a 2-class logit head.
    optimizer:
        Typically :class:`~repro.nn.optim.NAdam` per the paper.
    scheduler:
        Optional plateau scheduler stepped with the validation loss.
    loss_fn:
        Defaults to softmax cross-entropy (Section 3.4.3).
    post_step:
        Optional callable invoked after every optimizer step — used by
        the BNN detector to clamp master weights to [-1, 1] so the
        straight-through window of Eq. (10) stays active.
    max_grad_norm:
        Optional divergence guard: when set, the global (all-parameter)
        gradient L2 norm is checked after every backward pass, and a
        norm above the limit — or a non-finite one — raises
        :class:`GradientExplosionError` *before* the optimizer step.
        :class:`repro.train.TrainingRun` turns that into a rollback
        instead of a dead run.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        scheduler: ReduceLROnPlateau | None = None,
        loss_fn: SoftmaxCrossEntropy | None = None,
        post_step=None,
        max_grad_norm: float | None = None,
    ):
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError(
                f"max_grad_norm must be positive, got {max_grad_norm}"
            )
        self.model = model
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.loss_fn = loss_fn if loss_fn is not None else SoftmaxCrossEntropy()
        self.post_step = post_step
        self.max_grad_norm = max_grad_norm

    def grad_norm(self) -> float:
        """Global L2 norm over every trainable parameter's gradient."""
        total = 0.0
        for p in self.optimizer._trainable():
            total += float(np.vdot(p.grad, p.grad).real)
        return float(np.sqrt(total))

    def train_batch(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        self.model.zero_grad()
        logits = self.model.forward(images, training=True)
        loss = self.loss_fn.forward(logits, labels)
        if not np.isfinite(loss):
            raise FloatingPointError(f"non-finite training loss: {loss}")
        self.model.backward(self.loss_fn.backward())
        if self.max_grad_norm is not None:
            norm = self.grad_norm()
            if not np.isfinite(norm) or norm > self.max_grad_norm:
                raise GradientExplosionError(
                    f"gradient norm {norm:.4g} exceeds limit "
                    f"{self.max_grad_norm:.4g}"
                )
        self.optimizer.step()
        if self.post_step is not None:
            self.post_step()
        return loss

    def fit(
        self,
        train_loader: DataLoader,
        epochs: int,
        val_loader: DataLoader | None = None,
        verbose: bool = False,
    ) -> History:
        """Train for ``epochs`` epochs; returns the :class:`History`."""
        history = History()
        for epoch in range(epochs):
            epoch_loss, seen = 0.0, 0
            for images, labels in train_loader:
                loss = self.train_batch(images, labels)
                epoch_loss += loss * images.shape[0]
                seen += images.shape[0]
            if seen == 0:
                raise ValueError("train_loader produced no batches")
            train_loss = epoch_loss / seen
            history.train_loss.append(train_loss)
            history.lr.append(self.optimizer.lr)
            val_loss = None
            if val_loader is not None:
                val_loss = evaluate_loss(self.model, val_loader, self.loss_fn)
                history.val_loss.append(val_loss)
            if self.scheduler is not None:
                self.scheduler.step(val_loss)
            if verbose:
                msg = f"epoch {epoch + 1}/{epochs} train_loss={train_loss:.4f}"
                if val_loader is not None:
                    msg += f" val_loss={history.val_loss[-1]:.4f}"
                msg += f" lr={self.optimizer.lr:.4g}"
                print(msg)
        return history
