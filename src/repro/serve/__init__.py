"""Serving layer: batched, multi-worker hotspot inference as a service.

The paper's pitch is that binarized inference is cheap enough to deploy
at scale; this subpackage is the deployment story for the reproduction.
It turns the :class:`~repro.binary.inference.PackedBNN` engine into a
synchronous-API service with production plumbing:

* :class:`ModelRegistry` — named models, checkpoint loading, packed
  compilation with graceful float fallback;
* :class:`MicroBatcher` — coalesces concurrent single-clip requests
  into engine batches (``max_batch`` / ``max_wait_ms``);
* :class:`WorkerPool` — shards full-layout sliding-window scans across
  threads, deterministically;
* :class:`RasterCache` — LRU geometry-keyed raster reuse;
* :class:`ServiceMetrics` — counters, latency histograms, batch and
  cache statistics via ``HotspotService.stats()``;
* :class:`HotspotService` — the front door tying the above together;
* :class:`ClusterService` (:mod:`repro.serve.cluster`) — the same API
  served by a supervised fleet of crash-isolated worker *processes*:
  shared-memory frames with SHA-256 integrity digests, heartbeats,
  failover, respawn with backoff, crash-loop quarantine, and rolling
  checkpoint rollout with a canary parity probe.

Fault tolerance rides on top (``docs/serving.md`` → "Failure modes &
guarantees"): per-request **deadlines** (typed
:class:`DeadlineExceeded`), bounded admission queues with a block/shed
**backpressure** policy (:class:`ServiceOverloaded`), **poison
quarantine** by batch bisection, degraded :class:`ScanReport`\\ s with
explicit ``failed_ranges``, checkpoint content checksums
(:class:`CheckpointError`), a :meth:`HotspotService.health` probe, and
a deterministic :class:`FaultInjector` for chaos-testing all of it.

Quickstart::

    from repro.serve import HotspotService
    service = HotspotService.from_model(trained_model, image_size=32)
    prediction = service.classify(clip)          # one Clip or raster
    report = service.scan(ScanRequest(layout, window=1024, stride=512))
    print(service.stats())
"""

from .batcher import MicroBatcher
from .benchmark import (
    ModeResult,
    measure_cluster_serving,
    measure_serving,
    serving_table_rows,
)
from .cache import PlaneCache, RasterCache, geometry_key
from .cluster import ClusterService, ReplicaState
from .errors import (
    CheckpointError,
    DeadlineExceeded,
    FrameIntegrityError,
    RolloutError,
    ServeError,
    ServiceOverloaded,
    ShardError,
    WorkerCrashError,
)
from .faults import FaultInjector, FaultRule, FrameFaults, InjectedFault
from .metrics import LatencyHistogram, ServiceMetrics
from .pool import ShardOutcome, WorkerPool, shard_slices
from .registry import ModelEntry, ModelRegistry, compile_engine, model_from_meta
from .service import (
    HotspotService,
    extract_window,
    plane_scan_scale,
    window_origins,
)
from .types import (
    ChipScanReport,
    ChipScanRequest,
    ClipRequest,
    HealthReport,
    HealthState,
    Prediction,
    ScanHit,
    ScanReport,
    ScanRequest,
)

__all__ = [
    "MicroBatcher",
    "ServeError",
    "DeadlineExceeded",
    "ServiceOverloaded",
    "ShardError",
    "CheckpointError",
    "FrameIntegrityError",
    "WorkerCrashError",
    "RolloutError",
    "ClusterService",
    "ReplicaState",
    "FaultInjector",
    "FaultRule",
    "FrameFaults",
    "InjectedFault",
    "HealthReport",
    "HealthState",
    "ShardOutcome",
    "ModeResult",
    "measure_cluster_serving",
    "measure_serving",
    "serving_table_rows",
    "RasterCache",
    "PlaneCache",
    "geometry_key",
    "LatencyHistogram",
    "ServiceMetrics",
    "WorkerPool",
    "shard_slices",
    "ModelEntry",
    "ModelRegistry",
    "compile_engine",
    "model_from_meta",
    "HotspotService",
    "extract_window",
    "window_origins",
    "plane_scan_scale",
    "ClipRequest",
    "Prediction",
    "ScanHit",
    "ScanReport",
    "ScanRequest",
    "ChipScanRequest",
    "ChipScanReport",
]
