"""Micro-batching queue: coalesce single-clip requests into batches.

The engines (:class:`~repro.binary.inference.PackedBNN` and the float
fallback) amortize their per-invocation overhead — im2col setup, bit
packing, BLAS dispatch — across the batch dimension, so serving one
clip per call wastes most of the machine.  The batcher runs one
consumer thread that drains a queue: the first waiting request opens a
batch, then the thread keeps collecting until either ``max_batch``
requests are in hand or ``max_wait_ms`` has elapsed since the batch
opened, stacks the inputs, and runs the engine once.

Every per-sample operation in both engines (convolution, frozen
batch-norm affine, pooling, dense head) is independent of the other
samples in the batch, so predictions are **bit-identical regardless of
how requests happen to coalesce** — the test suite pins this down.

Fault tolerance (the coalescing flip side — one bad request must not
take down the batch it happened to share):

* **Validation at the door.**  ``submit()`` rejects inputs whose shape
  or dtype disagrees with the batch contract (locked in by the first
  accepted request), so a malformed request raises in the *caller*,
  never poisons ``np.concatenate`` in the consumer thread.
* **Backpressure.**  The queue is bounded (``queue_depth``); when it is
  full, the ``overflow`` policy either blocks the submitter (``"block"``,
  bounded by its deadline) or rejects immediately with
  :class:`~repro.serve.errors.ServiceOverloaded` (``"shed"``).
* **Deadlines.**  ``submit(x, timeout=...)`` stamps a deadline on the
  request: it is shed with :class:`DeadlineExceeded` if still queued
  when it expires, and ``infer`` converts a wait timeout into the same
  typed error instead of blocking forever on a hung engine.
* **Poison quarantine.**  When the engine raises on a multi-request
  batch, the batch is bisected and re-run so the poison request(s) fail
  alone and every healthy co-batched request still gets its
  (bit-identical) result.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from .errors import DeadlineExceeded, ServiceOverloaded
from .metrics import ServiceMetrics

__all__ = ["MicroBatcher"]

_SHUTDOWN = object()

#: How long (seconds) a blocked ``submit()`` waits between admission
#: attempts.  The lock is never held while waiting, so the slice bounds
#: only the latency of noticing a freed slot / a concurrent ``close()``.
_ADMISSION_SLICE_S = 0.01


class _Item:
    """One queued request: input, future, and optional deadline."""

    __slots__ = ("x", "future", "deadline")

    def __init__(self, x: np.ndarray, future: Future,
                 deadline: float | None = None):
        self.x = x
        self.future = future
        self.deadline = deadline  #: ``time.monotonic()`` expiry, or None


class MicroBatcher:
    """Coalesces single-sample inference calls into engine batches.

    Parameters
    ----------
    infer_fn:
        Callable mapping a stacked input batch ``(n, c, h, w)`` to an
        output array with leading dimension ``n`` (e.g. an engine's
        ``forward``).
    max_batch:
        Upper bound on clips per engine invocation.
    max_wait_ms:
        How long an open batch waits for more requests before running.
        ``0`` degenerates to per-request invocation (useful as the
        unbatched baseline in benchmarks).
    metrics:
        Optional :class:`ServiceMetrics` receiving batch observations.
    queue_depth:
        Admission-queue bound.  ``None`` keeps the legacy unbounded
        queue (no backpressure, overload means memory growth).
    overflow:
        Full-queue policy: ``"block"`` waits for a slot (up to the
        request deadline), ``"shed"`` raises
        :class:`ServiceOverloaded` immediately.
    """

    def __init__(
        self,
        infer_fn,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        metrics: ServiceMetrics | None = None,
        queue_depth: int | None = None,
        overflow: str = "block",
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if overflow not in ("block", "shed"):
            raise ValueError(
                f"overflow must be 'block' or 'shed', got {overflow!r}"
            )
        self._infer_fn = infer_fn
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics
        self.queue_depth = queue_depth
        self.overflow = overflow
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth or 0)
        self._closed = False
        # guards the closed flag and queue puts so a submit can never
        # land behind the shutdown sentinel, and the input contract
        self._lock = threading.Lock()
        self._contract: tuple[tuple[int, ...], np.dtype] | None = None
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # -- public API ------------------------------------------------------

    def _validate(self, x: np.ndarray) -> np.ndarray:
        """Canonicalize to ``(1, c, h, w)`` and enforce the batch contract.

        The first accepted request locks in the sample shape and dtype;
        later mismatches raise ``ValueError`` here, at the door, instead
        of blowing up ``np.concatenate`` inside the consumer thread and
        failing every co-batched request.
        """
        x = np.asarray(x)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4 or x.shape[0] != 1:
            raise ValueError(
                f"expected one sample (c, h, w) or (1, c, h, w), got {x.shape}"
            )
        if not (np.issubdtype(x.dtype, np.number)
                or np.issubdtype(x.dtype, np.bool_)):
            raise ValueError(f"expected a numeric sample, got dtype {x.dtype}")
        with self._lock:
            if self._contract is None:
                self._contract = (x.shape[1:], x.dtype)
            else:
                shape, dtype = self._contract
                if x.shape[1:] != shape:
                    raise ValueError(
                        f"sample shape {x.shape[1:]} does not match this "
                        f"batcher's contract {shape}"
                    )
                if x.dtype != dtype:
                    raise ValueError(
                        f"sample dtype {x.dtype} does not match this "
                        f"batcher's contract {dtype} (mixed dtypes would "
                        "silently promote co-batched requests)"
                    )
        return x

    def submit(self, x: np.ndarray, timeout: float | None = None) -> Future:
        """Enqueue one sample ``(c, h, w)`` or ``(1, c, h, w)``.

        Returns a future resolving to that sample's output row (leading
        batch dimension stripped).  ``timeout`` (seconds) stamps a
        deadline on the request: admission blocks at most that long
        under the ``"block"`` overflow policy, and a request still
        queued past its deadline fails with :class:`DeadlineExceeded`
        instead of running.
        """
        x = self._validate(x)
        future: Future = Future()
        deadline = None if timeout is None else time.monotonic() + timeout
        item = _Item(x, future, deadline)
        # The lock only ever guards non-blocking work (closed check +
        # put_nowait) so a full queue under a wedged consumer can never
        # wedge *other* submitters or close() on the lock.  Under the
        # "block" policy the wait happens outside the lock, in short
        # slices that re-check both the closed flag and the deadline.
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("submit() on a closed MicroBatcher")
                try:
                    self._queue.put_nowait(item)
                    return future
                except queue.Full:
                    pass
            if self.overflow == "shed":
                if self.metrics is not None:
                    self.metrics.record_shed()
                raise ServiceOverloaded(
                    f"admission queue full ({self.queue_depth} deep); "
                    "request shed"
                )
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                if self.metrics is not None:
                    self.metrics.record_timeout()
                raise DeadlineExceeded(
                    f"request not admitted within {timeout}s "
                    f"(queue full at depth {self.queue_depth})",
                    timeout_s=timeout, stage="admission",
                )
            time.sleep(
                _ADMISSION_SLICE_S if remaining is None
                else min(_ADMISSION_SLICE_S, remaining)
            )

    def infer(self, x: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience: submit one sample and wait.

        ``timeout`` is one deadline over the whole call — admission and
        result wait combined, never 2x.  A request that has not resolved
        in time is cancelled (if still queued) and
        :class:`DeadlineExceeded` raised — the caller never hangs on a
        wedged engine.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        future = self.submit(x, timeout=timeout)
        remaining = (
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        try:
            return future.result(timeout=remaining)
        except FutureTimeoutError:
            future.cancel()
            if self.metrics is not None:
                self.metrics.record_timeout()
            raise DeadlineExceeded(
                f"inference did not complete within {timeout}s",
                timeout_s=timeout, stage="infer",
            ) from None

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the consumer thread after draining queued requests.

        Raises ``RuntimeError`` when the consumer fails to stop within
        ``timeout`` — a wedged batcher (an engine call that never
        returns) must be visible, not silently leaked.  Safe to call
        repeatedly; concurrent ``submit()`` either lands before the
        shutdown sentinel (and is drained) or raises cleanly.
        """
        with self._lock:
            self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._thread.is_alive():
            try:
                # bounded put: a full queue with a wedged consumer would
                # otherwise hang close() itself.  Re-attempted on every
                # close() so a retry after a transient backlog can still
                # deliver the sentinel (extra sentinels are harmless —
                # the drain loop skips them).
                self._queue.put(_SHUTDOWN, timeout=timeout)
            except queue.Full:
                pass  # consumer wedged; the join below reports it
        remaining = (
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        self._thread.join(timeout=remaining)
        if self._thread.is_alive():
            raise RuntimeError(
                f"MicroBatcher consumer thread failed to stop within "
                f"{timeout}s; the engine call is likely wedged and its "
                "thread is leaked"
            )

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- consumer loop ---------------------------------------------------

    def _collect(self, first: _Item) -> tuple[list[_Item], bool]:
        """Fill a batch starting from ``first``; returns (batch, stop)."""
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _expire(self, batch: list[_Item]) -> list[_Item]:
        """Shed items whose deadline passed while they sat in the queue."""
        now = time.monotonic()
        live = []
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                if not item.future.cancelled():
                    item.future.set_exception(DeadlineExceeded(
                        "request expired in the admission queue",
                        stage="queue",
                    ))
                    if self.metrics is not None:
                        self.metrics.record_timeout()
            else:
                live.append(item)
        return live

    def _execute(self, batch: list[_Item], quarantining: bool = False) -> None:
        """Run one batch; on failure bisect to isolate poison requests.

        A single-request batch that fails is the poison itself: its
        future gets the engine's exception.  A multi-request batch that
        fails is split in half and each half re-run — healthy requests
        eventually land in an all-healthy sub-batch and succeed with
        outputs bit-identical to any other coalescing (per-sample
        independence, the serving layer's core invariant).  Cost is
        O(log n) extra engine calls per poison request, paid only on
        failure.
        """
        started = time.perf_counter()
        try:
            stacked = np.concatenate([item.x for item in batch], axis=0)
            outputs = self._infer_fn(stacked)
        except Exception as exc:
            if len(batch) == 1:
                if not batch[0].future.cancelled():
                    batch[0].future.set_exception(exc)
                if self.metrics is not None and quarantining:
                    self.metrics.record_quarantine()
                return
            if self.metrics is not None:
                self.metrics.record_batch_split()
            mid = len(batch) // 2
            self._execute(batch[:mid], quarantining=True)
            self._execute(batch[mid:], quarantining=True)
            return
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if self.metrics is not None:
            self.metrics.record_batch(len(batch), elapsed_ms)
        for row, item in enumerate(batch):
            if not item.future.cancelled():
                item.future.set_result(outputs[row])

    def _run_batch(self, batch: list[_Item]) -> None:
        batch = self._expire(batch)
        if batch:
            self._execute(batch)

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch, stop = self._collect(item)
            self._run_batch(batch)
            if stop:
                break
        # resolve anything enqueued after shutdown began
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._run_batch([item])
