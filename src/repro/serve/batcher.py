"""Micro-batching queue: coalesce single-clip requests into batches.

The engines (:class:`~repro.binary.inference.PackedBNN` and the float
fallback) amortize their per-invocation overhead — im2col setup, bit
packing, BLAS dispatch — across the batch dimension, so serving one
clip per call wastes most of the machine.  The batcher runs one
consumer thread that drains a queue: the first waiting request opens a
batch, then the thread keeps collecting until either ``max_batch``
requests are in hand or ``max_wait_ms`` has elapsed since the batch
opened, stacks the inputs, and runs the engine once.

Every per-sample operation in both engines (convolution, frozen
batch-norm affine, pooling, dense head) is independent of the other
samples in the batch, so predictions are **bit-identical regardless of
how requests happen to coalesce** — the test suite pins this down.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

import numpy as np

from .metrics import ServiceMetrics

__all__ = ["MicroBatcher"]

_SHUTDOWN = object()


class _Item:
    """One queued request: a single-sample input plus its future."""

    __slots__ = ("x", "future")

    def __init__(self, x: np.ndarray, future: Future):
        self.x = x
        self.future = future


class MicroBatcher:
    """Coalesces single-sample inference calls into engine batches.

    Parameters
    ----------
    infer_fn:
        Callable mapping a stacked input batch ``(n, c, h, w)`` to an
        output array with leading dimension ``n`` (e.g. an engine's
        ``forward``).
    max_batch:
        Upper bound on clips per engine invocation.
    max_wait_ms:
        How long an open batch waits for more requests before running.
        ``0`` degenerates to per-request invocation (useful as the
        unbatched baseline in benchmarks).
    metrics:
        Optional :class:`ServiceMetrics` receiving batch observations.
    """

    def __init__(
        self,
        infer_fn,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        metrics: ServiceMetrics | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._infer_fn = infer_fn
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # -- public API ------------------------------------------------------

    def submit(self, x: np.ndarray) -> Future:
        """Enqueue one sample ``(c, h, w)`` or ``(1, c, h, w)``.

        Returns a future resolving to that sample's output row (leading
        batch dimension stripped).
        """
        if self._closed:
            raise RuntimeError("submit() on a closed MicroBatcher")
        x = np.asarray(x)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4 or x.shape[0] != 1:
            raise ValueError(
                f"expected one sample (c, h, w) or (1, c, h, w), got {x.shape}"
            )
        future: Future = Future()
        self._queue.put(_Item(x, future))
        return future

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Synchronous convenience: submit one sample and wait."""
        return self.submit(x).result()

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the consumer thread after draining queued requests."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- consumer loop ---------------------------------------------------

    def _collect(self, first: _Item) -> tuple[list[_Item], bool]:
        """Fill a batch starting from ``first``; returns (batch, stop)."""
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _run_batch(self, batch: list[_Item]) -> None:
        started = time.perf_counter()
        try:
            stacked = np.concatenate([item.x for item in batch], axis=0)
            outputs = self._infer_fn(stacked)
        except Exception as exc:  # surface the failure on every future
            for item in batch:
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            return
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if self.metrics is not None:
            self.metrics.record_batch(len(batch), elapsed_ms)
        for row, item in enumerate(batch):
            if not item.future.cancelled():
                item.future.set_result(outputs[row])

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch, stop = self._collect(item)
            self._run_batch(batch)
            if stop:
                break
        # resolve anything enqueued after shutdown began
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._run_batch([item])
