"""Serving-throughput measurement shared by the CLI and benchmark suite.

Four serving configurations over the same clip set:

* single-request float — the naive baseline: one float-simulation
  engine invocation per clip (``max_batch=1``);
* single-request packed — the XNOR/popcount engine, still one clip per
  invocation;
* batched float — micro-batched float simulation;
* batched packed — the deployment configuration: micro-batched
  XNOR/popcount.

Besides throughput the measurement returns every mode's labels and
scores so callers can assert the serving layer's core invariant:
batching and backend choice change *speed*, while packed batched vs
packed unbatched predictions stay bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..nn.module import Module
from .service import HotspotService

__all__ = [
    "ModeResult",
    "measure_cluster_serving",
    "measure_serving",
    "serving_table_rows",
]


@dataclass
class ModeResult:
    """Throughput and predictions of one serving configuration."""

    mode: str  #: ``"single"`` or ``"batched"``
    backend: str  #: ``"packed"`` or ``"float"`` (as actually served)
    clips: int
    seconds: float
    mean_batch_size: float
    labels: np.ndarray
    scores: np.ndarray

    @property
    def clips_per_sec(self) -> float:
        """Served clips per second of wall time."""
        return self.clips / self.seconds if self.seconds > 0 else float("inf")


def _run_mode(
    model: Module,
    image_size: int,
    images: np.ndarray,
    prefer_packed: bool,
    batched: bool,
    max_batch: int,
    max_wait_ms: float,
) -> ModeResult:
    service = HotspotService.from_model(
        model,
        image_size,
        prefer_packed=prefer_packed,
        max_batch=max_batch if batched else 1,
        max_wait_ms=max_wait_ms if batched else 0.0,
    )
    with service:
        # warm the engine (first-invocation allocations, thread spin-up)
        # so the measurement reflects steady-state serving
        service.classify_many(list(images[:2]))
        service.metrics.reset()
        started = time.perf_counter()
        if batched:
            predictions = service.classify_many(list(images))
        else:
            predictions = [service.classify(image) for image in images]
        seconds = time.perf_counter() - started
        mean_batch = service.metrics.mean_batch_size
    return ModeResult(
        mode="batched" if batched else "single",
        backend=predictions[0].backend,
        clips=len(predictions),
        seconds=seconds,
        mean_batch_size=mean_batch,
        labels=np.array([p.label for p in predictions], dtype=np.int64),
        scores=np.array([p.score for p in predictions]),
    )


def measure_serving(
    model: Module,
    image_size: int,
    images: np.ndarray,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
) -> dict[str, ModeResult]:
    """Measure the four serving configurations on one clip set.

    ``images`` is a stack of square 0/1 rasters ``(n, s, s)`` at the
    model's input side.  Returns results keyed ``"single-float"``,
    ``"single-packed"``, ``"batched-float"``, ``"batched-packed"``.
    """
    results: dict[str, ModeResult] = {}
    for prefer_packed in (False, True):
        for batched in (False, True):
            result = _run_mode(
                model, image_size, images, prefer_packed, batched,
                max_batch, max_wait_ms,
            )
            results[f"{result.mode}-{result.backend}"] = result
    return results


def measure_cluster_serving(
    model: Module,
    image_size: int,
    images: np.ndarray,
    processes: int = 2,
    max_batch: int = 64,
) -> dict[str, ModeResult]:
    """Measure scale-out: one process vs a supervised worker fleet.

    The same saturated request set (all clips submitted at once, so
    admission can batch and fan out freely) is served twice:

    * ``"single-process"`` — the in-process :class:`HotspotService`
      with the packed engine, the best one-process configuration;
    * ``"cluster-<n>"`` — a :class:`ClusterService` fleet of
      ``processes`` worker processes behind the same API.

    Both results carry labels and scores so callers can assert the
    fleet invariant: scale-out changes requests/sec, never a
    prediction.  On a single-CPU host the cluster pays process and
    shared-memory overhead without gaining parallel compute — callers
    should gate speedup assertions on ``os.cpu_count()``.
    """
    from .cluster import ClusterService

    results: dict[str, ModeResult] = {}
    request_set = list(images)
    with HotspotService.from_model(
        model, image_size, prefer_packed=True,
        max_batch=max_batch, max_wait_ms=2.0,
    ) as service:
        service.classify_many(request_set[:2])  # warm-up
        started = time.perf_counter()
        predictions = service.classify_many(request_set)
        seconds = time.perf_counter() - started
    results["single-process"] = ModeResult(
        mode="single-process", backend=predictions[0].backend,
        clips=len(predictions), seconds=seconds,
        mean_batch_size=float(min(max_batch, len(request_set))),
        labels=np.array([p.label for p in predictions], dtype=np.int64),
        scores=np.array([p.score for p in predictions]),
    )

    with ClusterService.from_model(
        model, image_size, processes=processes, max_batch=max_batch,
    ) as service:
        service.classify_many(request_set[:2])  # warm-up (compiles fleet)
        started = time.perf_counter()
        predictions = service.classify_many(request_set)
        seconds = time.perf_counter() - started
    results[f"cluster-{processes}"] = ModeResult(
        mode=f"cluster-{processes}", backend=predictions[0].backend,
        clips=len(predictions), seconds=seconds,
        mean_batch_size=float(min(max_batch, len(request_set))),
        labels=np.array([p.label for p in predictions], dtype=np.int64),
        scores=np.array([p.score for p in predictions]),
    )
    return results


def serving_table_rows(results: dict[str, ModeResult]) -> list[dict[str, object]]:
    """Paper-style table rows, with speedups vs single-request float."""
    baseline = results["single-float"].clips_per_sec
    rows = []
    for key in ("single-float", "single-packed", "batched-float", "batched-packed"):
        result = results[key]
        rows.append({
            "Serving mode": key,
            "Clips": result.clips,
            "Time (s)": round(result.seconds, 3),
            "Clips/s": round(result.clips_per_sec, 1),
            "Mean batch": round(result.mean_batch_size, 1),
            "Speedup": round(result.clips_per_sec / baseline, 2),
        })
    return rows
