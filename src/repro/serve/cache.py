"""LRU rasterization cache keyed by clip geometry.

Rasterizing a clip (:func:`repro.litho.raster.rasterize`) walks every
rectangle and is the dominant per-request cost for geometry requests.
Real workloads re-submit identical clips constantly — the same library
cell instantiated thousands of times across a chip — so the service
keeps a bounded LRU cache keyed by the clip's exact geometry (window
size, raster resolution, mode, and the multiset of rectangles).  Two
`Clip` objects with the same rectangles hit the same entry regardless
of insertion order or object identity.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

import numpy as np

from ..litho.geometry import Clip
from ..litho.raster import rasterize, rasterize_plane

__all__ = ["RasterCache", "PlaneCache", "geometry_key"]


def geometry_key(clip: Clip, pixels: int, mode: str) -> tuple:
    """Stable hashable key for a clip's raster: geometry + resolution.

    Rectangles are sorted so the key is insertion-order independent.
    """
    rects = tuple(sorted((r.x0, r.y0, r.x1, r.y1) for r in clip.rects))
    return (clip.size, pixels, mode, rects)


class _ArrayLRU:
    """Lock-protected LRU of read-only arrays, keyed by hashable tuples.

    Shared machinery of :class:`RasterCache` and :class:`PlaneCache`;
    subclasses provide the key and the build function.  Cached arrays
    are returned with ``writeable=False`` — callers share the stored
    array and must copy before mutating.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0

    def _get_or_build(self, key: tuple, build) -> np.ndarray:
        with self._lock:
            image = self._entries.get(key)
            if image is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return image
            self.misses += 1
        # build outside the lock: misses are the expensive path and
        # concurrent misses on the same key just do redundant work once
        image = build()
        image.flags.writeable = False
        with self._lock:
            self._entries[key] = image
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return image

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


class RasterCache(_ArrayLRU):
    """Thread-safe LRU cache of rasterized clip images."""

    def __init__(self, capacity: int = 2048):
        super().__init__(capacity)

    def get(self, clip: Clip, pixels: int, mode: str = "binary") -> np.ndarray:
        """Return the raster of ``clip``, computing and caching on miss."""
        key = geometry_key(clip, pixels, mode)
        return self._get_or_build(key, lambda: rasterize(clip, pixels, mode))


class PlaneCache(_ArrayLRU):
    """Thread-safe LRU cache of full-layout plane rasters.

    Planes are orders of magnitude larger than window rasters (a whole
    layout at clip resolution), so the default capacity is small — a
    handful of layouts under active scanning.  Keyed by the layout's
    exact geometry plus the plane resolution, like :class:`RasterCache`.

    **Region-aware chip mode.**  Full-chip streaming scans
    (:mod:`repro.chip`) cannot key by geometry — hashing millions of
    rectangles per tile lookup would dwarf rasterization — so chip tile
    planes are keyed instead by an opaque session ``token`` plus the
    tile's nm region: the caller owns token freshness (a token names
    one layout *state*; edit the layout, and either mint a new token or
    invalidate the touched regions).  :meth:`invalidate_chip_regions`
    is the edit hook the ECO re-scan path uses: it drops exactly the
    entries whose region strictly overlaps a dirty rectangle, so clean
    tiles stay warm across re-scans.  Both key shapes share one LRU
    (chip keys are tagged, so they can never collide with geometry
    keys).
    """

    def __init__(self, capacity: int = 8):
        super().__init__(capacity)

    def get(self, layout: Clip, scale: float, mode: str = "binary") -> np.ndarray:
        """Return the plane raster of ``layout``, caching on miss."""
        pixels = round(layout.size / scale)
        key = geometry_key(layout, pixels, mode)
        return self._get_or_build(
            key, lambda: rasterize_plane(layout, scale, mode)
        )

    def get_chip_tile(
        self, token: str, region, scale: int, mode: str, build
    ) -> np.ndarray:
        """Return the tile plane of ``region`` under ``token``.

        ``build`` is a zero-argument callable producing the plane on a
        miss (the chip scanner rasterizes from its spatial index).
        """
        key = ("chip", token, (region.x0, region.y0, region.x1, region.y1),
               scale, mode)
        return self._get_or_build(key, build)

    def invalidate_chip_regions(self, token: str, rects) -> int:
        """Drop ``token``'s tile entries overlapping any of ``rects``.

        Overlap is strict (shared borders do not count), matching the
        dirty-window semantics of :class:`repro.chip.eco.\
DirtyRegionTracker`: a rectangle touching a tile's border cannot have
        changed any pixel of its raster.  Returns the number of entries
        dropped.
        """
        dirty = [(r.x0, r.y0, r.x1, r.y1) for r in rects]
        with self._lock:
            stale = [
                key for key in self._entries
                if key[0] == "chip" and key[1] == token and any(
                    key[2][0] < x1 and x0 < key[2][2]
                    and key[2][1] < y1 and y0 < key[2][3]
                    for x0, y0, x1, y1 in dirty
                )
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def invalidate_token(self, token: str) -> int:
        """Drop every chip-tile entry of one session token."""
        with self._lock:
            stale = [
                key for key in self._entries
                if key[0] == "chip" and key[1] == token
            ]
            for key in stale:
                del self._entries[key]
        return len(stale)
