"""Supervised multi-process serving: crash-isolated worker fleet.

Public surface:

* :class:`ClusterService` — the router: admission, batching, shared-
  memory transport, heartbeat supervision, failover, respawn/backoff/
  quarantine, and rolling checkpoint rollout behind the familiar
  classify/scan API.
* :class:`ReplicaState` — per-slot lifecycle states (READY, DRAINING,
  QUARANTINED, ...) surfaced by ``replica_states()`` and health.
* :class:`ModelSpec` / the :mod:`.messages` protocol and the
  :mod:`.shm` frame transport — for tests and tooling that talk to
  workers directly.

The seeded chaos gate lives in :mod:`.parity` (``python -m
repro.serve.cluster.parity``): random worker SIGKILLs mid-scan must
leave the report bit-identical to an unfaulted run, and a rolling
rollout under sustained load must drop zero requests.
"""

from .fleet import ReplicaState, WorkerHandle
from .messages import ModelSpec, WorkerConfig
from .service import ClusterService
from .shm import Frame, FrameAttachment, FrameRef, put_frame, read_frame

__all__ = [
    "ClusterService",
    "ReplicaState",
    "WorkerHandle",
    "ModelSpec",
    "WorkerConfig",
    "Frame",
    "FrameAttachment",
    "FrameRef",
    "put_frame",
    "read_frame",
]
