"""Replica bookkeeping: one slot's process, queues, and lifecycle state.

The fleet is a fixed array of **slots**; each slot holds at most one
live worker process at a time, and each (re)spawn bumps the slot's
``generation``.  Queues are created fresh per generation — a SIGKILLed
worker can die holding its queue's internal lock, which would wedge any
process that kept using it, so nothing from a dead generation is ever
reused.  Stale messages are likewise fenced by generation: a result
carrying an old generation is dropped by the router.

The state machine (:class:`ReplicaState`)::

    STARTING ──ready──> READY <──readmit── DRAINING
       │                  │  └──drain (rollout)──^
       │ death/timeout    │ death/timeout
       v                  v
      DEAD ──backoff──> (respawn: STARTING)
       │
       └─ crash loop ──> QUARANTINED (terminal until operator reset)

Only READY replicas receive new work (DRAINING ones finish what they
have; a rollout's canary probe is the single exception, pinned to the
drained replica on purpose).  DEAD slots respawn after a capped
exponential backoff; a slot that keeps dying (``crashes`` consecutive
losses without a completed task) is QUARANTINED so a poisoned replica
cannot burn CPU in a respawn loop while its siblings serve.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

__all__ = ["ReplicaState", "WorkerHandle"]


class ReplicaState(enum.Enum):
    """Lifecycle state of one fleet slot."""

    STARTING = "starting"  #: process spawned, engines still compiling
    READY = "ready"  #: accepting new tasks
    DRAINING = "draining"  #: finishing in-flight work, no new tasks
    DEAD = "dead"  #: process gone; respawn scheduled (or pending close)
    QUARANTINED = "quarantined"  #: crash-looped; no further respawns


@dataclass
class WorkerHandle:
    """Everything the router tracks about one slot.

    Mutable runtime record, guarded by the router's lock.  ``inflight``
    maps task-id -> dispatch time for the tasks this worker currently
    owns; on death the router fails them over to siblings.  ``crashes``
    counts *consecutive* losses — any completed task resets it, so only
    genuine crash loops reach the quarantine threshold.
    """

    slot: int
    generation: int = 0
    proc: object | None = None  #: multiprocessing.Process of the generation
    task_queue: object | None = None
    result_queue: object | None = None
    state: ReplicaState = ReplicaState.DEAD
    last_seen: float = 0.0  #: monotonic time of the last message received
    spawned_at: float = 0.0
    ping_seq: int = 0
    last_ping_at: float = 0.0
    inflight: dict[int, float] = field(default_factory=dict)
    crashes: int = 0  #: consecutive deaths without a completed task
    next_spawn_at: float = 0.0  #: monotonic respawn-not-before time
    tasks_done: int = 0  #: watermark from the worker's last pong
    #: per-model serving metadata reported by the live process
    #: (model name -> {backend, pipeline, fallback_reason, version})
    provenance: dict[str, dict[str, object]] = field(default_factory=dict)
    shutdown_requested: bool = False  #: orderly stop; death is expected
    timed_out: bool = False  #: the supervisor killed it for missed pongs

    @property
    def alive(self) -> bool:
        """Whether the slot's current process is running."""
        return self.proc is not None and self.proc.is_alive()

    @property
    def accepts_work(self) -> bool:
        """Whether the router may dispatch *new* tasks to this slot."""
        return self.state is ReplicaState.READY

    def touch(self) -> None:
        """Record proof of life (any message from the worker counts)."""
        self.last_seen = time.monotonic()
