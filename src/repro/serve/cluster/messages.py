"""Typed message protocol between the router and worker processes.

Everything crossing a ``multiprocessing`` queue is one of these frozen
dataclasses, so both sides dispatch on type instead of string-matching
dict keys.  Bulk array payloads never ride the queue — they go through
shared memory (:mod:`.shm`) and the messages carry only
:class:`~repro.serve.cluster.shm.FrameRef` handles.  Result logits are
small ``(n, 2)`` arrays and are cheap enough to pickle back.

:class:`ModelSpec` is how models cross the process boundary: the live
:class:`~repro.nn.module.Module` tree (plain Python + numpy, pickles
cleanly) plus the compile knobs.  Workers compile their *own* engine
from it — compiled engines hold locks and caches that neither pickle
nor should be shared — and report the resulting provenance (backend,
pass-pipeline signature, fallback reason) back to the router, which
aggregates it per replica in ``stats()`` and flags mixed-backend fleets
as DEGRADED in ``health()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults import FaultInjector
from .shm import FrameRef

__all__ = [
    "ModelSpec",
    "WorkerConfig",
    "PingMsg",
    "ShutdownMsg",
    "LoadModelMsg",
    "ReleaseFrameMsg",
    "ClassifyTask",
    "ScanShardTask",
    "ReadyMsg",
    "PongMsg",
    "ModelLoadedMsg",
    "TaskDoneMsg",
]


@dataclass(frozen=True)
class ModelSpec:
    """One model as shipped to workers: weights + compile knobs.

    ``version`` increments on every rolling rollout so provenance can
    tell which checkpoint generation a replica is serving; a fleet
    serving mixed versions (mid-rollout, or after an aborted one) is
    visibly DEGRADED, never silent.
    """

    name: str
    model: object  #: :class:`~repro.nn.module.Module` tree (picklable)
    image_size: int
    decision_bias: float = 0.0
    prefer_packed: bool = True
    backend: str | None = None
    passes: object = "default"
    version: int = 1


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs at spawn time."""

    slot: int  #: stable fleet slot index (survives respawns)
    generation: int  #: how many processes have occupied the slot
    models: tuple[ModelSpec, ...]
    #: chaos hook, shipped by pickle — each worker gets an independent
    #: copy with fresh call counters (deterministic per-worker schedule)
    faults: FaultInjector | None = None
    #: task-queue poll period; bounds how quickly shutdown is noticed
    poll_s: float = 0.05


# -- router -> worker ----------------------------------------------------


@dataclass(frozen=True)
class PingMsg:
    """Liveness probe; the worker answers with :class:`PongMsg`."""

    seq: int


@dataclass(frozen=True)
class ShutdownMsg:
    """Orderly stop: finish nothing, drop the queue, exit 0."""


@dataclass(frozen=True)
class LoadModelMsg:
    """Swap in a new model version (the rolling-rollout step)."""

    spec: ModelSpec


@dataclass(frozen=True)
class ReleaseFrameMsg:
    """Drop a cached frame attachment (scan plane no longer needed)."""

    name: str


@dataclass(frozen=True)
class ClassifyTask:
    """Score one prepared input batch ``(n, 1, s, s)`` from a frame."""

    task_id: int
    model: str
    version: int
    frame: FrameRef


@dataclass(frozen=True)
class ScanShardTask:
    """Score one contiguous origin-range shard of a plane scan.

    The frame holds the full 0/1 plane raster (uint8); ``band`` is the
    ``[y0, y1)`` pixel-row slice covering this shard's windows plus
    their receptive halo, and ``origins`` are window origins in *band*
    pixel coordinates.  Workers cache the attached plane frame and the
    per-band scan plan keyed by the frame digest, so the stem's
    full-convolution cost is paid once per (worker, band), not per
    task.  Window independence (the PR 2 plane-scan contract: a plan
    over any sub-plane scores fully-contained windows bit-identically
    to per-window inference) is what makes band-sharding exact.
    """

    task_id: int
    model: str
    version: int
    frame: FrameRef
    band: tuple[int, int]  #: [y0, y1) plane pixel rows shipped to the plan
    origins: tuple[tuple[int, int], ...]  #: window origins, band-local px
    window_px: int  #: window side in plane pixels (= model image size)
    batch_size: int = 64


# -- worker -> router ----------------------------------------------------


@dataclass(frozen=True)
class ReadyMsg:
    """Worker finished compiling its engines and is accepting tasks.

    ``provenance`` maps model name -> the replica's actual serving
    metadata: ``backend``, ``pipeline``, ``fallback_reason``,
    ``version``.  The router aggregates this in ``stats()`` and flags
    cross-replica mismatches in ``health()``.
    """

    slot: int
    generation: int
    pid: int
    provenance: dict[str, dict[str, object]] = field(default_factory=dict)


@dataclass(frozen=True)
class PongMsg:
    """Heartbeat reply: liveness plus the in-flight watermark."""

    slot: int
    generation: int
    seq: int
    tasks_done: int  #: monotone per-process completion counter


@dataclass(frozen=True)
class ModelLoadedMsg:
    """Outcome of a :class:`LoadModelMsg` (rollout step)."""

    slot: int
    name: str
    version: int
    provenance: dict[str, object] = field(default_factory=dict)
    error: str | None = None


@dataclass(frozen=True)
class TaskDoneMsg:
    """Result of one task.

    Exactly one of ``logits`` / ``error`` is set.  ``frame_corrupt``
    marks a failed SHA-256 digest check — the router re-creates the
    frame and resubmits instead of counting it as a scoring failure.
    ``version_mismatch`` marks a task the worker *refused* to score
    because it was admitted under a different checkpoint version than
    the replica serves (a failover race during a rollout) — the router
    requeues it to a version-matching replica instead of accepting a
    silently mixed-version response.
    """

    task_id: int
    slot: int
    generation: int
    logits: np.ndarray | None = None
    error: str | None = None
    frame_corrupt: bool = False
    version_mismatch: bool = False
