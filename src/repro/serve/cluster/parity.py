"""CI gate: the supervised cluster serves bit-identical under chaos.

Run as ``python -m repro.serve.cluster.parity``.  Four invariants, each
checked bit-for-bit against a single-process :class:`HotspotService`
reference on the same model:

1. **Fleet parity** — classify batches and a sliding-window scan served
   by a multi-process :class:`ClusterService` produce scores
   ``np.array_equal`` to the in-process reference (which replica scores
   a shard must never matter).
2. **Kill survival** — seeded random worker SIGKILLs mid-scan (a crash
   with a batch in flight) are absorbed by failover: the report is
   bit-identical to the unfaulted run and ``tasks_failed_over_total``
   proves the crash actually happened.
3. **Torn-frame rejection** — a shared-memory frame whose bytes are
   flipped after its SHA-256 digest is *refused* by every worker and
   transparently re-created by the router; the scan stays bit-identical
   and ``frame_retries_total`` proves the integrity check fired.
4. **Rolling rollout under load** — a checkpoint swap while a
   background thread hammers ``classify_many`` drops zero requests,
   shows a DRAINING replica mid-swap, and afterwards serves predictions
   bit-identical to a fresh reference compiled from the new weights.

``--quick`` shrinks the layout and skips the hang case for 1-CPU CI
runners (the fleet itself stays at two processes — crash isolation is
the point, not speedup).  Exit code 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from ...litho.geometry import Clip, Rect
from ...models.bnn_resnet import build_bnn_resnet
from ..faults import FaultInjector
from ..service import HotspotService
from ..types import ClipRequest, ScanRequest
from .service import ClusterService


def _gate_model(image_size: int, seed: int):
    """The small warmed-up BNN every gate check scores with."""
    model = build_bnn_resnet((4, 8), scaling="xnor", seed=seed)
    rng = np.random.default_rng(99)
    warmup = (rng.random((8, 1, image_size, image_size)) > 0.5) * 2.0 - 1.0
    model.forward(warmup, training=True)  # give BN non-trivial stats
    return model


def _synth_layout(size: int, seed: int) -> Clip:
    """A dense random rectangle soup with hotspot-like congestion."""
    rng = np.random.default_rng(seed)
    clip = Clip(size)
    for _ in range(max(24, size // 6)):
        x0 = int(rng.integers(0, size - 40))
        y0 = int(rng.integers(0, size - 40))
        w = int(rng.integers(8, 40))
        h = int(rng.integers(8, 40))
        clip.add(Rect(x0, y0, x0 + w, y0 + h))
    return clip


def _hit_key(report):
    return [(h.x0, h.y0, h.x1, h.y1, h.score) for h in report.hits]


def _cluster(model, args, faults=None, **overrides):
    knobs = dict(
        processes=args.processes,
        heartbeat_s=0.2,
        heartbeat_timeout_s=3.0,
        respawn_backoff_s=0.1,
        faults=faults,
    )
    knobs.update(overrides)
    return ClusterService.from_model(model, image_size=args.image_size,
                                     **knobs)


def _scan_check(label, model, args, req, reference_key, faults,
                counter=None) -> int:
    """One chaos scan: must match the reference and trip ``counter``."""
    with _cluster(model, args, faults=faults) as svc:
        report = svc.scan(req, timeout=args.timeout)
        stats = svc.stats()
    clean = not report.degraded and _hit_key(report) == reference_key
    tripped = counter is None or stats[counter] >= 1
    detail = f"{stats[counter]} {counter}" if counter else f"{len(report.hits)} hits"
    print(f"[cluster] {label}: "
          f"{'OK' if clean and tripped else 'MISMATCH'} ({detail})")
    return 0 if clean and tripped else 1


def chaos_gate(args) -> int:
    """The gate body; returns the failure count."""
    model = _gate_model(args.image_size, args.seed)
    layout = _synth_layout(args.size, args.seed + 1)
    req = ScanRequest(layout=layout, window=args.window, stride=args.stride)

    rng = np.random.default_rng(args.seed)
    rasters = [(rng.random((args.image_size, args.image_size)) > 0.5)
               .astype(np.float64) for _ in range(8)]
    clip_reqs = lambda: [ClipRequest(image=r) for r in rasters]  # noqa: E731

    with HotspotService.from_model(model, image_size=args.image_size) as ref:
        ref_scan_key = _hit_key(ref.scan(req))
        ref_scores = [ref.classify(r).score for r in clip_reqs()]

    failures = 0

    # 1. unfaulted fleet parity: classify + scan, bit-identical
    with _cluster(model, args) as svc:
        preds = svc.classify_many(clip_reqs(), timeout=args.timeout)
        classify_ok = [p.score for p in preds] == ref_scores
        report = svc.scan(req, timeout=args.timeout)
        scan_ok = not report.degraded and _hit_key(report) == ref_scan_key
    print(f"[cluster] fleet parity: "
          f"{'OK' if classify_ok and scan_ok else 'MISMATCH'} "
          f"({len(rasters)} clips, {len(report.hits)} hits, "
          f"{args.processes} processes)")
    failures += 0 if classify_ok and scan_ok else 1

    # 2. seeded SIGKILLs mid-scan: failover keeps the report identical
    kill_calls = sorted(
        int(k) for k in rng.choice(np.arange(1, 6),
                                   size=min(args.kills, 5), replace=False)
    )
    faults = FaultInjector(seed=args.seed)
    faults.add_kill("worker", on_calls=kill_calls)
    failures += _scan_check(
        f"kill survival (SIGKILL on task {kill_calls})", model, args, req,
        ref_scan_key, faults, counter="tasks_failed_over_total",
    )

    # 3. torn frame: digest check fires, retry stays bit-identical
    faults = FaultInjector(seed=args.seed)
    faults.add_tear("frame", times=1)
    failures += _scan_check(
        "torn-frame rejection", model, args, req, ref_scan_key, faults,
        counter="frame_retries_total",
    )

    # 4. hang past the per-task deadline (skipped in --quick: the
    #    supervisor must wait out the stall, which costs wall time).
    #    task_timeout_s is the knob that condemns a worker holding
    #    in-flight work; heartbeat_timeout_s only covers idle silence.
    if not args.quick:
        faults = FaultInjector(seed=args.seed)
        faults.add_hang("worker", hang_s=30.0, times=1)
        with _cluster(model, args, faults=faults,
                      heartbeat_timeout_s=1.0, task_timeout_s=1.0) as svc:
            report = svc.scan(req, timeout=args.timeout)
            stats = svc.stats()
        hang_ok = (not report.degraded
                   and _hit_key(report) == ref_scan_key
                   and stats["worker_timeouts_total"] >= 1)
        print(f"[cluster] hang timeout kill: "
              f"{'OK' if hang_ok else 'MISMATCH'} "
              f"({stats['worker_timeouts_total']} worker_timeouts_total)")
        failures += 0 if hang_ok else 1

    # 5. rolling rollout under sustained load: zero drops, DRAINING
    #    visible, post-swap predictions match the new weights exactly
    new_model = _gate_model(args.image_size, args.seed + 17)
    with HotspotService.from_model(new_model,
                                   image_size=args.image_size) as ref2:
        new_scores = [ref2.classify(r).score for r in clip_reqs()]

    with _cluster(model, args, heartbeat_timeout_s=10.0) as svc:
        stop = threading.Event()
        errors: list[BaseException] = []
        served = [0]
        saw_draining = [False]

        def pound():
            while not stop.is_set():
                try:
                    svc.classify_many(clip_reqs(), timeout=args.timeout)
                    served[0] += len(rasters)
                except BaseException as exc:  # any drop fails the gate
                    errors.append(exc)
                    return
                states = svc.replica_states().values()
                if any(s.value == "draining" for s in states):
                    saw_draining[0] = True

        thread = threading.Thread(target=pound, daemon=True)
        thread.start()
        time.sleep(0.3)
        try:
            svc.rollout("default", model=new_model)
        except BaseException as exc:
            errors.append(exc)
        time.sleep(0.3)
        stop.set()
        thread.join(timeout=args.timeout)
        post = [p.score for p in
                svc.classify_many(clip_reqs(), timeout=args.timeout)]
        stats = svc.stats()

    rollout_ok = (not errors and post == new_scores
                  and stats["rollouts_total"] == 1
                  and stats["rollout_failures_total"] == 0)
    note = f"{served[0]} requests served through the swap"
    if errors:
        note = f"dropped: {type(errors[0]).__name__}: {errors[0]}"
    elif not saw_draining[0]:
        # timing-dependent on slow runners; report but do not fail
        note += ", DRAINING not observed (swap outpaced the probe)"
    print(f"[cluster] rolling rollout under load: "
          f"{'OK' if rollout_ok else 'MISMATCH'} ({note})")
    failures += 0 if rollout_ok else 1

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=256,
                        help="layout side in nm")
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--stride", type=int, default=32)
    parser.add_argument("--image-size", type=int, default=16)
    parser.add_argument("--processes", type=int, default=2,
                        help="fleet size (floor 2: failover needs a sibling)")
    parser.add_argument("--kills", type=int, default=2,
                        help="seeded SIGKILL points in the kill-survival check")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request deadline inside the gate")
    parser.add_argument("--quick", action="store_true",
                        help="1-CPU CI mode: smaller layout, skip the "
                             "hang-timeout case")
    args = parser.parse_args(argv)
    args.processes = max(2, args.processes)
    if args.quick:
        args.size = min(args.size, 192)
        args.kills = min(args.kills, 2)

    failures = chaos_gate(args)
    if failures:
        print(f"cluster chaos: {failures} check(s) FAILED", file=sys.stderr)
        return 1
    print("cluster chaos: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
