"""Supervised multi-process serving: router, worker fleet, failover.

:class:`ClusterService` serves the :class:`~repro.serve.service.\
HotspotService` request surface (classify / classify_many / scan,
plus health / stats / close) from a fleet of **crash-isolated worker
processes**.  The router owns admission and batching; workers own
scoring.  Division of labour:

* The **router** (this class, in the caller's process) prepares inputs
  through the shared raster/plane caches, writes them into
  shared-memory frames (:mod:`.shm`, SHA-256 verified), shards scans
  into contiguous origin-band tasks, load-balances tasks over READY
  replicas, and reassembles results in task order — so worker count
  and scheduling never change a report.
* Each **worker** (:mod:`.worker`) compiles its own engines from
  shipped weights and scores frames.  A crash takes down one process
  and its in-flight tasks, nothing else.
* The **supervisor thread** heartbeats every worker; a missed
  heartbeat past the timeout, a nonzero exit, or a kill signal gets
  the worker reaped, its in-flight tasks **failed over** to sibling
  replicas (bit-identical results — replicas compile identical
  engines), and the slot respawned under capped exponential backoff.
  A slot that crash-loops is **quarantined** so a poisoned replica
  cannot burn CPU forever while its siblings serve.

**Rolling rollout** (:meth:`rollout`) reuses the transactional
registry: the new checkpoint registers (and compiles) in the router
first — a corrupt file aborts before any replica is touched — then
replicas are swapped one at a time: drain (DRAINING visible in
:meth:`replica_states` / health reasons), load, **canary parity
probe** (one batch compared bit-for-bit against the router's reference
engine), readmit.  The fleet keeps serving throughout; a canary
mismatch rolls the replica and the registry back and raises
:class:`~repro.serve.errors.RolloutError`.

Failure-mode guarantees are tabulated in ``docs/serving.md``
("Scale-out, supervision & failover"); the seeded chaos gate
(``python -m repro.serve.cluster.parity``) holds the headline line:
random worker SIGKILLs mid-scan leave the report bit-identical to an
unfaulted run, and a rolling swap under sustained load drops zero
requests.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import replace

import numpy as np

from ...features.downsample import downsample_binary, to_network_input
from ...litho.geometry import Clip
from ..cache import PlaneCache, RasterCache
from ..errors import (
    DeadlineExceeded,
    FrameIntegrityError,
    RolloutError,
    ServiceOverloaded,
    WorkerCrashError,
)
from ..faults import FaultInjector
from ..metrics import ServiceMetrics
from ..pool import shard_slices
from ..registry import ModelEntry, ModelRegistry
from ..service import plane_scan_scale, window_origins
from ..types import (
    ClipRequest,
    HealthReport,
    HealthState,
    Prediction,
    ScanHit,
    ScanReport,
    ScanRequest,
)
from .fleet import ReplicaState, WorkerHandle
from .messages import (
    ClassifyTask,
    LoadModelMsg,
    ModelSpec,
    PingMsg,
    ReleaseFrameMsg,
    ScanShardTask,
    ShutdownMsg,
    WorkerConfig,
)
from .shm import put_frame
from .worker import worker_main

__all__ = ["ClusterService"]


class _FrameHolder:
    """Router-side owner of one shared-memory frame, with retry refresh.

    Holds the source array so a frame a worker rejected as torn can be
    re-created (``refresh``), and reference-counts readers (one per
    task sharing the frame — scan shards all share the plane frame) so
    the segment is unlinked exactly once, when the last task finishes.
    """

    def __init__(self, array: np.ndarray, faults: FaultInjector | None,
                 site: str = "frame", refs: int = 1):
        self._array = array
        self._faults = faults
        self._site = site
        self._lock = threading.Lock()
        self._refs = refs
        # Every frame generation stays linked until the holder is fully
        # released: sibling tasks still carry refs to a superseded
        # (torn) segment, and unlinking it under them would turn their
        # digest-mismatch retry into a hard attach failure.
        self._frames = [put_frame(array, faults, site)]
        self.names = [self._frames[-1].ref.name]  #: every segment name used

    @property
    def ref(self):
        with self._lock:
            if not self._frames:
                raise RuntimeError("frame already released")
            return self._frames[-1].ref

    def refresh(self, bad_name: str):
        """Re-create the frame iff ``bad_name`` is the current segment.

        Generation-guarded: when many tasks share one torn frame, the
        first corrupt report rebuilds it and the rest just pick up the
        already-fresh ref — the frame is written once per tear, not
        once per shard.
        """
        with self._lock:
            if not self._frames:
                return None
            if self._frames[-1].ref.name == bad_name:
                self._frames.append(
                    put_frame(self._array, self._faults, self._site)
                )
                self.names.append(self._frames[-1].ref.name)
            return self._frames[-1].ref

    def release(self, n: int = 1) -> None:
        with self._lock:
            self._refs -= n
            if self._refs <= 0:
                for frame in self._frames:
                    frame.close()
                self._frames = []


class _Task:
    """Router-side record of one dispatched unit of work."""

    __slots__ = (
        "task_id", "msg", "holder", "pin_slot", "logits", "error",
        "event", "crashes", "errors", "frame_retries", "slot",
    )

    def __init__(self, task_id: int, msg, holder: _FrameHolder,
                 pin_slot: int | None = None):
        self.task_id = task_id
        self.msg = msg
        self.holder = holder
        self.pin_slot = pin_slot
        self.logits: np.ndarray | None = None
        self.error: BaseException | None = None
        self.event = threading.Event()
        self.crashes = 0  #: times a worker died holding this task
        self.errors = 0  #: times a worker reported a scoring error
        self.frame_retries = 0  #: times the frame failed its digest
        self.slot: int | None = None  #: current owner


class ClusterService:
    """Crash-isolated multi-process hotspot serving behind one router.

    Parameters mirror :class:`~repro.serve.service.HotspotService`
    where the concepts coincide; the cluster-specific knobs:

    processes:
        Fleet size (slots).  Two is the useful minimum — failover and
        rolling rollout both need a sibling to carry traffic.
    heartbeat_s / heartbeat_timeout_s:
        Supervisor ping period, and how long a silent *idle* worker
        lives before being declared hung and killed.  Workers are
        single-threaded and cannot answer pings while scoring, so
        heartbeat silence alone never condemns a worker that holds
        in-flight work — busy is not hung.
    task_timeout_s:
        The separate, larger deadline for a *busy* worker: how long a
        worker may hold in-flight work without producing any message
        (result or pong) before it is declared wedged (e.g. hung
        inside a native kernel mid-task) and killed.  ``None`` trusts
        in-flight workers indefinitely; keep it comfortably above the
        slowest legitimate shard so a big scan band is never killed
        mid-score.
    startup_timeout_s:
        Grace for a fresh worker to compile its engines and report
        ready before the supervisor gives up on it.
    task_retries:
        Failover budget per task: how many worker losses (crashes) or
        reported scoring errors a single task may survive by
        resubmission before it fails with
        :class:`~repro.serve.errors.WorkerCrashError` (a poison task
        must not crash-loop the fleet).
    frame_retries:
        How often a digest-rejected (torn) frame is rebuilt and the
        task resubmitted before failing with ``FrameIntegrityError``.
    respawn_backoff_s / respawn_backoff_max_s:
        Capped exponential backoff between a slot's death and its
        respawn (doubles per consecutive crash).
    quarantine_after:
        Consecutive crashes (no completed task in between) after which
        a slot is quarantined instead of respawned.
    scan_shards:
        Scan fan-out (default: two bands per READY replica).
    faults / faults_in_respawn:
        Chaos injector.  It is deep-copied into every worker of the
        *initial* fleet (sites ``"worker"`` and ``"worker:<slot>"``
        fire per task; ``"frame"`` fires router-side per frame write);
        respawned workers get a clean injector unless
        ``faults_in_respawn=True`` — otherwise a deterministic
        kill-on-first-task rule would quarantine every slot instead of
        proving failover.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        default_model: str | None = None,
        processes: int = 2,
        max_batch: int = 64,
        queue_depth: int | None = 256,
        overflow: str = "block",
        default_timeout_s: float | None = None,
        heartbeat_s: float = 0.5,
        heartbeat_timeout_s: float = 5.0,
        task_timeout_s: float | None = 300.0,
        startup_timeout_s: float = 60.0,
        task_retries: int = 2,
        frame_retries: int = 2,
        respawn_backoff_s: float = 0.25,
        respawn_backoff_max_s: float = 5.0,
        quarantine_after: int = 3,
        cache_capacity: int = 2048,
        plane_cache_capacity: int = 8,
        scan_shards: int | None = None,
        faults: FaultInjector | None = None,
        faults_in_respawn: bool = False,
    ):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if overflow not in ("block", "shed"):
            raise ValueError(
                f"overflow must be 'block' or 'shed', got {overflow!r}"
            )
        if task_retries < 0 or frame_retries < 0:
            raise ValueError("task_retries/frame_retries must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0 or None, got {task_timeout_s}"
            )
        if quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.registry = registry if registry is not None else ModelRegistry()
        self.default_model = default_model
        self.processes = processes
        self.max_batch = max_batch
        self.queue_depth = queue_depth
        self.overflow = overflow
        self.default_timeout_s = default_timeout_s
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.task_timeout_s = task_timeout_s
        self.startup_timeout_s = startup_timeout_s
        self.task_retries = task_retries
        self.frame_retries = frame_retries
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_max_s = respawn_backoff_max_s
        self.quarantine_after = quarantine_after
        self.scan_shards = scan_shards
        self.faults = faults
        self.faults_in_respawn = faults_in_respawn
        self.metrics = ServiceMetrics()
        self.cache = RasterCache(capacity=cache_capacity)
        self.plane_cache = PlaneCache(capacity=plane_cache_capacity)
        # fork shares the parent's imported modules and model weights
        # copy-on-write, so workers start in well under a second; spawn
        # is the fallback where fork does not exist
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = mp.get_context("spawn")
        self._cond = threading.Condition()
        self._handles = [WorkerHandle(slot=i) for i in range(processes)]
        self._tasks: dict[int, _Task] = {}
        self._pending: deque[_Task] = deque()
        self._next_task_id = 0
        self._versions: dict[str, int] = {}
        self._knobs: dict[str, dict[str, object]] = {}
        self._load_results: dict[tuple, object] = {}
        self._started = False
        self._closed = False
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None

    # -- model management ------------------------------------------------

    @classmethod
    def from_model(cls, model, image_size: int, name: str = "default",
                   prefer_packed: bool = True, decision_bias: float = 0.0,
                   backend: str | None = None, **kwargs) -> "ClusterService":
        """Convenience: one live model, ready-to-serve cluster."""
        service = cls(default_model=name, **kwargs)
        service.register(
            name, model, image_size=image_size, prefer_packed=prefer_packed,
            decision_bias=decision_bias, backend=backend,
        )
        return service

    def register(self, name: str, model, image_size: int,
                 prefer_packed: bool = True, decision_bias: float = 0.0,
                 meta: dict | None = None, backend: str | None = None,
                 passes="default") -> ModelEntry:
        """Compile + register a model; live workers load it in place.

        Before the fleet starts this is pure registry bookkeeping —
        workers pick the model up at spawn.  On a running fleet the
        spec is broadcast to every live replica *without* draining;
        use :meth:`rollout` for the guarded one-replica-at-a-time swap.
        """
        entry = self.registry.register(
            name, model, image_size=image_size, prefer_packed=prefer_packed,
            decision_bias=decision_bias, meta=meta, backend=backend,
            passes=passes,
        )
        with self._cond:
            self._versions.setdefault(name, 1)
            self._knobs[name] = {
                "prefer_packed": prefer_packed, "backend": backend,
                "passes": passes,
            }
            live = [h for h in self._handles if h.alive] if self._started \
                else []
            spec = self._spec(name) if live else None
        for handle in live:
            try:
                handle.task_queue.put(LoadModelMsg(spec))
            except Exception:  # a dying worker respawns with the spec
                pass
        return entry

    def _spec(self, name: str) -> ModelSpec:
        """Build the worker-bound spec of a registered model (locked)."""
        entry = self.registry.get(name)
        knobs = self._knobs.get(name, {})
        return ModelSpec(
            name=name,
            model=entry.model,
            image_size=entry.image_size,
            decision_bias=entry.decision_bias,
            prefer_packed=bool(knobs.get("prefer_packed", True)),
            backend=knobs.get("backend"),
            passes=knobs.get("passes", "default"),
            version=self._versions.get(name, 1),
        )

    def _specs(self) -> tuple[ModelSpec, ...]:
        return tuple(self._spec(name) for name in self.registry.names())

    def _entry(self, model: str | None) -> ModelEntry:
        if self._closed:
            raise RuntimeError("service is closed")
        name = model or self.default_model
        if name is None:
            names = self.registry.names()
            if len(names) == 1:
                name = names[0]
            else:
                raise ValueError(
                    "no model selected: pass model= or set default_model "
                    f"(registered: {names or 'none'})"
                )
        return self.registry.get(name)

    # -- fleet lifecycle -------------------------------------------------

    def start(self) -> None:
        """Spawn the fleet now (otherwise it starts on first request)."""
        with self._cond:
            self._ensure_fleet_locked()

    def _ensure_fleet_locked(self) -> None:
        if self._started or self._closed:
            return
        self._started = True
        # start the shared-memory resource tracker BEFORE forking, so
        # every worker inherits the router's tracker instead of
        # starting its own — a private per-worker tracker would unlink
        # still-shared frames when that worker dies (see .shm)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        for handle in self._handles:
            self._spawn_locked(handle)
        self._supervisor = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True
        )
        self._supervisor.start()

    def _worker_faults(self, generation: int) -> FaultInjector | None:
        if self.faults is None:
            return None
        if generation > 1 and not self.faults_in_respawn:
            return None
        # a pickled deep copy: fresh lock, counters and rule budgets
        # independent of the router's and of every sibling's
        return pickle.loads(pickle.dumps(self.faults))

    def _spawn_locked(self, handle: WorkerHandle) -> None:
        handle.generation += 1
        generation = handle.generation
        handle.task_queue = self._ctx.Queue()
        handle.result_queue = self._ctx.Queue()
        handle.state = ReplicaState.STARTING
        handle.shutdown_requested = False
        handle.timed_out = False
        handle.inflight.clear()
        handle.provenance = {}
        now = time.monotonic()
        handle.spawned_at = now
        handle.last_seen = now
        handle.last_ping_at = now
        config = WorkerConfig(
            slot=handle.slot,
            generation=generation,
            models=self._specs(),
            faults=self._worker_faults(generation),
        )
        proc = self._ctx.Process(
            target=worker_main,
            args=(config, handle.task_queue, handle.result_queue),
            daemon=True,
            name=f"cluster-worker-{handle.slot}.{generation}",
        )
        proc.start()
        handle.proc = proc
        self.metrics.record_worker_spawn()
        collector = threading.Thread(
            target=self._collect,
            args=(handle, generation, handle.result_queue, proc),
            name=f"cluster-collector-{handle.slot}.{generation}",
            daemon=True,
        )
        collector.start()

    # -- collector (one thread per worker generation) --------------------

    def _collect(self, handle: WorkerHandle, generation: int,
                 result_queue, proc) -> None:
        while True:
            try:
                msg = result_queue.get(timeout=0.2)
            except queue_mod.Empty:
                if proc.exitcode is not None:
                    # the process is gone; drain what it flushed first
                    while True:
                        try:
                            msg = result_queue.get_nowait()
                        except Exception:
                            break
                        self._on_message(handle, generation, msg)
                    break
                continue
            except (EOFError, OSError):
                break
            except Exception:
                # a SIGKILL mid-write can leave a truncated pickle in
                # the pipe; the stream is unusable, reap and fail over
                break
            self._on_message(handle, generation, msg)
        self._reap(handle, generation)

    def _on_message(self, handle: WorkerHandle, generation: int, msg) -> None:
        with self._cond:
            if handle.generation != generation:
                return  # a past life of this slot
            handle.touch()
            kind = type(msg).__name__
            if kind == "ReadyMsg":
                handle.provenance = dict(msg.provenance)
                if handle.state is ReplicaState.STARTING:
                    handle.state = ReplicaState.READY
                self._dispatch_locked()
            elif kind == "PongMsg":
                handle.tasks_done = msg.tasks_done
            elif kind == "ModelLoadedMsg":
                if msg.error is None:
                    handle.provenance[msg.name] = dict(msg.provenance)
                    # the replica's served version changed: pending
                    # tasks stamped with it may be dispatchable now
                    self._dispatch_locked()
                self._load_results[
                    (handle.slot, generation, msg.name, msg.version)
                ] = msg
            elif kind == "TaskDoneMsg":
                self._on_task_done(handle, msg)
            self._cond.notify_all()

    def _on_task_done(self, handle: WorkerHandle, msg) -> None:
        handle.inflight.pop(msg.task_id, None)
        task = self._tasks.get(msg.task_id)
        if task is None:
            return  # abandoned (deadline) or completed by a sibling
        if msg.frame_corrupt:
            self.metrics.record_frame_retry()
            task.frame_retries += 1
            if task.frame_retries > self.frame_retries:
                self._fail_locked(task, FrameIntegrityError(
                    f"frame for task {task.task_id} failed its digest "
                    f"check {task.frame_retries} times: {msg.error}",
                    frame=task.msg.frame.name,
                ))
                return
            ref = task.holder.refresh(task.msg.frame.name)
            if ref is None:
                self._fail_locked(task, FrameIntegrityError(
                    f"frame for task {task.task_id} was torn and its "
                    f"source is no longer available", frame=task.msg.frame.name,
                ))
                return
            task.msg = replace(task.msg, frame=ref)
            self._requeue_locked(task)
            return
        if msg.error is not None:
            task.errors += 1
            if task.errors > self.task_retries:
                self._fail_locked(
                    task, RuntimeError(f"worker task failed: {msg.error}")
                )
            else:
                self._requeue_locked(task)
            return
        handle.crashes = 0  # completed work: this is not a crash loop
        task.logits = msg.logits
        self._finish_locked(task)

    def _finish_locked(self, task: _Task) -> None:
        self._tasks.pop(task.task_id, None)
        task.holder.release()
        task.event.set()

    def _fail_locked(self, task: _Task, error: BaseException) -> None:
        self.metrics.record_error()
        task.error = error
        self._finish_locked(task)

    def _requeue_locked(self, task: _Task) -> None:
        task.slot = None
        self._pending.appendleft(task)
        self._dispatch_locked()

    # -- reap / failover / respawn ---------------------------------------

    def _reap(self, handle: WorkerHandle, generation: int) -> None:
        with self._cond:
            if handle.generation != generation:
                return
            if handle.proc is not None:
                handle.proc.join(timeout=0.5)
            expected = handle.shutdown_requested or self._closed
            lost = list(handle.inflight)
            handle.inflight.clear()
            for task_id in lost:
                task = self._tasks.get(task_id)
                if task is None:
                    continue
                task.crashes += 1
                if task.crashes > self.task_retries:
                    self._fail_locked(task, WorkerCrashError(
                        f"task {task_id} lost to {task.crashes} worker "
                        f"crashes (failover budget {self.task_retries}); "
                        f"refusing to keep crash-looping the fleet",
                        crashes=task.crashes,
                    ))
                else:
                    self.metrics.record_failover()
                    self._requeue_locked(task)
            if expected:
                handle.state = ReplicaState.DEAD
                self._cond.notify_all()
                return
            self.metrics.record_worker_reap(timed_out=handle.timed_out)
            handle.timed_out = False
            handle.crashes += 1
            if handle.crashes >= self.quarantine_after:
                handle.state = ReplicaState.QUARANTINED
                self.metrics.record_slot_quarantine()
                self._fail_pending_if_fleet_lost_locked()
            else:
                handle.state = ReplicaState.DEAD
                backoff = min(
                    self.respawn_backoff_max_s,
                    self.respawn_backoff_s * (2 ** (handle.crashes - 1)),
                )
                handle.next_spawn_at = time.monotonic() + backoff
            self._cond.notify_all()

    def _fail_pending_if_fleet_lost_locked(self) -> None:
        """The whole fleet quarantined: pending work can never run."""
        if any(
            h.state is not ReplicaState.QUARANTINED for h in self._handles
        ):
            return
        while self._pending:
            task = self._pending.popleft()
            self._fail_locked(task, WorkerCrashError(
                "entire fleet is quarantined after repeated crash loops",
                crashes=task.crashes,
            ))

    def reset_quarantine(self, slot: int | None = None) -> None:
        """Operator override: clear crash history and respawn slot(s)."""
        with self._cond:
            for handle in self._handles:
                if slot is not None and handle.slot != slot:
                    continue
                if handle.state is ReplicaState.QUARANTINED:
                    handle.crashes = 0
                    handle.state = ReplicaState.DEAD
                    handle.next_spawn_at = 0.0
            self._cond.notify_all()

    # -- supervisor ------------------------------------------------------

    def _supervise(self) -> None:
        tick = max(0.02, min(0.25, self.heartbeat_s / 2.0))
        while not self._stop.wait(tick):
            with self._cond:
                if self._closed:
                    return
                now = time.monotonic()
                for handle in self._handles:
                    state = handle.state
                    if state is ReplicaState.DEAD:
                        if now >= handle.next_spawn_at:
                            self._spawn_locked(handle)
                        continue
                    if state is ReplicaState.QUARANTINED:
                        continue
                    if handle.proc is None or not handle.alive:
                        continue  # the collector is about to reap it
                    if now - handle.last_ping_at >= self.heartbeat_s:
                        handle.ping_seq += 1
                        handle.last_ping_at = now
                        try:
                            handle.task_queue.put(PingMsg(handle.ping_seq))
                        except Exception:
                            pass
                    if handle.inflight and state is not ReplicaState.STARTING:
                        # workers are single-threaded: one cannot answer
                        # pings while it scores, so in-flight work is
                        # presumed proof of life.  Only the separate,
                        # larger per-task deadline — silence since the
                        # later of the last message and the oldest
                        # still-unanswered dispatch — condemns it as
                        # genuinely wedged.
                        if self.task_timeout_s is None:
                            continue
                        busy_since = max(
                            handle.last_seen, min(handle.inflight.values())
                        )
                        if now - busy_since <= self.task_timeout_s:
                            continue
                    else:
                        limit = (
                            self.startup_timeout_s
                            if state is ReplicaState.STARTING
                            else self.heartbeat_timeout_s
                        )
                        if now - handle.last_seen <= limit:
                            continue
                    # hung (or wedged in a native kernel): it cannot
                    # answer pings or finish its task, so it cannot be
                    # trusted with its in-flight work — kill, fail over
                    handle.timed_out = True
                    try:
                        handle.proc.kill()
                    except Exception:
                        pass
                self._dispatch_locked()

    # -- dispatch --------------------------------------------------------

    def _serves_version_locked(self, handle: WorkerHandle, model: str,
                               version: int) -> bool:
        prov = handle.provenance.get(model)
        return prov is not None and prov.get("version") == version

    def _pick_worker_locked(self, task: _Task) -> WorkerHandle | None:
        if task.pin_slot is not None:
            handle = self._handles[task.pin_slot]
            # a pinned task (the rollout canary) may target a DRAINING
            # replica — that is the point of the probe
            if handle.alive and handle.state in (
                ReplicaState.READY, ReplicaState.DRAINING
            ):
                return handle
            return None
        best = None
        for handle in self._handles:
            if not (handle.accepts_work and handle.alive):
                continue
            # version-matched routing: a task is only ever scored by a
            # replica serving the checkpoint version it was admitted
            # under — mid-rollout, old and new versions coexist and
            # each request sticks to its own
            if not self._serves_version_locked(
                handle, task.msg.model, task.msg.version
            ):
                continue
            if best is None or len(handle.inflight) < len(best.inflight):
                best = handle
        return best

    def _version_unservable_locked(self, task: _Task) -> bool:
        """No replica serves this task's version and none ever will.

        Respawns and rollbacks always compile the registry's *current*
        version, so a task stamped with a superseded version (admitted
        just before a rollout committed, then failed over after the
        last old replica swapped) can never be scored again — it must
        fail loudly rather than wait forever or be silently scored by
        different weights.
        """
        name, version = task.msg.model, task.msg.version
        if version == self._versions.get(name, 1):
            return False  # the current version: some replica will serve it
        return not any(
            handle.alive
            and handle.state is ReplicaState.READY
            and self._serves_version_locked(handle, name, version)
            for handle in self._handles
        )

    def _dispatch_locked(self) -> None:
        stuck: list[_Task] = []
        while self._pending:
            task = self._pending.popleft()
            handle = self._pick_worker_locked(task)
            if handle is None:
                if task.pin_slot is None and \
                        self._version_unservable_locked(task):
                    self._fail_locked(task, RuntimeError(
                        f"task {task.task_id} was admitted under "
                        f"{task.msg.model!r} v{task.msg.version} but the "
                        f"fleet has rolled on and no replica serves that "
                        f"version anymore"
                    ))
                    continue
                # tasks wait for different replicas (their version, or a
                # pinned slot) — one undispatchable task must not block
                # the rest of the queue
                stuck.append(task)
                continue
            task.slot = handle.slot
            handle.inflight[task.task_id] = time.monotonic()
            try:
                handle.task_queue.put(task.msg)
            except Exception:
                handle.inflight.pop(task.task_id, None)
                stuck.append(task)
        self._pending.extendleft(reversed(stuck))
        if self._started:
            self._fail_pending_if_fleet_lost_locked()

    def _submit_locked(self, msg, holder: _FrameHolder,
                       pin_slot: int | None = None,
                       deadline: float | None = None) -> _Task:
        if self._closed:
            raise RuntimeError("service is closed")
        self._ensure_fleet_locked()
        while (
            self.queue_depth is not None
            and len(self._tasks) >= self.queue_depth
        ):
            if self.overflow == "shed":
                self.metrics.record_shed()
                raise ServiceOverloaded(
                    f"admission queue full ({self.queue_depth} tasks "
                    f"outstanding) and overflow policy is 'shed'"
                )
            remaining = (
                None if deadline is None
                else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                self.metrics.record_timeout()
                raise DeadlineExceeded(
                    "admission queue stayed full past the deadline",
                    stage="queue",
                )
            if not self._cond.wait(timeout=remaining):
                self.metrics.record_timeout()
                raise DeadlineExceeded(
                    "admission queue stayed full past the deadline",
                    stage="queue",
                )
            if self._closed:
                raise RuntimeError("service is closed")
        task_id = self._next_task_id
        self._next_task_id += 1
        task = _Task(task_id, replace(msg, task_id=task_id), holder,
                     pin_slot=pin_slot)
        self._tasks[task_id] = task
        self._pending.append(task)
        self._dispatch_locked()
        self._cond.notify_all()
        return task

    def _abandon_locked(self, tasks: list[_Task]) -> None:
        """Tombstone unfinished tasks: late results will be ignored."""
        for task in tasks:
            if task.task_id in self._tasks:
                del self._tasks[task.task_id]
                task.holder.release()
                try:
                    self._pending.remove(task)
                except ValueError:
                    pass

    def _await(self, tasks: list[_Task], deadline: float | None,
               stage: str) -> None:
        for task in tasks:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            if not task.event.wait(timeout=remaining):
                with self._cond:
                    self._abandon_locked(tasks)
                self.metrics.record_timeout()
                raise DeadlineExceeded(
                    f"{stage} did not complete within the deadline",
                    stage=stage,
                )

    # -- classify path ---------------------------------------------------

    def _as_request(self, item) -> ClipRequest:
        if isinstance(item, ClipRequest):
            return item
        if isinstance(item, Clip):
            return ClipRequest(clip=item)
        return ClipRequest(image=np.asarray(item))

    def _prepare(self, request: ClipRequest, entry: ModelEntry) -> np.ndarray:
        if request.clip is not None:
            image = self.cache.get(request.clip, entry.image_size, "binary")
        else:
            image = np.asarray(request.image, dtype=np.float64)
            if image.shape[-1] != entry.image_size:
                image = downsample_binary(image, entry.image_size)
        return to_network_input(image[None])

    def classify(self, request, model: str | None = None,
                 timeout: float | None = None) -> Prediction:
        """Classify one clip on some replica (bit-identical on any)."""
        return self.classify_many([request], model=model, timeout=timeout)[0]

    def classify_many(self, requests, model: str | None = None,
                      timeout: float | None = None) -> list[Prediction]:
        """Classify clips: batch into frames, fan out across replicas.

        Requests are prepared router-side (raster cache, downsampling,
        the {-1,+1} mapping), packed into shared-memory frames in
        ``max_batch``-sized chunks, and the chunks dispatched to the
        least-loaded READY replicas.  Results reassemble in request
        order; which replica served a chunk never changes a score.
        """
        entry = self._entry(model)
        if timeout is None:
            timeout = self.default_timeout_s
        started = time.perf_counter()
        deadline = None if timeout is None else time.monotonic() + timeout
        reqs = [self._as_request(item) for item in requests]
        prepared = [self._prepare(request, entry) for request in reqs]
        if not prepared:
            return []
        version = self._versions.get(entry.name, 1)
        tasks: list[_Task] = []
        try:
            with self._cond:
                for start in range(0, len(prepared), self.max_batch):
                    batch = np.concatenate(
                        prepared[start : start + self.max_batch]
                    )
                    holder = _FrameHolder(batch, self.faults)
                    msg = ClassifyTask(
                        task_id=-1, model=entry.name, version=version,
                        frame=holder.ref,
                    )
                    tasks.append(
                        self._submit_locked(msg, holder, deadline=deadline)
                    )
        except Exception:
            with self._cond:
                self._abandon_locked(tasks)
            raise
        self._await(tasks, deadline, stage="classify")
        for task in tasks:
            if task.error is not None:
                raise task.error
        logits = np.concatenate([task.logits for task in tasks])
        scores = logits[:, 1] - logits[:, 0]
        latency_ms = (time.perf_counter() - started) * 1e3
        predictions = []
        for request, score in zip(reqs, scores):
            self.metrics.record_request(latency_ms)
            predictions.append(Prediction(
                request_id=request.request_id,
                label=int(score > entry.decision_bias),
                score=float(score),
                model=entry.name,
                backend=entry.backend,
                latency_ms=latency_ms,
            ))
        return predictions

    # -- scan path -------------------------------------------------------

    def _scan_fanout_locked(self) -> int:
        if self.scan_shards is not None:
            return max(1, self.scan_shards)
        ready = sum(1 for h in self._handles if h.accepts_work)
        return max(2, 2 * max(1, ready))

    def scan(self, request: ScanRequest, model: str | None = None,
             timeout: float | None = None) -> ScanReport:
        """Sweep a layout across the fleet; one plane, many band shards.

        The layout is rasterized **once** (plane cache) and shipped to
        the fleet as a single shared-memory frame; each shard is a
        contiguous run of window origins plus the ``[y0, y1)`` pixel
        band containing them, and workers ``plan_scan`` only their band
        slice of the shared plane — zero-copy, stem convolution paid
        once per band.  Window independence (the plane-scan contract)
        makes the result bit-identical to a single-process sweep, no
        matter how shards land on replicas or how often they fail over.

        Failure semantics match the in-process scan: a shard that
        exhausts its failover/ retry budget degrades the report
        (``failed_ranges``) instead of discarding healthy shards; the
        deadline abandons unfinished shards the same way.
        """
        entry = self._entry(model)
        if timeout is None:
            timeout = self.default_timeout_s
        started = time.perf_counter()
        deadline = None if timeout is None else time.monotonic() + timeout
        origins = window_origins(
            request.layout.size, request.window, request.stride
        )
        scale = plane_scan_scale(
            request.layout.size, request.window, request.stride,
            entry.image_size,
        )
        if scale is None:
            raise ValueError(
                "cluster scan requires pixel-aligned geometry (window a "
                f"multiple of image_size={entry.image_size}, and the scale "
                "dividing layout size and stride); got window="
                f"{request.window}, stride={request.stride}, "
                f"size={request.layout.size}"
            )
        plane = self.plane_cache.get(request.layout, scale, "binary")
        scaled = [(x // scale, y // scale) for x, y in origins]
        version = self._versions.get(entry.name, 1)
        tasks: list[_Task] = []
        slices: list[slice] = []
        holder: _FrameHolder | None = None
        try:
            with self._cond:
                self._ensure_fleet_locked()
                slices = shard_slices(
                    len(origins), self._scan_fanout_locked()
                )
                holder = _FrameHolder(
                    plane, self.faults, refs=len(slices)
                )
                for shard in slices:
                    chunk = scaled[shard]
                    y0 = min(y for _, y in chunk)
                    y1 = max(y for _, y in chunk) + entry.image_size
                    msg = ScanShardTask(
                        task_id=-1, model=entry.name, version=version,
                        frame=holder.ref, band=(y0, y1),
                        origins=tuple((x, y - y0) for x, y in chunk),
                        window_px=entry.image_size,
                        batch_size=self.max_batch,
                    )
                    tasks.append(
                        self._submit_locked(msg, holder, deadline=deadline)
                    )
        except Exception:
            with self._cond:
                self._abandon_locked(tasks)
            if holder is not None:
                holder.release(len(slices) - len(tasks))
            raise
        timed_out = False
        for task in tasks:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            if not task.event.wait(timeout=remaining):
                timed_out = True
                break
        if timed_out:
            with self._cond:
                self._abandon_locked(tasks)
            self.metrics.record_timeout()
        hits: list[ScanHit] = []
        failed_ranges: list[tuple[int, int]] = []
        retried = 0
        for shard, task in zip(slices, tasks):
            retried += task.crashes + task.errors + task.frame_retries
            if task.logits is None:
                failed_ranges.append((shard.start, shard.stop))
                continue
            scores = task.logits[:, 1] - task.logits[:, 0]
            for (x, y), score in zip(origins[shard], scores):
                if score > entry.decision_bias:
                    hits.append(ScanHit(
                        x, y, x + request.window, y + request.window,
                        float(score),
                    ))
        self._broadcast_release(holder)
        latency_ms = (time.perf_counter() - started) * 1e3
        failed_windows = sum(stop - start for start, stop in failed_ranges)
        self.metrics.record_scan(
            len(origins), latency_ms, plane=True,
            failed_windows=failed_windows, retried_shards=retried,
        )
        return ScanReport(
            request_id=request.request_id,
            windows_scanned=len(origins),
            hits=tuple(hits),
            model=entry.name,
            backend=entry.backend,
            latency_ms=latency_ms,
            degraded=bool(failed_ranges),
            failed_ranges=tuple(failed_ranges),
        )

    def _broadcast_release(self, holder: _FrameHolder | None) -> None:
        """Tell live workers to drop their cached plane attachments."""
        if holder is None:
            return
        with self._cond:
            handles = [h for h in self._handles if h.alive]
            names = list(holder.names)
        for handle in handles:
            for name in names:
                try:
                    handle.task_queue.put(ReleaseFrameMsg(name))
                except Exception:
                    pass

    # -- rolling rollout -------------------------------------------------

    def _canary_batch(self, entry: ModelEntry) -> np.ndarray:
        rng = np.random.default_rng(0)
        images = rng.integers(
            0, 2, size=(4, entry.image_size, entry.image_size)
        ).astype(np.float64)
        return to_network_input(images)

    def _wait_load_locked(self, slot: int, generation: int, name: str,
                          version: int, deadline: float):
        key = (slot, generation, name, version)
        while key not in self._load_results:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._cond.wait(timeout=remaining):
                return None
            if self._handles[slot].generation != generation:
                return None  # the replica died mid-load
        return self._load_results.pop(key)

    def rollout(self, name: str, model=None, path: str | None = None,
                image_size: int | None = None, prefer_packed: bool = True,
                decision_bias: float = 0.0, backend: str | None = None,
                passes="default", canary_batch: np.ndarray | None = None,
                drain_timeout_s: float = 30.0) -> ModelEntry:
        """Roll a new checkpoint across the fleet without dropping traffic.

        Transaction order:

        1. **Register** the new model (from a live ``model`` or a
           checkpoint ``path``) in the router's registry.  This
           compiles the reference engine; a corrupt checkpoint or
           compile failure raises here, before any replica is touched.
        2. Per replica, in slot order: **drain** (state DRAINING —
           visible in :meth:`replica_states` and health reasons; no
           new tasks, in-flight ones finish), **swap** via
           ``LoadModelMsg``, **canary-probe** one batch pinned to the
           swapped replica and compare bit-for-bit against the
           reference engine, **readmit** (READY).  Siblings carry
           traffic the whole time.
        3. A failed load or canary mismatch **rolls back**: the
           replica reloads the previous weights, the registry restores
           the previous entry, and :class:`RolloutError` is raised.
           Replicas swapped before the failure are rolled back too —
           and so is the failing replica itself when its load had
           already committed (a canary mismatch): it stays DRAINING
           until the old checkpoint is restored, so it never serves
           the parity-failing weights and an aborted rollout never
           leaves a mixed-version fleet.

        Dead/quarantined slots are skipped — their next respawn
        compiles the new version from the registry.
        """
        with self._cond:
            self._ensure_fleet_locked()
            old_entry = (
                self.registry.get(name) if name in self.registry else None
            )
            old_version = self._versions.get(name, 1)
            old_knobs = self._knobs.get(name)
        if model is None and path is None:
            raise ValueError("rollout needs model= or path=")
        try:
            if path is not None:
                entry = self.registry.load_checkpoint(
                    name, path, model=model, image_size=image_size,
                    prefer_packed=prefer_packed, backend=backend,
                    passes=passes,
                )
            else:
                if image_size is None:
                    image_size = (
                        old_entry.image_size if old_entry is not None
                        else None
                    )
                if image_size is None:
                    raise ValueError("rollout of a new name needs image_size=")
                entry = self.registry.register(
                    name, model, image_size=image_size,
                    prefer_packed=prefer_packed,
                    decision_bias=decision_bias, backend=backend,
                    passes=passes,
                )
        except Exception:
            self.metrics.record_rollout(ok=False)
            raise
        new_version = old_version + 1
        with self._cond:
            self._versions[name] = new_version
            self._knobs[name] = {
                "prefer_packed": prefer_packed, "backend": backend,
                "passes": passes,
            }
            spec = self._spec(name)
            old_spec = None
            if old_entry is not None:
                old_spec = ModelSpec(
                    name=name, model=old_entry.model,
                    image_size=old_entry.image_size,
                    decision_bias=old_entry.decision_bias,
                    prefer_packed=bool(
                        (old_knobs or {}).get("prefer_packed", True)
                    ),
                    backend=(old_knobs or {}).get("backend"),
                    passes=(old_knobs or {}).get("passes", "default"),
                    version=old_version,
                )
        swapped: list[int] = []
        try:
            canary = (
                canary_batch if canary_batch is not None
                else self._canary_batch(entry)
            )
            canary = np.ascontiguousarray(canary, dtype=np.float64)
            # a model that registered via fallback but cannot actually
            # score fails here — inside the rollback scope, so the
            # version bump above is undone and no replica is touched
            reference = entry.engine.predict_logits(canary)
            for handle in self._handles:
                with self._cond:
                    if handle.state is not ReplicaState.READY:
                        continue  # dead/quarantined slots catch up at respawn
                    slot, generation = handle.slot, handle.generation
                    handle.state = ReplicaState.DRAINING
                    self._cond.notify_all()
                try:
                    self._swap_replica(
                        handle, slot, generation, spec, canary, reference,
                        drain_timeout_s, swapped,
                    )
                except Exception:
                    with self._cond:
                        if handle.generation == generation \
                                and slot not in swapped:
                            # the load never committed: the replica
                            # still serves the old weights and is safe
                            # to readmit as-is.  A replica that DID
                            # load the new (canary-failing) weights is
                            # in ``swapped`` and stays DRAINING until
                            # _roll_back restores the old checkpoint —
                            # it must never serve a version that failed
                            # its parity probe.
                            handle.state = ReplicaState.READY
                            self._cond.notify_all()
                    raise
            self.metrics.record_rollout(ok=True)
            return entry
        except Exception:
            self.metrics.record_rollout(ok=False)
            self._roll_back(name, old_entry, old_version, old_knobs,
                            old_spec, swapped, drain_timeout_s)
            raise

    def _swap_replica(self, handle: WorkerHandle, slot: int,
                      generation: int, spec: ModelSpec,
                      canary: np.ndarray, reference: np.ndarray,
                      drain_timeout_s: float,
                      swapped: list[int]) -> None:
        deadline = time.monotonic() + drain_timeout_s
        with self._cond:
            while handle.inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    raise RolloutError(
                        f"replica {slot} did not drain within "
                        f"{drain_timeout_s}s ({len(handle.inflight)} tasks "
                        f"in flight)"
                    )
                if handle.generation != generation:
                    raise RolloutError(f"replica {slot} died while draining")
            try:
                handle.task_queue.put(LoadModelMsg(spec))
            except Exception as exc:
                raise RolloutError(
                    f"replica {slot} rejected the load: {exc}"
                ) from exc
            loaded = self._wait_load_locked(
                slot, generation, spec.name, spec.version, deadline
            )
        if loaded is None:
            raise RolloutError(
                f"replica {slot} did not confirm loading "
                f"{spec.name!r} v{spec.version} in time"
            )
        if loaded.error is not None:
            raise RolloutError(
                f"replica {slot} failed to load {spec.name!r} "
                f"v{spec.version}: {loaded.error}"
            )
        # the load committed: the replica now serves the new weights,
        # so from here on an abort must roll THIS slot back too, not
        # just its predecessors — even if the canary probe below fails
        swapped.append(slot)
        # canary parity probe, pinned to the (still draining) replica
        holder = _FrameHolder(canary, None)
        with self._cond:
            msg = ClassifyTask(
                task_id=-1, model=spec.name, version=spec.version,
                frame=holder.ref,
            )
            task = self._submit_locked(msg, holder, pin_slot=slot)
        remaining = max(0.0, deadline - time.monotonic())
        if not task.event.wait(timeout=remaining):
            with self._cond:
                self._abandon_locked([task])
            raise RolloutError(
                f"replica {slot} canary probe timed out"
            )
        if task.error is not None:
            raise RolloutError(
                f"replica {slot} canary probe failed: {task.error}"
            )
        if not np.array_equal(task.logits, reference):
            raise RolloutError(
                f"replica {slot} canary batch is not bit-identical to the "
                f"reference engine for {spec.name!r} v{spec.version}; "
                f"aborting the rollout"
            )
        with self._cond:
            if handle.generation == generation:
                handle.state = ReplicaState.READY
                self._dispatch_locked()
                self._cond.notify_all()

    def _roll_back(self, name, old_entry, old_version, old_knobs,
                   old_spec, swapped, drain_timeout_s) -> None:
        """Best-effort restore of the pre-rollout fleet and registry."""
        with self._cond:
            self._versions[name] = old_version
            if old_knobs is not None:
                self._knobs[name] = old_knobs
        if old_entry is not None:
            self.registry.register(
                name, old_entry.model, image_size=old_entry.image_size,
                prefer_packed=bool((old_knobs or {}).get(
                    "prefer_packed", True
                )),
                decision_bias=old_entry.decision_bias,
                meta=old_entry.meta,
                backend=(old_knobs or {}).get("backend"),
                passes=(old_knobs or {}).get("passes", "default"),
            )
        for slot in swapped:
            handle = self._handles[slot]
            with self._cond:
                if handle.alive and old_spec is not None:
                    try:
                        handle.task_queue.put(LoadModelMsg(old_spec))
                    except Exception:
                        pass
                    else:
                        self._wait_load_locked(
                            slot, handle.generation, old_spec.name,
                            old_spec.version,
                            time.monotonic() + drain_timeout_s,
                        )
                # the slot whose canary failed was left DRAINING so it
                # could not serve the parity-failing weights; readmit
                # it now that the old checkpoint is (best-effort) back.
                # A dead slot respawns from the restored registry.
                if handle.state is ReplicaState.DRAINING:
                    handle.state = ReplicaState.READY
                    self._dispatch_locked()
                    self._cond.notify_all()

    # -- lifecycle / observability ---------------------------------------

    def replica_states(self) -> dict[int, ReplicaState]:
        """Current lifecycle state of every fleet slot."""
        with self._cond:
            return {h.slot: h.state for h in self._handles}

    def _fleet_provenance_locked(self) -> dict[str, dict[str, set]]:
        """model -> {"backends": set, "versions": set} over live replicas."""
        agg: dict[str, dict[str, set]] = {}
        for handle in self._handles:
            if handle.state not in (
                ReplicaState.READY, ReplicaState.DRAINING
            ):
                continue
            for model, prov in handle.provenance.items():
                rec = agg.setdefault(
                    model, {"backends": set(), "versions": set()}
                )
                rec["backends"].add(str(prov.get("backend", "?")))
                rec["versions"].add(prov.get("version"))
        return agg

    def health(self) -> HealthReport:
        """Fleet health: DRAINING when closed, DEGRADED on any fault.

        Reasons enumerate fault counters (as in the single-process
        service) plus the cluster conditions: down or quarantined
        slots, replicas draining for a rollout, and — the fleet
        integrity check — models served with **mixed backends or mixed
        versions** across replicas (a half-finished or half-rolled
        fleet must announce itself; predictions are bit-identical
        across built-in backends, but performance and reproducibility
        metadata are not).
        """
        with self._cond:
            if self._closed:
                return HealthReport(
                    HealthState.DRAINING, ("service is closed/draining",)
                )
            m = self.metrics
            reasons = tuple(
                f"{count} {what}"
                for count, what in (
                    (m.errors_total, "request errors"),
                    (m.shed_total, "requests shed (queue full)"),
                    (m.timeouts_total, "deadline timeouts"),
                    (m.workers_reaped_total, "workers reaped"),
                    (m.worker_timeouts_total, "worker heartbeat timeouts"),
                    (m.tasks_failed_over_total, "tasks failed over"),
                    (m.frame_retries_total, "frame integrity retries"),
                    (m.degraded_scans_total, "degraded scans"),
                    (m.rollout_failures_total, "rollout failures"),
                )
                if count
            )
            if self._started:
                for handle in self._handles:
                    if handle.state is ReplicaState.QUARANTINED:
                        reasons += (
                            f"slot {handle.slot} quarantined after "
                            f"{handle.crashes} consecutive crashes",
                        )
                    elif handle.state is ReplicaState.DEAD:
                        reasons += (
                            f"slot {handle.slot} down, respawn pending",
                        )
                    elif handle.state is ReplicaState.DRAINING:
                        reasons += (
                            f"replica {handle.slot} draining (rollout)",
                        )
            for model, rec in self._fleet_provenance_locked().items():
                if len(rec["backends"]) > 1:
                    reasons += (
                        f"model {model!r}: mixed-backend fleet "
                        f"({', '.join(sorted(rec['backends']))})",
                    )
                if len(rec["versions"]) > 1:
                    versions = ", ".join(
                        str(v) for v in sorted(
                            rec["versions"], key=lambda v: (v is None, v)
                        )
                    )
                    reasons += (
                        f"model {model!r}: mixed versions across replicas "
                        f"({versions})",
                    )
            reasons += tuple(
                f"model {name!r}: {entry.fallback_reason}"
                for name in self.registry.names()
                for entry in (self.registry.get(name),)
                if entry.fallback_reason
            )
            if reasons:
                return HealthReport(HealthState.DEGRADED, reasons)
            return HealthReport(HealthState.READY)

    def stats(self) -> dict[str, object]:
        """Metrics snapshot plus per-replica fleet state and provenance."""
        snapshot = self.metrics.stats()
        snapshot["health"] = self.health().state.value
        snapshot["cache"] = {
            "entries": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "hit_rate": round(self.cache.hit_rate, 4),
        }
        snapshot["plane_cache"] = {
            "entries": len(self.plane_cache),
            "capacity": self.plane_cache.capacity,
            "hits": self.plane_cache.hits,
            "misses": self.plane_cache.misses,
            "hit_rate": round(self.plane_cache.hit_rate, 4),
        }
        snapshot["models"] = {
            name: {
                "backend": self.registry.get(name).backend,
                "pipeline": self.registry.get(name).pipeline,
                "image_size": self.registry.get(name).image_size,
                "fallback_reason": self.registry.get(name).fallback_reason,
                "version": self._versions.get(name, 1),
            }
            for name in self.registry.names()
        }
        with self._cond:
            agg = self._fleet_provenance_locked()
            snapshot["cluster"] = {
                "processes": self.processes,
                "started": self._started,
                "pending_tasks": len(self._pending),
                "outstanding_tasks": len(self._tasks),
                "replicas": {
                    handle.slot: {
                        "state": handle.state.value,
                        "pid": (
                            handle.proc.pid if handle.proc is not None
                            else None
                        ),
                        "generation": handle.generation,
                        "crashes": handle.crashes,
                        "inflight": len(handle.inflight),
                        "tasks_done": handle.tasks_done,
                        "provenance": {
                            model: dict(prov)
                            for model, prov in handle.provenance.items()
                        },
                    }
                    for handle in self._handles
                },
                "fleet": {
                    model: {
                        "backends": sorted(rec["backends"]),
                        "versions": sorted(
                            str(v) for v in rec["versions"]
                        ),
                        "mixed_backend": len(rec["backends"]) > 1,
                    }
                    for model, rec in agg.items()
                },
            }
        return snapshot

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop the fleet: orderly shutdown, then force-kill stragglers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._stop.set()
            handles = list(self._handles)
            for handle in handles:
                handle.shutdown_requested = True
                if handle.alive:
                    try:
                        handle.task_queue.put(ShutdownMsg())
                    except Exception:
                        pass
            # unblock every waiter; their tasks will never complete
            while self._pending:
                task = self._pending.popleft()
                self._fail_locked(task, RuntimeError("service is closed"))
            for task in list(self._tasks.values()):
                self._fail_locked(task, RuntimeError("service is closed"))
            self._cond.notify_all()
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
        budget = time.monotonic() + (timeout if timeout is not None else 10.0)
        for handle in handles:
            proc = handle.proc
            if proc is None:
                continue
            proc.join(timeout=max(0.0, budget - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
