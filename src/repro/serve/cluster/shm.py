"""Zero-copy array transport between router and worker processes.

Rasters and prepared input batches are the bulky part of every request;
pickling them through a ``multiprocessing`` queue would copy each array
twice and serialize it byte-by-byte.  Instead the router writes each
payload once into a :mod:`multiprocessing.shared_memory` segment and
ships only a tiny :class:`FrameRef` (name, shape, dtype, SHA-256
digest) through the queue; workers map the same physical pages.

Integrity is not optional: a worker that scores a torn or corrupted
frame would return silently-wrong predictions, which is strictly worse
than crashing.  Every frame carries the SHA-256 of its payload bytes,
computed by the writer *after* the copy; readers re-hash before use and
raise :class:`~repro.serve.errors.FrameIntegrityError` on mismatch, so
the router can re-create the frame and retry.  The chaos suite drives
this path deliberately via ``FaultInjector.add_tear`` (bytes flipped
after the digest — exactly a torn write).

Lifecycle: the **writer owns the name** — it unlinks the segment when
the round-trip completes (POSIX keeps the pages alive for processes
that still have them mapped).  Readers either copy-and-close
immediately (:func:`read_frame`, the per-task pattern) or hold a
verified :class:`FrameAttachment` open across tasks (the scan path,
where many shards reference one plane frame).  The fleet starts the
``resource_tracker`` *before* forking workers, so the whole process
tree shares one tracker: reader registrations are idempotent, a
SIGKILLed worker leaks nothing, and cleanup-on-crash of the router
still works.  (A per-worker tracker would unlink still-shared frames
when its worker died — that is why attach does not re-register or
unregister anything itself.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import FrameIntegrityError
from ..faults import FaultInjector

__all__ = ["FrameRef", "Frame", "FrameAttachment", "put_frame", "read_frame"]


def _digest(view: memoryview | bytes) -> str:
    return hashlib.sha256(view).hexdigest()


@dataclass(frozen=True)
class FrameRef:
    """Queue-sized handle to a shared-memory array frame.

    ``digest`` is the SHA-256 hex of the payload bytes as written;
    readers must verify it before scoring anything from the frame.
    """

    name: str  #: shared-memory segment name
    shape: tuple[int, ...]
    dtype: str  #: numpy dtype string, e.g. ``"float64"``
    digest: str

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return int(np.dtype(self.dtype).itemsize * np.prod(self.shape, dtype=np.int64))


class Frame:
    """Writer-side handle: the segment plus its :class:`FrameRef`.

    The writer keeps this object alive until every reader is done, then
    calls :meth:`close` (which unlinks).  Idempotent.
    """

    def __init__(self, ref: FrameRef, shm: shared_memory.SharedMemory):
        self.ref = ref
        self._shm: shared_memory.SharedMemory | None = shm

    def close(self) -> None:
        """Close and unlink the segment (safe to call repeatedly)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except OSError:  # pragma: no cover - platform teardown races
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    def __del__(self):  # pragma: no cover - GC safety net
        self.close()


def put_frame(
    array: np.ndarray,
    faults: FaultInjector | None = None,
    site: str = "frame",
) -> Frame:
    """Copy ``array`` into a fresh shared-memory segment.

    The digest is computed over the segment bytes after the copy; a
    reader that hashes the same bytes therefore proves it saw exactly
    what the writer wrote.  When a :class:`FaultInjector` is given, its
    ``site`` rules fire per frame write — a ``tear`` rule flips payload
    bytes *after* the digest so readers must reject the frame.
    """
    array = np.ascontiguousarray(array)
    size = max(1, array.nbytes)  # zero-byte segments are not allowed
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        target = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        target[...] = array
        digest = _digest(shm.buf[: array.nbytes])
        if faults is not None and faults.fire_frame(site, (array,)).tear:
            # the torn-write chaos mode: the digest above is now a lie
            shm.buf[0] = shm.buf[0] ^ 0xFF
        return Frame(
            FrameRef(
                name=shm.name,
                shape=tuple(array.shape),
                dtype=str(array.dtype),
                digest=digest,
            ),
            shm,
        )
    except BaseException:
        shm.close()
        shm.unlink()
        raise


def _attach(ref: FrameRef) -> shared_memory.SharedMemory:
    # CPython registers attached segments with the resource tracker
    # too.  The process tree shares ONE tracker (the fleet starts it
    # before forking), so the duplicate registration is an idempotent
    # no-op: the name stays tracked until the writer's unlink, and a
    # SIGKILLed reader leaks nothing.  (Do not "fix" the duplicate with
    # resource_tracker.unregister — under a shared tracker that removes
    # the *writer's* registration.)
    return shared_memory.SharedMemory(name=ref.name)


class FrameAttachment:
    """Reader-side mapping of a frame, digest-verified at attach time.

    ``array`` is a read-only view of the shared pages — zero-copy.  The
    attachment stays valid even after the writer unlinks the name (the
    mapping pins the pages); call :meth:`close` when done.  Used by
    workers to hold a scan's plane frame across many shard tasks.
    """

    def __init__(self, ref: FrameRef):
        self.ref = ref
        self._shm: shared_memory.SharedMemory | None = None
        self._shm = _attach(ref)
        try:
            if _digest(self._shm.buf[: ref.nbytes]) != ref.digest:
                raise FrameIntegrityError(
                    f"shared-memory frame {ref.name!r} failed its SHA-256 "
                    f"digest check (torn or corrupt write); refusing to "
                    f"score it",
                    frame=ref.name,
                )
            array = np.ndarray(ref.shape, dtype=ref.dtype, buffer=self._shm.buf)
            array.flags.writeable = False
            self.array = array
        except BaseException:
            self._shm.close()
            raise

    def close(self) -> None:
        """Drop the mapping (safe to call repeatedly)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            self.array = None
            try:
                shm.close()
            except OSError:  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - GC safety net
        self.close()


def read_frame(ref: FrameRef) -> np.ndarray:
    """Attach, verify, copy out, and detach in one step.

    The returned array is private to the caller (the copy is taken
    before verification hashes the *shared* bytes again, so a
    concurrent tear between copy and hash is still caught: the hash
    runs on the copy).  This is the per-task pattern for classify
    batches, where the frame is consumed exactly once.
    """
    shm = _attach(ref)
    try:
        view = np.ndarray(ref.shape, dtype=ref.dtype, buffer=shm.buf)
        copy = np.array(view, copy=True)
    finally:
        shm.close()
    if _digest(copy.tobytes()) != ref.digest:
        raise FrameIntegrityError(
            f"shared-memory frame {ref.name!r} failed its SHA-256 digest "
            f"check (torn or corrupt write); refusing to score it",
            frame=ref.name,
        )
    return copy
