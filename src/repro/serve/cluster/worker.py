"""Worker-process main loop: compile engines, score frames, heartbeat.

A worker is deliberately boring: one process, one queue-consuming loop,
no threads.  It compiles its own engines from the shipped
:class:`~repro.serve.cluster.messages.ModelSpec` weights (compiled
engines do not pickle, and per-process compilation is what makes a
crash *isolated* — no shared mutable state can be corrupted), then
serves tasks until told to stop or killed.  Everything interesting —
retries, failover, respawn — lives in the router/supervisor; the
worker's only fault-tolerance duty is to *fail loudly and typed*:
a digest-failing frame is reported as ``frame_corrupt`` (never scored),
a task admitted under a different checkpoint version than the one this
replica serves is reported as ``version_mismatch`` (never scored by
the wrong weights), a scoring exception is reported as an error
string, and a crash is simply a dead process for the supervisor to
notice.

Determinism contract: engines compiled from the same ``ModelSpec`` are
bit-identical across processes (weights are snapshotted at lowering,
kernels are deterministic), so *which* replica scores a shard can never
change a prediction — the cluster parity gate and the rollout canary
probe both pin that line across the process boundary.
"""

from __future__ import annotations

import os
import queue
from dataclasses import dataclass

import numpy as np

from ...features.downsample import to_network_input
from ..errors import FrameIntegrityError
from ..registry import _compile_with_reason
from .messages import (
    ClassifyTask,
    LoadModelMsg,
    ModelLoadedMsg,
    PingMsg,
    PongMsg,
    ReadyMsg,
    ReleaseFrameMsg,
    ScanShardTask,
    ShutdownMsg,
    TaskDoneMsg,
    WorkerConfig,
)
from .shm import FrameAttachment

__all__ = ["worker_main"]

#: plane-frame attachments a worker keeps mapped (per-scan planes are
#: large; two covers the common scan-overlap-with-next-scan window)
_ATTACH_CACHE = 2
#: compiled per-band scan plans kept per worker (plans are band-sized)
_PLAN_CACHE = 4


@dataclass
class _Served:
    """One compiled model inside the worker."""

    spec: object
    engine: object
    provenance: dict[str, object]


def _compile(spec) -> _Served:
    engine, backend, reason = _compile_with_reason(
        spec.model, spec.prefer_packed, spec.backend, spec.passes
    )
    return _Served(
        spec=spec,
        engine=engine,
        provenance={
            "backend": backend,
            "pipeline": getattr(engine, "pipeline", "none"),
            "fallback_reason": reason,
            "version": spec.version,
        },
    )


class _Worker:
    def __init__(self, config: WorkerConfig, task_queue, result_queue):
        self.config = config
        self.tasks = task_queue
        self.results = result_queue
        self.slot = config.slot
        self.generation = config.generation
        self.faults = config.faults
        self.models: dict[str, _Served] = {}
        self.attachments: dict[str, FrameAttachment] = {}
        self.plans: dict[tuple, object] = {}
        self.tasks_done = 0

    # -- chaos ----------------------------------------------------------

    def _fire_task_faults(self, task) -> None:
        """Enter the worker chaos sites with the task as match payload.

        Fires *after* the task is dequeued and in-flight — a ``kill``
        rule here is a crash mid-batch, exactly what the supervisor's
        failover path must absorb.
        """
        if self.faults is None:
            return
        self.faults.fire("worker", (task,))
        self.faults.fire(f"worker:{self.slot}", (task,))

    # -- frame / plan caches --------------------------------------------

    def _attachment(self, ref) -> FrameAttachment:
        cached = self.attachments.get(ref.name)
        if cached is not None:
            return cached
        attachment = FrameAttachment(ref)  # digest verified here
        while len(self.attachments) >= _ATTACH_CACHE:
            old = self.attachments.pop(next(iter(self.attachments)))
            self._drop_plans(old.ref.name)
            old.close()
        self.attachments[ref.name] = attachment
        return attachment

    def _drop_plans(self, frame_name: str) -> None:
        for key in [k for k in self.plans if k[2] == frame_name]:
            del self.plans[key]

    def _release_frame(self, name: str) -> None:
        attachment = self.attachments.pop(name, None)
        if attachment is not None:
            attachment.close()
        self._drop_plans(name)

    # -- scoring --------------------------------------------------------

    def _score_classify(self, task: ClassifyTask, served: _Served) -> np.ndarray:
        from .shm import read_frame

        batch = read_frame(task.frame)  # verified private copy
        return served.engine.predict_logits(batch)

    def _score_scan(self, task: ScanShardTask, served: _Served) -> np.ndarray:
        engine = served.engine
        attachment = self._attachment(task.frame)
        y0, y1 = task.band
        band = attachment.array[y0:y1]
        if hasattr(engine, "plan_scan"):
            key = (task.model, served.spec.version, task.frame.name, task.band)
            plan = self.plans.get(key)
            if plan is None:
                plan = engine.plan_scan(
                    to_network_input(band[None]), task.window_px, task.origins
                )
                while len(self.plans) >= _PLAN_CACHE:
                    self.plans.pop(next(iter(self.plans)))
                self.plans[key] = plan
            return plan.logits(task.origins, batch_size=task.batch_size)
        # engines without a plane path: slice windows, score per batch
        w = task.window_px
        windows = np.stack([band[y : y + w, x : x + w] for x, y in task.origins])
        return served.engine.predict_logits(
            to_network_input(windows), batch_size=task.batch_size
        )

    # -- protocol -------------------------------------------------------

    def _put(self, msg) -> None:
        try:
            self.results.put(msg)
        except (BrokenPipeError, OSError):  # router is gone; nothing to do
            raise SystemExit(0)

    def _handle_task(self, task) -> None:
        # resolve the model and pin the version BEFORE scoring: a task
        # carries the checkpoint version the router admitted it under,
        # and scoring it with different weights would silently mix
        # versions inside one response — refuse, typed, so the router
        # requeues it to a matching replica or fails loudly
        served = self.models.get(task.model)
        if served is None:
            self._put(TaskDoneMsg(
                task_id=task.task_id, slot=self.slot,
                generation=self.generation,
                error=f"worker {self.slot} has no model {task.model!r}",
            ))
            return
        if task.version != served.spec.version:
            self._put(TaskDoneMsg(
                task_id=task.task_id, slot=self.slot,
                generation=self.generation,
                error=(
                    f"worker {self.slot} serves {task.model!r} "
                    f"v{served.spec.version} but the task was admitted "
                    f"under v{task.version}"
                ),
                version_mismatch=True,
            ))
            return
        try:
            self._fire_task_faults(task)
            logits = (
                self._score_classify(task, served)
                if isinstance(task, ClassifyTask)
                else self._score_scan(task, served)
            )
        except FrameIntegrityError as exc:
            self._put(TaskDoneMsg(
                task_id=task.task_id, slot=self.slot,
                generation=self.generation,
                error=str(exc), frame_corrupt=True,
            ))
            return
        except FileNotFoundError as exc:
            # segment gone before we attached: the router superseded the
            # frame (torn-frame refresh) — report it like corruption so
            # the router re-dispatches with the current ref
            self._put(TaskDoneMsg(
                task_id=task.task_id, slot=self.slot,
                generation=self.generation,
                error=f"frame vanished: {exc}", frame_corrupt=True,
            ))
            return
        except Exception as exc:
            self._put(TaskDoneMsg(
                task_id=task.task_id, slot=self.slot,
                generation=self.generation,
                error=f"{type(exc).__name__}: {exc}",
            ))
            return
        self.tasks_done += 1
        self._put(TaskDoneMsg(
            task_id=task.task_id, slot=self.slot,
            generation=self.generation, logits=logits,
        ))

    def _handle_load(self, msg: LoadModelMsg) -> None:
        try:
            served = _compile(msg.spec)
        except Exception as exc:
            # the previous version keeps serving — a bad checkpoint must
            # never take a replica's model away
            self._put(ModelLoadedMsg(
                slot=self.slot, name=msg.spec.name,
                version=msg.spec.version,
                error=f"{type(exc).__name__}: {exc}",
            ))
            return
        self.models[msg.spec.name] = served
        # model changed: compiled plans bake in weights
        self.plans.clear()
        self._put(ModelLoadedMsg(
            slot=self.slot, name=msg.spec.name, version=msg.spec.version,
            provenance=dict(served.provenance),
        ))

    def run(self) -> int:
        for spec in self.config.models:
            self.models[spec.name] = _compile(spec)
        self._put(ReadyMsg(
            slot=self.slot, generation=self.generation, pid=os.getpid(),
            provenance={
                name: dict(served.provenance)
                for name, served in self.models.items()
            },
        ))
        while True:
            try:
                msg = self.tasks.get(timeout=self.config.poll_s)
            except queue.Empty:
                continue
            except (EOFError, OSError):
                return 0
            if isinstance(msg, ShutdownMsg):
                return 0
            if isinstance(msg, PingMsg):
                self._put(PongMsg(
                    slot=self.slot, generation=self.generation,
                    seq=msg.seq, tasks_done=self.tasks_done,
                ))
            elif isinstance(msg, LoadModelMsg):
                self._handle_load(msg)
            elif isinstance(msg, ReleaseFrameMsg):
                self._release_frame(msg.name)
            elif isinstance(msg, (ClassifyTask, ScanShardTask)):
                self._handle_task(msg)
            # unknown messages are dropped: a newer router talking to an
            # older worker must degrade, not wedge the loop


def worker_main(config: WorkerConfig, task_queue, result_queue) -> int:
    """Process entry point (must stay top-level: spawn pickles it)."""
    worker = _Worker(config, task_queue, result_queue)
    try:
        return worker.run()
    finally:
        for attachment in worker.attachments.values():
            attachment.close()
