"""Typed error hierarchy of the serving layer.

Every failure mode the service distinguishes gets its own exception
type, so callers (and tests) can route on *what went wrong* instead of
string-matching messages:

* :class:`DeadlineExceeded` — a request ran past its deadline; the work
  was abandoned (threads cannot be killed, but no caller blocks on it).
* :class:`ServiceOverloaded` — the admission queue was full under the
  ``"shed"`` overflow policy; the request was rejected *before* any
  work was done, so retrying later is always safe.
* :class:`ShardError` — one scan shard failed; carries the contiguous
  ``[start, stop)`` item range so the failure is attributable to exact
  window indices.
* :class:`CheckpointError` — a checkpoint file is corrupt, truncated,
  or fails its content checksum (defined next to the serialization code
  in :mod:`repro.nn.serialization`, re-exported here).
* :class:`FrameIntegrityError` — a shared-memory frame failed its
  SHA-256 digest check (torn write or corruption in transit between
  router and worker processes); the frame is retried, never scored.
* :class:`WorkerCrashError` — work was lost to worker-process crashes
  more times than the failover budget allows; carries the crash count.
* :class:`RolloutError` — a rolling checkpoint rollout failed (drain
  timeout, load failure, or a canary parity mismatch) and was aborted.

All serving errors derive from :class:`ServeError` so ``except
ServeError`` catches the whole family without also swallowing
programming errors like ``TypeError``.
"""

from __future__ import annotations

from ..nn.serialization import CheckpointError

__all__ = [
    "ServeError",
    "DeadlineExceeded",
    "ServiceOverloaded",
    "ShardError",
    "CheckpointError",
    "FrameIntegrityError",
    "WorkerCrashError",
    "RolloutError",
]


class ServeError(RuntimeError):
    """Base class of every serving-layer failure."""


class DeadlineExceeded(ServeError):
    """A request (or one stage of it) ran past its deadline.

    The in-flight work is abandoned, not killed: a hung engine call
    keeps its worker thread until it returns, but no caller waits for
    it and its result is discarded.
    """

    def __init__(self, message: str, timeout_s: float | None = None,
                 stage: str = ""):
        super().__init__(message)
        self.timeout_s = timeout_s
        self.stage = stage  #: where the deadline fired, e.g. ``"queue"``


class ServiceOverloaded(ServeError):
    """The admission queue was full and the overflow policy is ``"shed"``.

    Raised at ``submit()`` time — the request did no work and holds no
    queue slot, so the caller can back off and retry.
    """


class ShardError(ServeError):
    """One scan shard raised; wraps the cause with its item range.

    ``start``/``stop`` are indices into the scanned item list (window
    origins, for the service's scan path), so a failure points at the
    exact contiguous range of windows it took down.  The original
    exception is chained as ``__cause__``.
    """

    def __init__(self, start: int, stop: int, cause: BaseException):
        super().__init__(
            f"shard [{start}:{stop}) failed: {type(cause).__name__}: {cause}"
        )
        self.start = start
        self.stop = stop
        self.__cause__ = cause


class FrameIntegrityError(ServeError):
    """A shared-memory frame failed its SHA-256 digest verification.

    Raised by the frame reader (worker side) when the payload bytes do
    not hash to the digest the writer recorded — a torn write, a
    partially-initialized segment, or corruption in transit.  The
    router treats it as retryable: the frame is re-created from the
    source array and the task resubmitted; a torn frame is **never**
    silently scored.
    """

    def __init__(self, message: str, frame: str = ""):
        super().__init__(message)
        self.frame = frame  #: shared-memory segment name


class WorkerCrashError(ServeError):
    """Work was lost to worker crashes beyond the failover budget.

    A task whose worker dies is failed over to a sibling; a task that
    keeps killing workers (a poison batch) must not crash-loop the
    whole fleet, so after ``crashes`` losses it fails with this error
    instead of being re-queued again.
    """

    def __init__(self, message: str, crashes: int = 0):
        super().__init__(message)
        self.crashes = crashes


class RolloutError(ServeError):
    """A rolling checkpoint rollout was aborted.

    Raised when a replica fails to drain within the rollout deadline,
    fails to load the new checkpoint, or — the integrity case — its
    canary batch is not bit-identical to the router's reference engine
    for the new weights.  The fleet is left serving: replicas not yet
    swapped keep the old model, and the failing replica is rolled back
    when possible.
    """
