"""Deterministic fault injection (chaos hooks) for the serving layer.

The fault-tolerance machinery — deadlines, poison quarantine, degraded
scans — is only trustworthy if it is exercised, and real faults are too
rare and too random to test against.  This module injects them on
demand: a :class:`FaultInjector` holds per-*site* rules ("engine",
"raster", …) that add latency, raise exceptions, or corrupt outputs,
and :class:`HotspotService` threads its calls through the injector when
one is passed at construction.

Determinism is the design constraint: chaos tests must fail
reproducibly.  Rules trigger either unconditionally (``probability=1``),
on a seeded RNG draw, or on an explicit set of call indices
(``on_calls``), and each rule carries an optional ``times`` budget.
With ``on_calls``/``times`` the fault schedule is a pure function of
the per-site call counter, independent of thread scheduling; a seeded
``probability`` draw is reproducible for a serialized call sequence.

The injector is intentionally dumb about *what* it wraps: any callable
works, so tests can also wrap bare engine functions without a service::

    faults = FaultInjector(seed=0)
    faults.add_error("engine", on_calls=[1])     # second call blows up
    flaky = faults.wrap("engine", engine.forward)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultInjector", "InjectedFault", "FaultRule"]


class InjectedFault(RuntimeError):
    """The default exception raised by an error-injection rule."""


@dataclass
class FaultRule:
    """One injection rule at one site.

    ``kind`` is ``"latency"`` (sleep ``latency_ms``), ``"error"``
    (raise ``error``), or ``"corrupt"`` (negate the wrapped call's
    array output — numerically loud, structurally intact).

    ``match`` targets the rule by call *content* instead of call
    *count*: a predicate over the wrapped call's positional-args tuple
    (``match(args)``), so e.g. a chip-scan rule can poison exactly the
    tiles covering one window no matter how scheduling orders the
    calls.  A match rule only fires on calls that carry arguments
    (``fire`` without args never matches), and the predicate runs
    under the injector lock — keep it pure.
    """

    kind: str
    probability: float = 1.0
    latency_ms: float = 0.0
    error: BaseException | None = None
    on_calls: frozenset[int] | None = None  #: 0-based call indices to hit
    times: int | None = None  #: remaining firing budget (None = unlimited)
    match: object | None = None  #: predicate over the call's args tuple
    fired: int = field(default=0)  #: how often this rule has fired

    def _applies(self, call_index: int, rng: np.random.Generator,
                 args: tuple = ()) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.on_calls is not None and call_index not in self.on_calls:
            return False
        if self.match is not None and not (args and self.match(args)):
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Seeded, thread-safe chaos hook: latency, errors, corruption.

    Sites are plain strings; the service uses ``"engine"`` for every
    inference invocation (batched classify, scan chunks, plane scoring)
    and ``"raster"`` for rasterization/cache fills.  Tests may invent
    their own sites for bare-callable wrapping.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._rules: dict[str, list[FaultRule]] = {}
        self._calls: dict[str, int] = {}

    # -- configuring rules -----------------------------------------------

    def _add(self, site: str, rule: FaultRule) -> FaultRule:
        with self._lock:
            self._rules.setdefault(site, []).append(rule)
        return rule

    def add_latency(
        self,
        site: str,
        latency_ms: float,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Sleep ``latency_ms`` before the wrapped call."""
        return self._add(site, FaultRule(
            kind="latency", probability=probability, latency_ms=latency_ms,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_error(
        self,
        site: str,
        error: BaseException | None = None,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Raise ``error`` (default :class:`InjectedFault`) at the site."""
        return self._add(site, FaultRule(
            kind="error", probability=probability,
            error=error if error is not None
            else InjectedFault(f"injected fault at site {site!r}"),
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_corruption(
        self,
        site: str,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Negate the wrapped call's array output (shape-preserving)."""
        return self._add(site, FaultRule(
            kind="corrupt", probability=probability,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def clear(self, site: str | None = None) -> None:
        """Drop every rule (of one site, or all); counters survive."""
        with self._lock:
            if site is None:
                self._rules.clear()
            else:
                self._rules.pop(site, None)

    # -- firing ----------------------------------------------------------

    def calls(self, site: str) -> int:
        """How many times the site has been entered."""
        with self._lock:
            return self._calls.get(site, 0)

    def fire(self, site: str, args: tuple = ()) -> bool:
        """Enter a site: apply latency/error rules; return corrupt flag.

        Returns ``True`` when a corruption rule fired for this call, so
        wrappers know to mangle the output.  Sleeps happen outside the
        lock; an error rule raises its exception out of this method.
        ``args`` carries the wrapped call's positional arguments to
        ``match`` rules (calls fired without args never match them).
        """
        sleep_ms = 0.0
        error: BaseException | None = None
        corrupt = False
        with self._lock:
            index = self._calls.get(site, 0)
            self._calls[site] = index + 1
            for rule in self._rules.get(site, ()):
                if not rule._applies(index, self._rng, args):
                    continue
                if rule.kind == "latency":
                    sleep_ms += rule.latency_ms
                elif rule.kind == "error" and error is None:
                    error = rule.error
                elif rule.kind == "corrupt":
                    corrupt = True
        if sleep_ms > 0.0:
            time.sleep(sleep_ms / 1000.0)
        if error is not None:
            raise error
        return corrupt

    def wrap(self, site: str, fn):
        """Wrap ``fn`` so every call passes through the site's rules."""

        def wrapped(*args, **kwargs):
            corrupt = self.fire(site, args)
            out = fn(*args, **kwargs)
            if corrupt and isinstance(out, np.ndarray):
                out = np.negative(out)
            return out

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped
