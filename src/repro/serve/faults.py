"""Deterministic fault injection (chaos hooks) for the serving layer.

The fault-tolerance machinery — deadlines, poison quarantine, degraded
scans — is only trustworthy if it is exercised, and real faults are too
rare and too random to test against.  This module injects them on
demand: a :class:`FaultInjector` holds per-*site* rules ("engine",
"raster", …) that add latency, raise exceptions, or corrupt outputs,
and :class:`HotspotService` threads its calls through the injector when
one is passed at construction.

Determinism is the design constraint: chaos tests must fail
reproducibly.  Rules trigger either unconditionally (``probability=1``),
on a seeded RNG draw, or on an explicit set of call indices
(``on_calls``), and each rule carries an optional ``times`` budget.
With ``on_calls``/``times`` the fault schedule is a pure function of
the per-site call counter, independent of thread scheduling; a seeded
``probability`` draw is reproducible for a serialized call sequence.

The injector is intentionally dumb about *what* it wraps: any callable
works, so tests can also wrap bare engine functions without a service::

    faults = FaultInjector(seed=0)
    faults.add_error("engine", on_calls=[1])     # second call blows up
    flaky = faults.wrap("engine", engine.forward)

**Process-level faults** (the cluster chaos surface, see
:mod:`repro.serve.cluster`): three rule kinds target the process
boundary itself.  ``add_kill`` sends the *current process* a signal
(default ``SIGKILL``) when it fires — placed at a worker's task site it
is a crash mid-batch; ``add_hang`` sleeps far past any heartbeat
deadline, simulating a wedged native kernel; ``add_tear`` flags a
shared-memory frame write for corruption *after* its integrity digest
is computed, producing exactly the torn-frame condition the reader's
digest check must catch.  The injector is picklable (the lock is
recreated on unpickle) so a cluster router can ship it to worker
processes at spawn; each worker gets an independent copy with fresh
call counters, making per-worker fault schedules deterministic.  Rule
``match`` predicates and ``error`` instances must themselves be
picklable (module-level functions, not lambdas) for that to work.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultInjector", "InjectedFault", "FaultRule", "FrameFaults"]


class InjectedFault(RuntimeError):
    """The default exception raised by an error-injection rule."""


@dataclass(frozen=True)
class FrameFaults:
    """Flags a frame writer consumes from :meth:`FaultInjector.fire_frame`.

    ``corrupt`` asks the wrapper to mangle the call's *output* (the
    classic in-process corruption); ``tear`` asks a shared-memory frame
    writer to flip payload bytes *after* the integrity digest was
    computed, so the reader's digest verification must reject the
    frame.
    """

    corrupt: bool = False
    tear: bool = False


@dataclass
class FaultRule:
    """One injection rule at one site.

    ``kind`` is ``"latency"`` (sleep ``latency_ms``), ``"error"``
    (raise ``error``), ``"corrupt"`` (negate the wrapped call's array
    output — numerically loud, structurally intact), ``"kill"`` (send
    ``kill_sig`` to the current process — a worker crash mid-task),
    ``"hang"`` (sleep ``hang_s``, far past any heartbeat deadline), or
    ``"tear"`` (corrupt a shared-memory frame after its digest — only
    observed through :meth:`FaultInjector.fire_frame`).

    ``match`` targets the rule by call *content* instead of call
    *count*: a predicate over the wrapped call's positional-args tuple
    (``match(args)``), so e.g. a chip-scan rule can poison exactly the
    tiles covering one window no matter how scheduling orders the
    calls.  A match rule only fires on calls that carry arguments
    (``fire`` without args never matches), and the predicate runs
    under the injector lock — keep it pure.
    """

    kind: str
    probability: float = 1.0
    latency_ms: float = 0.0
    error: BaseException | None = None
    on_calls: frozenset[int] | None = None  #: 0-based call indices to hit
    times: int | None = None  #: remaining firing budget (None = unlimited)
    match: object | None = None  #: predicate over the call's args tuple
    kill_sig: int = signal.SIGKILL  #: signal a ``"kill"`` rule delivers
    hang_s: float = 3600.0  #: how long a ``"hang"`` rule sleeps
    fired: int = field(default=0)  #: how often this rule has fired

    def _applies(self, call_index: int, rng: np.random.Generator,
                 args: tuple = ()) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.on_calls is not None and call_index not in self.on_calls:
            return False
        if self.match is not None and not (args and self.match(args)):
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Seeded, thread-safe chaos hook: latency, errors, corruption,
    process kills, hangs, and torn shared-memory frames.

    Sites are plain strings; the service uses ``"engine"`` for every
    inference invocation (batched classify, scan chunks, plane scoring)
    and ``"raster"`` for rasterization/cache fills.  The cluster layer
    adds ``"worker"`` (fired in every worker process before each task),
    ``"worker:<slot>"`` (slot-targeted), and ``"frame"`` (shared-memory
    frame writes).  Tests may invent their own sites for bare-callable
    wrapping.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._rules: dict[str, list[FaultRule]] = {}
        self._calls: dict[str, int] = {}

    # -- pickling (ship the injector to worker processes) ----------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle; recreated on load
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- configuring rules -----------------------------------------------

    def _add(self, site: str, rule: FaultRule) -> FaultRule:
        with self._lock:
            self._rules.setdefault(site, []).append(rule)
        return rule

    def add_latency(
        self,
        site: str,
        latency_ms: float,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Sleep ``latency_ms`` before the wrapped call."""
        return self._add(site, FaultRule(
            kind="latency", probability=probability, latency_ms=latency_ms,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_error(
        self,
        site: str,
        error: BaseException | None = None,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Raise ``error`` (default :class:`InjectedFault`) at the site."""
        return self._add(site, FaultRule(
            kind="error", probability=probability,
            error=error if error is not None
            else InjectedFault(f"injected fault at site {site!r}"),
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_corruption(
        self,
        site: str,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Negate the wrapped call's array output (shape-preserving)."""
        return self._add(site, FaultRule(
            kind="corrupt", probability=probability,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_kill(
        self,
        site: str,
        sig: int = signal.SIGKILL,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Send the current process ``sig`` when the rule fires.

        Fired at a cluster worker's ``"worker"``/``"worker:<slot>"``
        site this is a crash mid-batch: the task was dequeued and is
        in-flight when the process dies, so the supervisor must detect
        the death, fail the shard over to a sibling, and respawn the
        slot.  ``SIGKILL`` (the default) cannot be caught — the worker
        gets no chance to reply or clean up, which is the point.
        """
        return self._add(site, FaultRule(
            kind="kill", probability=probability, kill_sig=sig,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_hang(
        self,
        site: str,
        hang_s: float = 3600.0,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Sleep ``hang_s`` seconds at the site — a wedged worker.

        Unlike :meth:`add_latency` this models a *hang past the
        deadline*: the sleep is expected to outlive the supervisor's
        heartbeat timeout, so the worker is declared dead and killed
        while still inside the sleep.
        """
        return self._add(site, FaultRule(
            kind="hang", probability=probability, hang_s=hang_s,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def add_tear(
        self,
        site: str,
        probability: float = 1.0,
        on_calls=None,
        times: int | None = None,
        match=None,
    ) -> FaultRule:
        """Corrupt a shared-memory frame *after* its digest is computed.

        Only frame writers observe this (via :meth:`fire_frame`); the
        reader's digest verification must then reject the frame as
        torn, triggering the retry path — the frame is never silently
        scored.
        """
        return self._add(site, FaultRule(
            kind="tear", probability=probability,
            on_calls=None if on_calls is None else frozenset(on_calls),
            times=times, match=match,
        ))

    def clear(self, site: str | None = None) -> None:
        """Drop every rule (of one site, or all); counters survive."""
        with self._lock:
            if site is None:
                self._rules.clear()
            else:
                self._rules.pop(site, None)

    # -- firing ----------------------------------------------------------

    def calls(self, site: str) -> int:
        """How many times the site has been entered."""
        with self._lock:
            return self._calls.get(site, 0)

    def _collect(self, site: str, args: tuple):
        """Advance the site counter and gather the rules that fire."""
        sleep_s = 0.0
        error: BaseException | None = None
        corrupt = False
        tear = False
        kill_sig: int | None = None
        with self._lock:
            index = self._calls.get(site, 0)
            self._calls[site] = index + 1
            for rule in self._rules.get(site, ()):
                if not rule._applies(index, self._rng, args):
                    continue
                if rule.kind == "latency":
                    sleep_s += rule.latency_ms / 1000.0
                elif rule.kind == "hang":
                    sleep_s += rule.hang_s
                elif rule.kind == "error" and error is None:
                    error = rule.error
                elif rule.kind == "corrupt":
                    corrupt = True
                elif rule.kind == "tear":
                    tear = True
                elif rule.kind == "kill" and kill_sig is None:
                    kill_sig = rule.kill_sig
        return sleep_s, error, corrupt, tear, kill_sig

    def fire(self, site: str, args: tuple = ()) -> bool:
        """Enter a site: apply latency/hang/kill/error rules; return
        the corrupt flag.

        Returns ``True`` when a corruption rule fired for this call, so
        wrappers know to mangle the output.  Sleeps (latency and hangs)
        happen outside the lock; a kill rule signals the current
        process before an error rule could raise; an error rule raises
        its exception out of this method.  ``args`` carries the wrapped
        call's positional arguments to ``match`` rules (calls fired
        without args never match them).  Tear rules are not observable
        here — frame writers use :meth:`fire_frame`.
        """
        sleep_s, error, corrupt, _tear, kill_sig = self._collect(site, args)
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        if kill_sig is not None:
            os.kill(os.getpid(), kill_sig)
        if error is not None:
            raise error
        return corrupt

    def fire_frame(self, site: str, args: tuple = ()) -> FrameFaults:
        """Enter a frame-writer site; returns corrupt *and* tear flags.

        Latency/hang/kill/error rules behave as in :meth:`fire`; the
        returned :class:`FrameFaults` additionally reports ``tear`` so
        the shared-memory writer can flip payload bytes after the
        digest.
        """
        sleep_s, error, corrupt, tear, kill_sig = self._collect(site, args)
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        if kill_sig is not None:
            os.kill(os.getpid(), kill_sig)
        if error is not None:
            raise error
        return FrameFaults(corrupt=corrupt, tear=tear)

    def wrap(self, site: str, fn):
        """Wrap ``fn`` so every call passes through the site's rules."""

        def wrapped(*args, **kwargs):
            corrupt = self.fire(site, args)
            out = fn(*args, **kwargs)
            if corrupt and isinstance(out, np.ndarray):
                out = np.negative(out)
            return out

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped
