"""Service observability: counters, latency histograms, batch stats.

Everything is in-process and lock-protected; :meth:`ServiceMetrics.stats`
returns a plain-dict snapshot suitable for logging, table formatting, or
export to an external metrics system.  Histograms use fixed logarithmic
bucket bounds (Prometheus-style cumulative-free counts) so percentile
estimates are cheap and allocation-free on the hot path.
"""

from __future__ import annotations

import math
from threading import Lock

__all__ = ["LatencyHistogram", "ServiceMetrics", "DEFAULT_BUCKETS_MS"]

#: Upper bounds (milliseconds) of the latency histogram buckets.
DEFAULT_BUCKETS_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, math.inf,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with mean and percentile estimates."""

    def __init__(self, bounds_ms: tuple[float, ...] = DEFAULT_BUCKETS_MS):
        if not bounds_ms or bounds_ms[-1] != math.inf:
            raise ValueError("bucket bounds must end with +inf")
        self.bounds_ms = bounds_ms
        self.counts = [0] * len(bounds_ms)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one latency sample."""
        for i, bound in enumerate(self.bounds_ms):
            if latency_ms <= bound:
                self.counts[i] += 1
                break
        self.total += 1
        self.sum_ms += latency_ms
        if latency_ms > self.max_ms:
            self.max_ms = latency_ms

    @property
    def mean_ms(self) -> float:
        """Mean observed latency (0.0 when empty)."""
        return self.sum_ms / self.total if self.total else 0.0

    def quantile_ms(self, q: float) -> float:
        """Upper bucket bound containing the ``q`` quantile (0.0 empty).

        A conservative estimate: the true quantile is at or below the
        returned bound (the last finite bound for the +inf bucket).
        """
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                bound = self.bounds_ms[i]
                return bound if math.isfinite(bound) else self.max_ms
        return self.max_ms

    def snapshot(self) -> dict[str, float]:
        """Summary dict: count, mean, p50/p95/p99 estimates, max."""
        return {
            "count": self.total,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": self.quantile_ms(0.50),
            "p95_ms": self.quantile_ms(0.95),
            "p99_ms": self.quantile_ms(0.99),
            "max_ms": round(self.max_ms, 3),
        }


class ServiceMetrics:
    """Thread-safe counters and histograms for one service instance.

    Besides its own counters, the object can host per-model engine
    op-timing tables (:meth:`register_op_table`): any object with
    ``snapshot() -> list[dict]`` and ``reset()`` — in practice
    :class:`repro.engine.executor.OpTimings` — whose rows then appear
    under ``per_op_ms`` in :meth:`stats`, giving the per-layer time
    breakdown of everything the engines executed.
    """

    def __init__(self):
        self._lock = Lock()
        self._op_tables: dict[str, object] = {}
        self.requests_total = 0
        self.errors_total = 0
        self.shed_total = 0
        self.timeouts_total = 0
        self.quarantined_total = 0
        self.batches_total = 0
        self.batch_splits_total = 0
        self.batched_clips_total = 0
        self.max_batch_size = 0
        self.scan_requests_total = 0
        self.plane_scan_requests_total = 0
        self.degraded_scans_total = 0
        self.windows_scanned_total = 0
        self.windows_failed_total = 0
        self.shard_retries_total = 0
        self.chip_scan_requests_total = 0
        self.chip_rescan_requests_total = 0
        self.chip_tiles_scanned_total = 0
        self.chip_tiles_failed_total = 0
        self.chip_windows_rescored_total = 0
        self.chip_peak_tile_bytes = 0
        self.chip_tiles_replayed_total = 0
        self.chip_tile_retries_total = 0
        self.chip_backoff_ms_total = 0.0
        self.chip_windows_quarantined_total = 0
        self.chip_resumed_scans_total = 0
        self.workers_spawned_total = 0
        self.workers_reaped_total = 0
        self.worker_timeouts_total = 0
        self.tasks_failed_over_total = 0
        self.frame_retries_total = 0
        self.slots_quarantined_total = 0
        self.rollouts_total = 0
        self.rollout_failures_total = 0
        self.request_latency = LatencyHistogram()
        self.batch_latency = LatencyHistogram()
        self.scan_latency = LatencyHistogram()
        self.chip_scan_latency = LatencyHistogram()

    # -- recording hooks -------------------------------------------------

    def record_request(self, latency_ms: float) -> None:
        """One classify request completed end-to-end."""
        with self._lock:
            self.requests_total += 1
            self.request_latency.observe(latency_ms)

    def record_error(self) -> None:
        """One request failed (exception surfaced to the caller)."""
        with self._lock:
            self.errors_total += 1

    def record_shed(self) -> None:
        """One request rejected at admission (queue full, shed policy)."""
        with self._lock:
            self.shed_total += 1

    def record_timeout(self) -> None:
        """One request abandoned past its deadline."""
        with self._lock:
            self.timeouts_total += 1

    def record_quarantine(self, n: int = 1) -> None:
        """``n`` poison requests isolated by batch bisection."""
        with self._lock:
            self.quarantined_total += n

    def record_batch_split(self) -> None:
        """One failed batch bisected to isolate its poison request(s)."""
        with self._lock:
            self.batch_splits_total += 1

    def record_batch(self, size: int, latency_ms: float) -> None:
        """One coalesced engine invocation of ``size`` clips."""
        with self._lock:
            self.batches_total += 1
            self.batched_clips_total += size
            if size > self.max_batch_size:
                self.max_batch_size = size
            self.batch_latency.observe(latency_ms)

    def record_scan(
        self,
        windows: int,
        latency_ms: float,
        plane: bool = False,
        failed_windows: int = 0,
        retried_shards: int = 0,
    ) -> None:
        """One scan request sweeping ``windows`` windows.

        ``plane=True`` marks a sweep served by the plane-compiled scan
        engine rather than per-window rasterization.  ``failed_windows``
        counts windows whose shard failed even after retry (a degraded
        scan); ``retried_shards`` counts shard retries that happened
        (whether or not the retry succeeded).
        """
        with self._lock:
            self.scan_requests_total += 1
            if plane:
                self.plane_scan_requests_total += 1
            if failed_windows:
                self.degraded_scans_total += 1
            self.windows_scanned_total += windows
            self.windows_failed_total += failed_windows
            self.shard_retries_total += retried_shards
            self.scan_latency.observe(latency_ms)

    def record_chip_scan(
        self,
        windows: int,
        tiles: int,
        latency_ms: float,
        failed_tiles: int = 0,
        failed_windows: int = 0,
        peak_tile_bytes: int = 0,
        rescored_windows: int | None = None,
        retried_shards: int = 0,
        replayed_tiles: int = 0,
        tile_retries: int = 0,
        backoff_ms: float = 0.0,
        quarantined_windows: int = 0,
        resumed: bool = False,
    ) -> None:
        """One full-chip streaming scan (or incremental re-scan).

        ``rescored_windows`` is ``None`` for a full scan; an integer
        marks the request as an ECO re-scan and accumulates the dirty
        windows actually re-scored.  ``peak_tile_bytes`` keeps a
        high-water mark across requests (the budget-compliance signal
        an operator watches).

        The durable-scan arguments: ``replayed_tiles`` counts tiles
        served from a resume journal instead of being re-scored,
        ``tile_retries``/``backoff_ms`` the retry-policy work spent,
        ``quarantined_windows`` the poison windows isolated by
        bisection (these degrade the scan like failed tiles do), and
        ``resumed`` marks a scan continued from a journal.
        """
        with self._lock:
            self.chip_scan_requests_total += 1
            if rescored_windows is not None:
                self.chip_rescan_requests_total += 1
                self.chip_windows_rescored_total += rescored_windows
            if failed_tiles or quarantined_windows:
                self.degraded_scans_total += 1
            self.chip_tiles_scanned_total += tiles - failed_tiles
            self.chip_tiles_failed_total += failed_tiles
            self.windows_scanned_total += windows
            self.windows_failed_total += failed_windows
            self.shard_retries_total += retried_shards
            self.chip_tiles_replayed_total += replayed_tiles
            self.chip_tile_retries_total += tile_retries
            self.chip_backoff_ms_total += backoff_ms
            self.chip_windows_quarantined_total += quarantined_windows
            if resumed:
                self.chip_resumed_scans_total += 1
            if peak_tile_bytes > self.chip_peak_tile_bytes:
                self.chip_peak_tile_bytes = peak_tile_bytes
            self.chip_scan_latency.observe(latency_ms)

    # -- cluster (worker-process fleet) hooks ----------------------------

    def record_worker_spawn(self) -> None:
        """One worker process spawned (initial fleet or a respawn)."""
        with self._lock:
            self.workers_spawned_total += 1

    def record_worker_reap(self, timed_out: bool = False) -> None:
        """One worker process reaped (crash, kill, or heartbeat timeout).

        ``timed_out`` marks a reap forced by a missed heartbeat (the
        supervisor killed a hung worker) rather than an observed death.
        """
        with self._lock:
            self.workers_reaped_total += 1
            if timed_out:
                self.worker_timeouts_total += 1

    def record_failover(self, n: int = 1) -> None:
        """``n`` in-flight tasks re-queued to sibling workers."""
        with self._lock:
            self.tasks_failed_over_total += n

    def record_frame_retry(self) -> None:
        """One shared-memory frame rejected by digest check and rebuilt."""
        with self._lock:
            self.frame_retries_total += 1

    def record_slot_quarantine(self) -> None:
        """One fleet slot quarantined after a crash loop."""
        with self._lock:
            self.slots_quarantined_total += 1

    def record_rollout(self, ok: bool = True) -> None:
        """One rolling checkpoint rollout finished (or aborted)."""
        with self._lock:
            self.rollouts_total += 1
            if not ok:
                self.rollout_failures_total += 1

    def register_op_table(self, model: str, table: object) -> None:
        """Attach a per-op timing table for ``model`` (idempotent).

        ``table`` must provide ``snapshot()`` and ``reset()``; the same
        object may be registered repeatedly (services register on every
        request path touch, engines own the table).
        """
        with self._lock:
            self._op_tables[model] = table

    def reset(self) -> None:
        """Zero every counter and histogram (e.g. after a warm-up phase).

        In-place, so holders of a reference — batchers, services — keep
        recording into the same object.  Registered per-op tables are
        reset too (their registration is kept).
        """
        with self._lock:
            tables = list(self._op_tables.values())
        for table in tables:
            table.reset()
        with self._lock:
            self.requests_total = 0
            self.errors_total = 0
            self.shed_total = 0
            self.timeouts_total = 0
            self.quarantined_total = 0
            self.batches_total = 0
            self.batch_splits_total = 0
            self.batched_clips_total = 0
            self.max_batch_size = 0
            self.scan_requests_total = 0
            self.plane_scan_requests_total = 0
            self.degraded_scans_total = 0
            self.windows_scanned_total = 0
            self.windows_failed_total = 0
            self.shard_retries_total = 0
            self.chip_scan_requests_total = 0
            self.chip_rescan_requests_total = 0
            self.chip_tiles_scanned_total = 0
            self.chip_tiles_failed_total = 0
            self.chip_windows_rescored_total = 0
            self.chip_peak_tile_bytes = 0
            self.chip_tiles_replayed_total = 0
            self.chip_tile_retries_total = 0
            self.chip_backoff_ms_total = 0.0
            self.chip_windows_quarantined_total = 0
            self.chip_resumed_scans_total = 0
            self.workers_spawned_total = 0
            self.workers_reaped_total = 0
            self.worker_timeouts_total = 0
            self.tasks_failed_over_total = 0
            self.frame_retries_total = 0
            self.slots_quarantined_total = 0
            self.rollouts_total = 0
            self.rollout_failures_total = 0
            self.request_latency = LatencyHistogram()
            self.batch_latency = LatencyHistogram()
            self.scan_latency = LatencyHistogram()
            self.chip_scan_latency = LatencyHistogram()

    # -- reporting -------------------------------------------------------

    @property
    def mean_batch_size(self) -> float:
        """Average clips per engine invocation (0.0 when no batches)."""
        if self.batches_total == 0:
            return 0.0
        return self.batched_clips_total / self.batches_total

    def stats(self) -> dict[str, object]:
        """Plain-dict snapshot of every counter and histogram summary.

        ``per_op_ms`` maps each model with a registered op table to its
        per-layer timing rows (``op``, ``calls``, ``total_ms``,
        ``mean_ms`` — cumulative since the last reset, in program
        order), covering batched classify *and* plane-scan work because
        both run through the same executor.
        """
        with self._lock:
            tables = dict(self._op_tables)
        per_op = {name: table.snapshot() for name, table in tables.items()}
        with self._lock:
            return {
                "per_op_ms": per_op,
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "shed_total": self.shed_total,
                "timeouts_total": self.timeouts_total,
                "quarantined_total": self.quarantined_total,
                "batches_total": self.batches_total,
                "batch_splits_total": self.batch_splits_total,
                "batched_clips_total": self.batched_clips_total,
                "mean_batch_size": round(self.mean_batch_size, 2),
                "max_batch_size": self.max_batch_size,
                "scan_requests_total": self.scan_requests_total,
                "plane_scan_requests_total": self.plane_scan_requests_total,
                "degraded_scans_total": self.degraded_scans_total,
                "windows_scanned_total": self.windows_scanned_total,
                "windows_failed_total": self.windows_failed_total,
                "shard_retries_total": self.shard_retries_total,
                "chip_scan_requests_total": self.chip_scan_requests_total,
                "chip_rescan_requests_total": self.chip_rescan_requests_total,
                "chip_tiles_scanned_total": self.chip_tiles_scanned_total,
                "chip_tiles_failed_total": self.chip_tiles_failed_total,
                "chip_windows_rescored_total":
                    self.chip_windows_rescored_total,
                "chip_peak_tile_bytes": self.chip_peak_tile_bytes,
                "chip_tiles_replayed_total": self.chip_tiles_replayed_total,
                "chip_tile_retries_total": self.chip_tile_retries_total,
                "chip_backoff_ms_total": round(self.chip_backoff_ms_total, 3),
                "chip_windows_quarantined_total":
                    self.chip_windows_quarantined_total,
                "chip_resumed_scans_total": self.chip_resumed_scans_total,
                "workers_spawned_total": self.workers_spawned_total,
                "workers_reaped_total": self.workers_reaped_total,
                "worker_timeouts_total": self.worker_timeouts_total,
                "tasks_failed_over_total": self.tasks_failed_over_total,
                "frame_retries_total": self.frame_retries_total,
                "slots_quarantined_total": self.slots_quarantined_total,
                "rollouts_total": self.rollouts_total,
                "rollout_failures_total": self.rollout_failures_total,
                "request_latency": self.request_latency.snapshot(),
                "batch_latency": self.batch_latency.snapshot(),
                "scan_latency": self.scan_latency.snapshot(),
                "chip_scan_latency": self.chip_scan_latency.snapshot(),
            }
