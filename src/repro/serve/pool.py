"""Worker pool for scan-mode requests: shard ranges over threads.

A scan request sweeps a full layout with thousands of sliding windows;
each window is rasterized and classified independently, so the window
list shards cleanly.  Threads (not processes) are the right pool here:
the work is NumPy-bound — rasterization and the engine's matmuls drop
the GIL — and threads share the raster cache and compiled engine
without pickling model weights per worker.

Results are returned **in shard order** (each shard a contiguous slice
of the input list), so the pool is deterministic: the same item list
produces the same flattened result list regardless of worker count or
scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["WorkerPool", "shard_slices"]

T = TypeVar("T")
R = TypeVar("R")


def shard_slices(n_items: int, n_shards: int) -> list[slice]:
    """Split ``range(n_items)`` into at most ``n_shards`` near-equal
    contiguous slices (empty shards are dropped)."""
    n_shards = max(1, min(n_shards, n_items)) if n_items else 0
    slices = []
    base, extra = divmod(n_items, n_shards) if n_shards else (0, 0)
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


class WorkerPool:
    """A small persistent thread pool mapping shard functions over lists."""

    def __init__(self, workers: int | None = None):
        if workers is None:
            workers = max(1, min(8, os.cpu_count() or 1))
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve-worker"
        )

    def map_shards(
        self,
        fn: Callable[[Sequence[T]], list[R]],
        items: Sequence[T],
        shards: int | None = None,
    ) -> list[R]:
        """Apply ``fn`` to contiguous shards of ``items``; flatten in order.

        ``fn`` receives one shard (a subsequence) and returns a list of
        per-item results.  Defaults to one shard per worker.
        """
        # len(), not truthiness: numpy arrays and other Sequence types
        # raise or mislead on bool()
        if len(items) == 0:
            return []
        slices = shard_slices(len(items), shards or self.workers)
        if len(slices) == 1:
            return list(fn(items))
        futures = [self._executor.submit(fn, items[s]) for s in slices]
        results: list[R] = []
        for future in futures:
            results.extend(future.result())
        return results

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight shards."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
