"""Worker pool for scan-mode requests: shard ranges over threads.

A scan request sweeps a full layout with thousands of sliding windows;
each window is rasterized and classified independently, so the window
list shards cleanly.  Threads (not processes) are the right pool here:
the work is NumPy-bound — rasterization and the engine's matmuls drop
the GIL — and threads share the raster cache and compiled engine
without pickling model weights per worker.

Results are returned **in shard order** (each shard a contiguous slice
of the input list), so the pool is deterministic: the same item list
produces the same flattened result list regardless of worker count or
scheduling.

Failure semantics (two modes, per call):

* :meth:`WorkerPool.map_shards` is all-or-nothing: a shard exception is
  wrapped in :class:`~repro.serve.errors.ShardError` carrying the exact
  ``[start, stop)`` item range, not-yet-started shards are cancelled,
  and a ``timeout`` bounds the whole map with
  :class:`~repro.serve.errors.DeadlineExceeded` (running shards are
  abandoned, never joined — threads cannot be killed).
* :meth:`WorkerPool.map_shards_tolerant` degrades instead of raising:
  each failed shard is retried up to ``retries`` times and the call
  returns per-shard :class:`ShardOutcome` records, so the caller (the
  scan path) can keep every healthy shard's results and report the
  failed ranges instead of discarding the sweep.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from .errors import DeadlineExceeded, ShardError

__all__ = ["WorkerPool", "ShardOutcome", "shard_slices"]

T = TypeVar("T")
R = TypeVar("R")


def shard_slices(n_items: int, n_shards: int) -> list[slice]:
    """Split ``range(n_items)`` into at most ``n_shards`` near-equal
    contiguous slices (empty shards are dropped)."""
    n_shards = max(1, min(n_shards, n_items)) if n_items else 0
    slices = []
    base, extra = divmod(n_items, n_shards) if n_shards else (0, 0)
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


@dataclass
class ShardOutcome:
    """Result of one shard in a tolerant map.

    Exactly one of ``results`` / ``error`` is set.  ``start``/``stop``
    are the shard's item range; ``retries`` counts re-runs that
    happened (whether the shard ultimately succeeded or not).
    """

    start: int
    stop: int
    results: list | None = None
    error: BaseException | None = None
    retries: int = 0

    @property
    def ok(self) -> bool:
        """Whether the shard produced results."""
        return self.error is None


class WorkerPool:
    """A small persistent thread pool mapping shard functions over lists."""

    def __init__(self, workers: int | None = None):
        if workers is None:
            workers = max(1, min(8, os.cpu_count() or 1))
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve-worker"
        )

    def map_shards(
        self,
        fn: Callable[[Sequence[T]], list[R]],
        items: Sequence[T],
        shards: int | None = None,
        timeout: float | None = None,
    ) -> list[R]:
        """Apply ``fn`` to contiguous shards of ``items``; flatten in order.

        ``fn`` receives one shard (a subsequence) and returns a list of
        per-item results.  Defaults to one shard per worker.

        All-or-nothing: the first shard failure cancels every
        not-yet-started shard and raises :class:`ShardError` naming the
        failed ``[start, stop)`` range (the cause chained); exceeding
        ``timeout`` (seconds, over the whole call) cancels pending
        shards and raises :class:`DeadlineExceeded`.
        """
        # len(), not truthiness: numpy arrays and other Sequence types
        # raise or mislead on bool()
        if len(items) == 0:
            return []
        slices = shard_slices(len(items), shards or self.workers)
        if len(slices) == 1 and timeout is None:
            try:
                return list(fn(items))
            except Exception as exc:
                raise ShardError(0, len(items), exc) from exc
        deadline = None if timeout is None else time.monotonic() + timeout
        futures = [self._executor.submit(fn, items[s]) for s in slices]
        results: list[R] = []
        for i, future in enumerate(futures):
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                results.extend(future.result(timeout=remaining))
            except FutureTimeoutError:
                self._cancel_pending(futures[i:])
                raise DeadlineExceeded(
                    f"scan shards did not complete within {timeout}s "
                    f"(stalled at shard [{slices[i].start}:{slices[i].stop}))",
                    timeout_s=timeout, stage="map_shards",
                ) from None
            except Exception as exc:
                self._cancel_pending(futures[i + 1:])
                raise ShardError(slices[i].start, slices[i].stop, exc) from exc
        return results

    def map_shards_tolerant(
        self,
        fn: Callable[[Sequence[T]], list[R]],
        items: Sequence[T],
        shards: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
    ) -> list[ShardOutcome]:
        """Map shards, degrading instead of raising on partial failure.

        Every shard runs (subject to ``timeout``, a deadline over the
        whole call); a shard that raises is retried up to ``retries``
        times, and the returned :class:`ShardOutcome` list — one entry
        per shard, in item order — records results or the final
        exception per shard.  A shard whose result is not available by
        the deadline is recorded as failed with
        :class:`DeadlineExceeded` (its thread is abandoned, and any
        shard not yet started is cancelled).  Only programming errors
        escape this method.
        """
        if len(items) == 0:
            return []
        slices = shard_slices(len(items), shards or self.workers)
        deadline = None if timeout is None else time.monotonic() + timeout
        futures = [self._executor.submit(fn, items[s]) for s in slices]
        outcomes: list[ShardOutcome] = []
        timed_out = False
        for i, (s, future) in enumerate(zip(slices, futures)):
            outcome = ShardOutcome(start=s.start, stop=s.stop)
            attempts = 0
            while True:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                try:
                    outcome.results = list(future.result(timeout=remaining))
                    outcome.error = None
                    break
                except (FutureTimeoutError, CancelledError):
                    outcome.error = DeadlineExceeded(
                        f"shard [{s.start}:{s.stop}) did not complete "
                        f"within the {timeout}s scan deadline",
                        timeout_s=timeout, stage="shard",
                    )
                    timed_out = True
                    break  # no retry: the deadline already passed
                except Exception as exc:
                    outcome.error = exc
                    if attempts >= retries:
                        break
                    if deadline is not None and time.monotonic() >= deadline:
                        break  # no budget left to retry into
                    attempts += 1
                    outcome.retries = attempts
                    future = self._executor.submit(fn, items[s])
            outcomes.append(outcome)
            if timed_out:
                # deadline passed: collect already-finished shards for
                # free, fail the rest without waiting
                self._cancel_pending(futures[i + 1:])
        return outcomes

    @staticmethod
    def _cancel_pending(futures) -> None:
        """Cancel every not-yet-started future (running ones are
        abandoned — thread work cannot be interrupted)."""
        for future in futures:
            future.cancel()

    def close(self, timeout: float | None = 10.0) -> None:
        """Shut the pool down, waiting at most ``timeout`` seconds.

        Queued-but-unstarted shards are cancelled; in-flight shards get
        ``timeout`` to finish.  A worker still alive past the deadline —
        an abandoned shard wedged in an engine call (threads are never
        killed) — raises ``RuntimeError`` so the leak is visible instead
        of blocking shutdown forever.  ``timeout=None`` restores the
        unbounded ``shutdown(wait=True)`` wait.
        """
        if timeout is None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            return
        self._executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + timeout
        threads = list(getattr(self._executor, "_threads", ()))
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                thread.join(timeout=remaining)
        wedged = [t.name for t in threads if t.is_alive()]
        if wedged:
            raise RuntimeError(
                f"WorkerPool failed to stop within {timeout}s; wedged "
                f"worker thread(s) leaked: {', '.join(wedged)}"
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
