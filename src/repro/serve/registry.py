"""Model registry: checkpoints in, compiled inference engines out.

The registry is the service's model store.  Models arrive either as
live :class:`~repro.nn.module.Module` trees (``register``) or as
``.npz`` checkpoints written by ``repro train --save``
(``load_checkpoint``).  Each entry is compiled to the bit-packed
XNOR/popcount engine (:class:`~repro.binary.inference.PackedBNN`); when
compilation fails — e.g. the network contains a layer type the packed
compiler does not support — the registry falls back to the float
simulation (:class:`~repro.binary.inference.FloatEngine`) and records
the backend so callers can see which path served them.

Checkpoints written with metadata (``save_model(..., meta=...)``) are
self-describing: :func:`model_from_meta` rebuilds the paper's residual
architecture from the recorded knobs, so ``load_checkpoint`` needs no
out-of-band architecture information.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from threading import Lock

from ..binary.inference import FloatEngine, PackedBNN
from ..detect.bnn_detector import stages_for_image_size
from ..models.bnn_resnet import build_bnn_resnet
from ..nn.module import Module
from ..nn.serialization import CheckpointError, load_meta, load_model

__all__ = ["ModelEntry", "ModelRegistry", "compile_engine", "model_from_meta"]


def compile_engine(
    model: Module, prefer_packed: bool = True
) -> tuple[PackedBNN | FloatEngine, str]:
    """Compile ``model`` to an inference engine, falling back to float.

    Returns ``(engine, backend)`` where backend is ``"packed"`` or
    ``"float"``.  Compilation errors (unsupported layer types) are
    swallowed — the float simulation always works — so registration
    never fails for a forward-capable model.
    """
    if prefer_packed:
        try:
            return PackedBNN(model), "packed"
        except (TypeError, ValueError, AttributeError):
            pass
    return FloatEngine(model), "float"


def model_from_meta(meta: dict[str, object]) -> Module:
    """Rebuild the BNN architecture recorded in checkpoint metadata.

    Required key: ``image_size``.  Optional (with training defaults):
    ``base_width``, ``scaling``, ``stem_stride``.  Weights are loaded
    separately; the seed only fixes the throwaway initialisation.
    """
    if "image_size" not in meta:
        raise KeyError(
            "checkpoint metadata lacks 'image_size'; pass an explicit "
            "model= to load_checkpoint() for legacy checkpoints"
        )
    image_size = int(meta["image_size"])
    base_width = int(meta.get("base_width", 8))
    scaling = str(meta.get("scaling", "xnor"))
    stem_stride = int(meta.get("stem_stride", 2 if image_size >= 64 else 1))
    n_stages = stages_for_image_size(image_size, stem_stride)
    channels = tuple(base_width * (2**i) for i in range(n_stages))
    return build_bnn_resnet(
        channels, scaling=scaling, stem_stride=stem_stride, seed=0
    )


@dataclass
class ModelEntry:
    """One registered model: weights, compiled engine, serving knobs."""

    name: str
    model: Module
    engine: PackedBNN | FloatEngine
    backend: str  #: ``"packed"`` or ``"float"``
    image_size: int  #: square input side the engine expects
    decision_bias: float = 0.0  #: score threshold (see ``BNNDetector``)
    meta: dict[str, object] = field(default_factory=dict)


class ModelRegistry:
    """Thread-safe name -> :class:`ModelEntry` store."""

    def __init__(self):
        self._entries: dict[str, ModelEntry] = {}
        self._lock = Lock()

    def register(
        self,
        name: str,
        model: Module,
        image_size: int,
        prefer_packed: bool = True,
        decision_bias: float = 0.0,
        meta: dict[str, object] | None = None,
    ) -> ModelEntry:
        """Compile and register a live model under ``name``.

        Re-registering a name replaces the previous entry (latest wins),
        which is how a rolling model update deploys.
        """
        engine, backend = compile_engine(model, prefer_packed=prefer_packed)
        entry = ModelEntry(
            name=name,
            model=model,
            engine=engine,
            backend=backend,
            image_size=int(image_size),
            decision_bias=float(decision_bias),
            meta=dict(meta or {}),
        )
        with self._lock:
            self._entries[name] = entry
        return entry

    def load_checkpoint(
        self,
        name: str,
        path: str | os.PathLike,
        model: Module | None = None,
        image_size: int | None = None,
        prefer_packed: bool = True,
    ) -> ModelEntry:
        """Load a ``.npz`` checkpoint and register it under ``name``.

        With ``model=None`` the architecture is rebuilt from the
        checkpoint's metadata record (written by ``repro train --save``);
        an explicit ``model`` skips that and just receives the weights.

        A corrupt, truncated, or checksum-failing checkpoint raises
        :class:`~repro.nn.serialization.CheckpointError` *before*
        anything is registered — a bad model file must never replace a
        live entry (re-registering a name is how rolling updates
        deploy, so the previous entry keeps serving).
        """
        try:
            meta = load_meta(path)
            if model is None:
                model = model_from_meta(meta)
            load_model(model, path)
        except CheckpointError as exc:
            raise CheckpointError(
                f"cannot register model {name!r}: {exc}"
            ) from exc
        if image_size is None:
            if "image_size" not in meta:
                raise KeyError(
                    "image_size not in checkpoint metadata; pass image_size="
                )
            image_size = int(meta["image_size"])
        return self.register(
            name,
            model,
            image_size=image_size,
            prefer_packed=prefer_packed,
            decision_bias=float(meta.get("decision_bias", 0.0)),
            meta=meta,
        )

    def get(self, name: str) -> ModelEntry:
        """Look up an entry; raises ``KeyError`` with the known names."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(
                    f"no model {name!r} registered "
                    f"(known: {sorted(self._entries) or 'none'})"
                ) from None

    def names(self) -> list[str]:
        """Registered model names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
