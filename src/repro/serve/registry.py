"""Model registry: checkpoints in, compiled inference engines out.

The registry is the service's model store.  Models arrive either as
live :class:`~repro.nn.module.Module` trees (``register``) or as
``.npz`` checkpoints written by ``repro train --save``
(``load_checkpoint``).  Each entry is compiled through the engine
backend registry (:mod:`repro.engine.backends`):

* ``backend=None`` (default) keeps the historical policy — prefer the
  bit-packed XNOR/popcount engine
  (:class:`~repro.binary.inference.PackedBNN`) and fall back to the
  float engine when the model cannot be lowered.  The fallback is no
  longer silent: *why* it happened (the unloweredable layer type) is
  recorded on the entry and surfaced by ``HotspotService.stats()`` /
  ``health()`` as a degraded-performance note.
* ``backend="name"`` requests one registered backend *strictly*: an
  unknown name raises ``ValueError`` listing what exists, and a model
  that cannot be lowered for it raises instead of silently serving a
  different substrate.

Checkpoints written with metadata (``save_model(..., meta=...)``) are
self-describing: :func:`model_from_meta` rebuilds the paper's residual
architecture from the recorded knobs, so ``load_checkpoint`` needs no
out-of-band architecture information.  Checkpoints also record the
backend they were trained/saved for; loading one under a different
backend warns (predictions stay bit-identical across built-in backends,
but timing-sensitive serving runs stop being reproducible from the
checkpoint alone).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from threading import Lock

from ..binary.inference import (
    FloatEngine,
    PackedBNN,
    ProgramEngine,
    engine_for_backend,
)
from ..detect.bnn_detector import stages_for_image_size
from ..engine.backends import available_backends
from ..engine.lower import LoweringError, pipeline_signature
from ..models.bnn_resnet import build_bnn_resnet
from ..nn.module import Module
from ..nn.serialization import CheckpointError, load_meta, load_model

__all__ = ["ModelEntry", "ModelRegistry", "compile_engine", "model_from_meta"]


def _compile_with_reason(
    model: Module,
    prefer_packed: bool,
    backend: str | None,
    passes="default",
) -> tuple[ProgramEngine, str, str | None]:
    """Compile ``model``; also report why a fallback happened (or None).

    Only the legacy ``backend=None`` path can fall back; an explicit
    backend request is strict.
    """
    if backend is not None:
        if backend not in available_backends():
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(available: {', '.join(available_backends())})"
            )
        return engine_for_backend(model, backend, passes), backend, None
    if prefer_packed:
        try:
            return PackedBNN(model, passes), "packed", None
        except LoweringError as exc:
            reason = (
                f"layer type {exc.layer_type!r} cannot be lowered to the "
                f"packed backend; serving the float fallback"
            )
        except (TypeError, ValueError, AttributeError) as exc:
            reason = (
                f"packed compilation failed ({type(exc).__name__}: {exc}); "
                f"serving the float fallback"
            )
        return FloatEngine(model, passes), "float", reason
    return FloatEngine(model, passes), "float", None


def compile_engine(
    model: Module,
    prefer_packed: bool = True,
    backend: str | None = None,
    passes="default",
) -> tuple[ProgramEngine, str]:
    """Compile ``model`` to an inference engine.

    Returns ``(engine, backend_name)``.  With ``backend=None`` this is
    the historical packed-or-float policy: compilation errors are
    swallowed — the float engine always works (it degrades to a live
    model view for unloweredable models) — so registration never fails
    for a forward-capable model.  An explicit ``backend`` resolves
    through the engine backend registry and is strict (unknown names
    and unloweredable models raise).  ``passes`` selects the pass
    pipeline the program is optimized with before compilation
    (``"default"``, ``"none"``, or explicit pass names).
    """
    engine, name, _ = _compile_with_reason(model, prefer_packed, backend, passes)
    return engine, name


def model_from_meta(meta: dict[str, object]) -> Module:
    """Rebuild the BNN architecture recorded in checkpoint metadata.

    Required key: ``image_size``.  Optional (with training defaults):
    ``base_width``, ``scaling``, ``stem_stride``.  Weights are loaded
    separately; the seed only fixes the throwaway initialisation.
    """
    if "image_size" not in meta:
        raise KeyError(
            "checkpoint metadata lacks 'image_size'; pass an explicit "
            "model= to load_checkpoint() for legacy checkpoints"
        )
    image_size = int(meta["image_size"])
    base_width = int(meta.get("base_width", 8))
    scaling = str(meta.get("scaling", "xnor"))
    stem_stride = int(meta.get("stem_stride", 2 if image_size >= 64 else 1))
    n_stages = stages_for_image_size(image_size, stem_stride)
    channels = tuple(base_width * (2**i) for i in range(n_stages))
    return build_bnn_resnet(
        channels, scaling=scaling, stem_stride=stem_stride, seed=0
    )


@dataclass
class ModelEntry:
    """One registered model: weights, compiled engine, serving knobs."""

    name: str
    model: Module
    engine: ProgramEngine
    backend: str  #: resolved backend name (``"packed"``, ``"float"``, ...)
    image_size: int  #: square input side the engine expects
    decision_bias: float = 0.0  #: score threshold (see ``BNNDetector``)
    meta: dict[str, object] = field(default_factory=dict)
    #: why the preferred backend was not used (None when none happened);
    #: surfaced by the service as a degraded-performance note
    fallback_reason: str | None = None
    #: pass-pipeline signature the engine was compiled under
    #: (e.g. ``"fold-bn>hoist-scales>liveness"`` or ``"none"``)
    pipeline: str = ""


class ModelRegistry:
    """Thread-safe name -> :class:`ModelEntry` store."""

    def __init__(self):
        self._entries: dict[str, ModelEntry] = {}
        self._lock = Lock()

    def register(
        self,
        name: str,
        model: Module,
        image_size: int,
        prefer_packed: bool = True,
        decision_bias: float = 0.0,
        meta: dict[str, object] | None = None,
        backend: str | None = None,
        passes="default",
    ) -> ModelEntry:
        """Compile and register a live model under ``name``.

        ``backend`` selects a registered engine backend by name
        (strict); the default keeps the prefer-packed-with-fallback
        policy.  ``passes`` selects the optimization pipeline.
        Re-registering a name replaces the previous entry (latest
        wins), which is how a rolling model update deploys.
        """
        engine, backend_name, reason = _compile_with_reason(
            model, prefer_packed, backend, passes
        )
        entry = ModelEntry(
            name=name,
            model=model,
            engine=engine,
            backend=backend_name,
            image_size=int(image_size),
            decision_bias=float(decision_bias),
            meta=dict(meta or {}),
            fallback_reason=reason,
            pipeline=getattr(engine, "pipeline", "none"),
        )
        with self._lock:
            self._entries[name] = entry
        return entry

    def load_checkpoint(
        self,
        name: str,
        path: str | os.PathLike,
        model: Module | None = None,
        image_size: int | None = None,
        prefer_packed: bool = True,
        backend: str | None = None,
        passes="default",
    ) -> ModelEntry:
        """Load a ``.npz`` checkpoint and register it under ``name``.

        With ``model=None`` the architecture is rebuilt from the
        checkpoint's metadata record (written by ``repro train --save``);
        an explicit ``model`` skips that and just receives the weights.

        When the checkpoint records the backend it was saved for and the
        effective request differs, a ``UserWarning`` is emitted — the
        predictions of the built-in backends are bit-identical, but a
        serving run is only reproducible from the checkpoint alone when
        the backend matches.

        A corrupt, truncated, or checksum-failing checkpoint raises
        :class:`~repro.nn.serialization.CheckpointError` *before*
        anything is registered — a bad model file must never replace a
        live entry (re-registering a name is how rolling updates
        deploy, so the previous entry keeps serving).
        """
        try:
            meta = load_meta(path)
            if model is None:
                model = model_from_meta(meta)
            load_model(model, path)
        except CheckpointError as exc:
            raise CheckpointError(
                f"cannot register model {name!r}: {exc}"
            ) from exc
        if backend is not None and backend not in available_backends():
            # fail before the mismatch warning below can claim we are
            # "serving with" a backend that does not exist
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(available: {', '.join(available_backends())})"
            )
        recorded = meta.get("backend")
        if recorded is not None:
            requested = backend or ("packed" if prefer_packed else "float")
            if str(recorded) != requested:
                warnings.warn(
                    f"checkpoint {os.fspath(path)!r} records backend "
                    f"{str(recorded)!r} but {requested!r} was requested; "
                    f"serving with {requested!r} (predictions are "
                    f"bit-identical across built-in backends, but the run "
                    f"is not reproducible from the checkpoint alone)",
                    UserWarning,
                    stacklevel=2,
                )
        recorded_pipeline = meta.get("pipeline")
        if recorded_pipeline is not None:
            requested_pipeline = pipeline_signature(passes)
            if str(recorded_pipeline) != requested_pipeline:
                warnings.warn(
                    f"checkpoint {os.fspath(path)!r} records pass pipeline "
                    f"{str(recorded_pipeline)!r} but "
                    f"{requested_pipeline!r} was requested; serving with "
                    f"{requested_pipeline!r} (logits are bit-identical "
                    f"across pipelines, but durable-scan journals bind to "
                    f"the pipeline and will refuse to resume across this "
                    f"change)",
                    UserWarning,
                    stacklevel=2,
                )
        if image_size is None:
            if "image_size" not in meta:
                raise KeyError(
                    "image_size not in checkpoint metadata; pass image_size="
                )
            image_size = int(meta["image_size"])
        return self.register(
            name,
            model,
            image_size=image_size,
            prefer_packed=prefer_packed,
            decision_bias=float(meta.get("decision_bias", 0.0)),
            meta=meta,
            backend=backend,
            passes=passes,
        )

    def get(self, name: str) -> ModelEntry:
        """Look up an entry; raises ``KeyError`` with the known names."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(
                    f"no model {name!r} registered "
                    f"(known: {sorted(self._entries) or 'none'})"
                ) from None

    def names(self) -> list[str]:
        """Registered model names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
