"""The hotspot inference service: registry + batcher + pool + cache.

:class:`HotspotService` is the synchronous front door of the serving
layer.  Two request shapes:

* **classify** — one clip (raster image or geometry) -> one
  :class:`~repro.serve.types.Prediction`.  Requests from concurrent
  callers coalesce in a per-model :class:`MicroBatcher` so the engine
  runs on real batches even though every caller sees a simple blocking
  call.
* **scan** — a full layout swept by a sliding window
  (:class:`~repro.serve.types.ScanRequest`) -> a
  :class:`~repro.serve.types.ScanReport` of hotspot windows.  The
  window list is sharded across a :class:`WorkerPool`; window rasters
  go through the shared LRU :class:`RasterCache` so repeated geometry
  (empty regions, repeated cells) skips rasterization entirely.

Both paths produce predictions bit-identical to a direct
``engine.predict_logits`` call on the same inputs — batching and
sharding are pure throughput plumbing, never a numerics change.

Fault tolerance (see ``docs/serving.md`` → "Failure modes &
guarantees"): requests carry **deadlines** (``timeout=`` per call, or
``default_timeout_s`` service-wide) and fail with typed
:class:`~repro.serve.errors.DeadlineExceeded` /
:class:`~repro.serve.errors.ServiceOverloaded` instead of hanging or
OOMing; a poison clip that crashes the engine is **quarantined** by
batch bisection so co-batched requests still succeed; a failing scan
shard is retried once and then reported as a **degraded**
:class:`~repro.serve.types.ScanReport` (``failed_ranges``) rather than
discarding the healthy shards; and a seeded
:class:`~repro.serve.faults.FaultInjector` can be threaded through the
engine and raster call sites to rehearse all of the above
deterministically.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Iterable, Sequence

import numpy as np

from ..chip import (
    DEFAULT_TILE_BUDGET,
    ChipScanner,
    ChipScanResult,
    DurableChipScan,
    RetryPolicy,
    TileRecord,
    journal_header,
    snapshot_journal,
)
from ..features.downsample import downsample_binary, to_network_input
from ..litho.geometry import Clip, Rect
from ..nn.module import Module
from .batcher import MicroBatcher
from .cache import PlaneCache, RasterCache
from .errors import DeadlineExceeded, ServiceOverloaded
from .faults import FaultInjector
from .metrics import ServiceMetrics
from .pool import WorkerPool
from .registry import ModelEntry, ModelRegistry
from .types import (
    ChipScanReport,
    ChipScanRequest,
    ClipRequest,
    HealthReport,
    HealthState,
    Prediction,
    ScanHit,
    ScanReport,
    ScanRequest,
)

__all__ = [
    "HotspotService",
    "window_origins",
    "extract_window",
    "plane_scan_scale",
]


def window_origins(size: int, window: int, stride: int) -> list[tuple[int, int]]:
    """Sliding-window origins covering a ``size`` x ``size`` layout.

    Row-major order; the last row/column snaps to the layout edge so the
    sweep covers the full area even when ``stride`` does not divide
    ``size - window``.
    """
    if window <= 0 or window > size:
        raise ValueError(f"window {window} outside (0, {size}]")
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    last = size - window
    steps = list(range(0, last + 1, stride))
    if steps[-1] != last:
        steps.append(last)
    return [(x, y) for y in steps for x in steps]


def plane_scan_scale(
    layout_size: int, window: int, stride: int, pixels: int
) -> int | None:
    """Integer nm-per-pixel scale of a plane-compatible scan, or None.

    The plane path requires window slices of the full-layout raster to
    be bit-identical to per-window rasterization (see
    :func:`repro.litho.raster.rasterize_plane`): the window must be a
    whole number of pixels per raster cell, and both the layout and
    every window origin must land on pixel boundaries.  Origins are
    multiples of the stride plus the snapped last column
    ``size - window``, so ``scale | size`` and ``scale | stride`` cover
    them all.  Shared by the in-process scan path and the cluster
    router (:mod:`repro.serve.cluster`), which ships the plane to
    worker processes under the same alignment contract.
    """
    if pixels <= 0 or window % pixels:
        return None
    scale = window // pixels
    if layout_size % scale or stride % scale:
        return None
    return scale


def extract_window(layout: Clip, x0: int, y0: int, window: int) -> Clip:
    """Cut the ``window``-sized sub-clip of ``layout`` at ``(x0, y0)``.

    Rectangles are clipped to the window and shifted to the window's
    local origin, matching how training clips are framed.
    """
    frame = Rect(x0, y0, x0 + window, y0 + window)
    out = Clip(window)
    for rect in layout.rects:
        part = rect.intersection(frame)
        if part is not None:
            out.add(part.shifted(-x0, -y0))
    return out


class HotspotService:
    """Batched, multi-worker hotspot inference over registered models.

    Parameters
    ----------
    registry:
        Model store; a fresh empty one is created when omitted.
    default_model:
        Registry name used when a request does not pick a model.
    max_batch / max_wait_ms:
        Micro-batching knobs (see :class:`MicroBatcher`).  They also
        bound the engine chunk size of scan shards.
    cache_capacity:
        LRU raster cache entries shared by every model and request type.
    plane_cache_capacity:
        LRU entries of full-layout plane rasters (used by the scan
        path's plane-compiled engine; planes are large, keep this
        small).
    workers:
        Scan-mode worker threads (default: CPU count, capped at 8).
    queue_depth:
        Admission-queue bound per model batcher (backpressure); ``None``
        restores the legacy unbounded queue.
    overflow:
        Full-queue policy: ``"block"`` (wait, bounded by the request
        deadline) or ``"shed"`` (reject with ``ServiceOverloaded``).
    default_timeout_s:
        Service-wide request deadline in seconds, used when a call does
        not pass its own ``timeout=``.  ``None`` means no deadline.
    shard_retries:
        How often a failed scan shard is re-run before its window range
        is reported as failed in a degraded ``ScanReport``.
    faults:
        Optional :class:`~repro.serve.faults.FaultInjector` threaded
        through the engine (``"engine"``) and rasterization
        (``"raster"``) call sites — chaos testing only, never set in
        production.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        default_model: str | None = None,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache_capacity: int = 2048,
        plane_cache_capacity: int = 8,
        workers: int | None = None,
        queue_depth: int | None = 1024,
        overflow: str = "block",
        default_timeout_s: float | None = None,
        shard_retries: int = 1,
        faults: FaultInjector | None = None,
    ):
        # validate eagerly: batchers are built lazily, and a bad knob
        # must fail service construction, not the first request
        if shard_retries < 0:
            raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
        if queue_depth is not None and queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if overflow not in ("block", "shed"):
            raise ValueError(
                f"overflow must be 'block' or 'shed', got {overflow!r}"
            )
        self.registry = registry if registry is not None else ModelRegistry()
        self.default_model = default_model
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.queue_depth = queue_depth
        self.overflow = overflow
        self.default_timeout_s = default_timeout_s
        self.shard_retries = shard_retries
        self.faults = faults
        self.metrics = ServiceMetrics()
        self.cache = RasterCache(capacity=cache_capacity)
        self.plane_cache = PlaneCache(capacity=plane_cache_capacity)
        self.pool = WorkerPool(workers=workers)
        self._batchers: dict[str, tuple[object, MicroBatcher]] = {}
        self._closed = False

    @classmethod
    def from_model(
        cls,
        model: Module,
        image_size: int,
        name: str = "default",
        prefer_packed: bool = True,
        decision_bias: float = 0.0,
        backend: str | None = None,
        **kwargs,
    ) -> "HotspotService":
        """Convenience: wrap one live model in a ready-to-serve service.

        ``backend`` selects a registered engine backend by name
        (strict); the default keeps prefer-packed-with-fallback.
        """
        registry = ModelRegistry()
        registry.register(
            name,
            model,
            image_size=image_size,
            prefer_packed=prefer_packed,
            decision_bias=decision_bias,
            backend=backend,
        )
        return cls(registry=registry, default_model=name, **kwargs)

    # -- internals -------------------------------------------------------

    def _entry(self, model: str | None) -> ModelEntry:
        if self._closed:
            raise RuntimeError("service is closed")
        name = model or self.default_model
        if name is None:
            names = self.registry.names()
            if len(names) == 1:
                name = names[0]
            else:
                raise ValueError(
                    "no model selected: pass model= or set default_model "
                    f"(registered: {names or 'none'})"
                )
        entry = self.registry.get(name)
        # engines accumulate per-op wall times; exposing the table via
        # the metrics object makes stats() report a per-layer breakdown
        table = getattr(entry.engine, "op_times", None)
        if table is not None:
            self.metrics.register_op_table(entry.name, table)
        return entry

    def _batcher(self, entry: ModelEntry) -> MicroBatcher:
        engine_and_batcher = self._batchers.get(entry.name)
        if engine_and_batcher is None or engine_and_batcher[0] is not entry.engine:
            # lazily created; rebuilt when a name is re-registered
            if engine_and_batcher is not None:
                engine_and_batcher[1].close()
            infer_fn = entry.engine.forward
            if self.faults is not None:
                infer_fn = self.faults.wrap("engine", infer_fn)
            batcher = MicroBatcher(
                infer_fn,
                max_batch=self.max_batch,
                max_wait_ms=self.max_wait_ms,
                metrics=self.metrics,
                queue_depth=self.queue_depth,
                overflow=self.overflow,
            )
            self._batchers[entry.name] = (entry.engine, batcher)
        return self._batchers[entry.name][1]

    def _raster(self, clip: Clip, pixels: int) -> np.ndarray:
        """Cached rasterization, threaded through the ``"raster"`` faults."""
        if self.faults is None:
            return self.cache.get(clip, pixels, "binary")
        return self.faults.wrap(
            "raster", lambda: self.cache.get(clip, pixels, "binary")
        )()

    def _prepare(self, request: ClipRequest, entry: ModelEntry) -> np.ndarray:
        """Request -> network input ``(1, 1, s, s)`` in the {-1,+1} domain."""
        if request.clip is not None:
            image = self._raster(request.clip, entry.image_size)
        else:
            image = np.asarray(request.image, dtype=np.float64)
            if image.shape[-1] != entry.image_size:
                image = downsample_binary(image, entry.image_size)
        return to_network_input(image[None])

    def _as_request(self, item: ClipRequest | Clip | np.ndarray) -> ClipRequest:
        if isinstance(item, ClipRequest):
            return item
        if isinstance(item, Clip):
            return ClipRequest(clip=item)
        return ClipRequest(image=np.asarray(item))

    # -- classify path ---------------------------------------------------

    def classify(
        self,
        request: ClipRequest | Clip | np.ndarray,
        model: str | None = None,
        timeout: float | None = None,
    ) -> Prediction:
        """Classify one clip (blocking; coalesces with concurrent calls)."""
        return self.classify_many([request], model=model, timeout=timeout)[0]

    def classify_many(
        self,
        requests: Iterable[ClipRequest | Clip | np.ndarray],
        model: str | None = None,
        timeout: float | None = None,
    ) -> list[Prediction]:
        """Classify several clips, submitting all before waiting on any.

        This is the batching-friendly entry point: the requests land in
        the queue together and coalesce into ``max_batch``-sized engine
        invocations.

        ``timeout`` (seconds, default ``default_timeout_s``) is one
        deadline over the whole call — admission and result waits
        combined.  Exceeding it abandons the outstanding requests and
        raises :class:`DeadlineExceeded`; a full admission queue under
        the ``"shed"`` policy raises :class:`ServiceOverloaded` without
        doing any work.
        """
        entry = self._entry(model)
        batcher = self._batcher(entry)
        if timeout is None:
            timeout = self.default_timeout_s
        started = time.perf_counter()
        deadline = None if timeout is None else time.monotonic() + timeout
        prepared = [self._as_request(item) for item in requests]
        futures = []
        try:
            for request in prepared:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                futures.append(
                    batcher.submit(self._prepare(request, entry),
                                   timeout=remaining)
                )
        except (DeadlineExceeded, ServiceOverloaded):
            for future in futures:
                future.cancel()
            raise
        predictions = []
        for request, future in zip(prepared, futures):
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                logits = future.result(timeout=remaining)
            except FutureTimeoutError:
                for pending in futures:
                    pending.cancel()
                self.metrics.record_timeout()
                raise DeadlineExceeded(
                    f"classify did not complete within {timeout}s",
                    timeout_s=timeout, stage="classify",
                ) from None
            except Exception:
                self.metrics.record_error()
                raise
            score = float(logits[1] - logits[0])
            latency_ms = (time.perf_counter() - started) * 1e3
            self.metrics.record_request(latency_ms)
            predictions.append(
                Prediction(
                    request_id=request.request_id,
                    label=int(score > entry.decision_bias),
                    score=score,
                    model=entry.name,
                    backend=entry.backend,
                    latency_ms=latency_ms,
                )
            )
        return predictions

    # -- scan path -------------------------------------------------------

    def _scan_shard(
        self,
        origins: Sequence[tuple[int, int]],
        request: ScanRequest,
        entry: ModelEntry,
    ) -> list[float]:
        """Score one contiguous shard of window origins (chunked)."""
        predict = entry.engine.predict_logits
        if self.faults is not None:
            predict = self.faults.wrap("engine", predict)
        scores: list[float] = []
        for start in range(0, len(origins), self.max_batch):
            chunk = origins[start : start + self.max_batch]
            images = np.stack(
                [
                    self._raster(
                        extract_window(request.layout, x, y, request.window),
                        entry.image_size,
                    )
                    for x, y in chunk
                ]
            )
            logits = predict(to_network_input(images))
            scores.extend((logits[:, 1] - logits[:, 0]).tolist())
        return scores

    def _plane_scale(self, request: ScanRequest, entry: ModelEntry) -> int | None:
        """See :func:`plane_scan_scale` (the shared alignment contract)."""
        return plane_scan_scale(
            request.layout.size, request.window, request.stride,
            entry.image_size,
        )

    def scan(
        self,
        request: ScanRequest,
        model: str | None = None,
        timeout: float | None = None,
    ) -> ScanReport:
        """Sweep a full layout; returns the windows flagged as hotspots.

        Deterministic by construction: shards are contiguous origin
        ranges and results are reassembled in shard order, so worker
        count and thread scheduling never change the report.

        When the scan geometry is pixel-aligned (see
        :meth:`_plane_scale`) and the engine exposes ``plan_scan``, the
        layout is rasterized **once** as a full plane and windows are
        scored by the plane-compiled scan engine — workers then shard
        origin ranges over the shared read-only plan instead of
        rasterizing every window.  The report is bit-identical either
        way; the plane path is purely a throughput optimisation, and a
        failure while *building* the plan falls back to the per-window
        path instead of failing the sweep.

        Partial failure degrades instead of raising: a shard that keeps
        failing after ``shard_retries`` re-runs — or that misses the
        ``timeout`` deadline (seconds, default ``default_timeout_s``) —
        is dropped from the hit list and reported in the
        ``failed_ranges`` of a ``degraded`` report, while every healthy
        shard's hits are returned unchanged (bit-identical to a fully
        healthy sweep over the same windows).
        """
        entry = self._entry(model)
        if timeout is None:
            timeout = self.default_timeout_s
        started = time.perf_counter()
        origins = window_origins(
            request.layout.size, request.window, request.stride
        )
        scale = self._plane_scale(request, entry)
        plan = None
        if scale is not None and hasattr(entry.engine, "plan_scan"):
            try:
                plane = self.plane_cache.get(request.layout, scale, "binary")
                plan = entry.engine.plan_scan(
                    to_network_input(plane[None]),
                    entry.image_size,
                    [(x // scale, y // scale) for x, y in origins],
                )
            except Exception:
                # plan compilation is an optimisation; per-window scan
                # still serves the sweep (shard failures stay isolated)
                self.metrics.record_error()
                plan = None
        if plan is not None:
            compiled_plan = plan

            def score_shard(shard: Sequence[tuple[int, int]]) -> list[float]:
                if self.faults is not None:
                    corrupt = self.faults.fire("engine")
                else:
                    corrupt = False
                logits = compiled_plan.logits(
                    [(x // scale, y // scale) for x, y in shard],
                    batch_size=self.max_batch,
                )
                if corrupt:
                    logits = np.negative(logits)
                return (logits[:, 1] - logits[:, 0]).tolist()

        else:

            def score_shard(shard: Sequence[tuple[int, int]]) -> list[float]:
                return self._scan_shard(shard, request, entry)

        outcomes = self.pool.map_shards_tolerant(
            score_shard, origins, timeout=timeout, retries=self.shard_retries
        )
        hits = []
        failed_ranges = []
        retried_shards = 0
        for outcome in outcomes:
            retried_shards += outcome.retries
            if not outcome.ok:
                failed_ranges.append((outcome.start, outcome.stop))
                continue
            for (x, y), score in zip(
                origins[outcome.start:outcome.stop], outcome.results
            ):
                if score > entry.decision_bias:
                    hits.append(ScanHit(
                        x, y, x + request.window, y + request.window, score
                    ))
        latency_ms = (time.perf_counter() - started) * 1e3
        failed_windows = sum(stop - start for start, stop in failed_ranges)
        self.metrics.record_scan(
            len(origins), latency_ms, plane=plan is not None,
            failed_windows=failed_windows, retried_shards=retried_shards,
        )
        return ScanReport(
            request_id=request.request_id,
            windows_scanned=len(origins),
            hits=tuple(hits),
            model=entry.name,
            backend=entry.backend,
            latency_ms=latency_ms,
            degraded=bool(failed_ranges),
            failed_ranges=tuple(failed_ranges),
        )

    # -- full-chip streaming scan path -----------------------------------

    def _chip_scanner(self, entry: ModelEntry) -> ChipScanner:
        # the scanner threads every tile/origin scoring call through the
        # injector's "engine" site itself, so the forward scan, the ECO
        # re-scan and the durable path all share one chaos surface
        return ChipScanner(
            entry.engine, entry.image_size, batch_size=self.max_batch,
            plane_cache=self.plane_cache, faults=self.faults,
        )

    def _chip_report(
        self,
        request_id: str,
        result: ChipScanResult,
        entry: ModelEntry,
        started: float,
        failed_tiles: tuple[int, ...] = (),
        retried_shards: int = 0,
    ) -> ChipScanReport:
        latency_ms = (time.perf_counter() - started) * 1e3
        failed_tiles = tuple(failed_tiles) or tuple(result.failed_tiles)
        stats = result.stats
        quarantined = tuple(stats.get("quarantined_windows", ()))
        replayed = int(stats.get("tiles_replayed", 0))
        tile_retries = int(stats.get("tile_retries", 0))
        resumed = bool(stats.get("resumed", False))
        self.metrics.record_chip_scan(
            windows=result.windows,
            tiles=result.tiles,
            latency_ms=latency_ms,
            failed_tiles=len(failed_tiles),
            failed_windows=result.heatmap.n_unscored,
            peak_tile_bytes=result.peak_tile_bytes,
            rescored_windows=result.rescored_windows,
            retried_shards=retried_shards,
            replayed_tiles=replayed,
            tile_retries=tile_retries,
            backoff_ms=float(stats.get("backoff_s", 0.0)) * 1e3,
            quarantined_windows=len(quarantined),
            resumed=resumed,
        )
        return ChipScanReport(
            request_id=request_id,
            windows_scanned=result.windows,
            tiles_total=result.tiles,
            peak_tile_bytes=result.peak_tile_bytes,
            heatmap=result.heatmap,
            result=result,
            model=entry.name,
            backend=entry.backend,
            pipeline=entry.pipeline,
            latency_ms=latency_ms,
            degraded=bool(failed_tiles or quarantined),
            failed_tiles=failed_tiles,
            rescored_windows=result.rescored_windows,
            quarantined_windows=quarantined,
            tiles_replayed=replayed,
            tile_retries=tile_retries,
            resumed=resumed,
        )

    def scan_chip(
        self,
        request: ChipScanRequest,
        model: str | None = None,
        timeout: float | None = None,
        handle_signals: bool = False,
    ) -> ChipScanReport:
        """Stream-scan a full chip; peak plane memory stays tile-bounded.

        The layout is never rasterized whole: the sweep is compiled to
        halo-correct tiles (:func:`repro.chip.plan_tiles`) and each
        tile — one contiguous origin range — is rasterized and scored
        independently, sharded one-tile-per-shard across the worker
        pool.  Scores are bit-identical to :meth:`scan`'s plane path on
        the same layout (the chip parity gate holds that line), so the
        choice between the two is purely a memory/size decision.

        Partial failure degrades instead of raising, at tile
        granularity: a tile whose shard keeps failing after
        ``shard_retries`` re-runs (or misses the deadline) stays ``NaN``
        in the heatmap and is listed in the report's ``failed_tiles``;
        healthy tiles are returned unchanged.

        A ``request.token`` enrolls the scan in the region-keyed plane
        cache: pass the returned report to :meth:`rescan_chip` with an
        edit list, and only the dirtied tile planes are rebuilt.

        A ``request.journal`` switches to the **durable** path (see
        :meth:`_scan_chip_durable`): journaled tile completion,
        kill-anywhere resume, retry waves with deterministic backoff,
        and poison-window quarantine by spatial bisection.  The durable
        path is governed by its retry budget rather than ``timeout``
        (stop it with SIGINT/SIGTERM under ``handle_signals=True`` —
        main thread only — and resume later).
        """
        entry = self._entry(model)
        if request.journal:
            return self._scan_chip_durable(request, entry, handle_signals)
        if timeout is None:
            timeout = self.default_timeout_s
        started = time.perf_counter()
        scanner = self._chip_scanner(entry)
        job = scanner.compile(
            request.layout, request.window, request.stride,
            request.tile_budget or DEFAULT_TILE_BUDGET,
            token=request.token or None,
        )
        score_tile = job.score_tile

        def score_shard(tiles):
            return [score_tile(tile) for tile in tiles]

        outcomes = self.pool.map_shards_tolerant(
            score_shard, job.tiles, shards=len(job.tiles),
            timeout=timeout, retries=self.shard_retries,
        )
        scores = job.empty_scores()
        failed_tiles: list[int] = []
        retried_shards = 0
        for outcome in outcomes:
            retried_shards += outcome.retries
            if not outcome.ok:
                failed_tiles.extend(range(outcome.start, outcome.stop))
                continue
            for tile, block in zip(
                job.tiles[outcome.start:outcome.stop], outcome.results
            ):
                scores[tile.iy0:tile.iy1, tile.ix0:tile.ix1] = block
        result = ChipScanResult(
            layout=request.layout, heatmap=job.heatmap(scores), job=job,
            tile_budget=job.grid.tile_budget, tiles=len(job.tiles),
            windows=job.grid.n_windows,
            peak_tile_bytes=job.peak_tile_bytes,
            wall_s=time.perf_counter() - started,
            token=request.token or None,
        )
        return self._chip_report(
            request.request_id, result, entry, started,
            failed_tiles=tuple(failed_tiles),
            retried_shards=retried_shards,
        )

    def _scan_chip_durable(
        self,
        request: ChipScanRequest,
        entry: ModelEntry,
        handle_signals: bool,
    ) -> ChipScanReport:
        """Serve one journaled, resumable, retrying chip scan.

        Tiles are scored wave by wave: each retry wave fans out
        one-tile-per-shard over the worker pool (retries are the
        durable layer's responsibility, so the pool runs each wave with
        ``retries=0``), failures are classified and re-attempted with
        backoff, and persistent failures are bisected down to
        quarantined windows.  Completed tiles hit the journal before
        the next wave starts, so a kill at any point resumes
        bit-identically via ``request.resume``.
        """
        started = time.perf_counter()
        scanner = self._chip_scanner(entry)
        policy = RetryPolicy() if request.max_retries is None else \
            RetryPolicy(max_retries=request.max_retries)

        def parallel(tiles, score_fn):
            outcomes = self.pool.map_shards_tolerant(
                lambda shard: [score_fn(tile) for tile in shard],
                tiles, shards=len(tiles), retries=0,
            )
            return [
                outcome.results[0] if outcome.ok else outcome.error
                for outcome in outcomes
            ]

        durable = DurableChipScan(
            scanner, request.layout, request.window, request.stride,
            request.tile_budget or DEFAULT_TILE_BUDGET,
            journal=request.journal, resume=request.resume, policy=policy,
            token=request.token or None, handle_signals=handle_signals,
        )
        result = durable.run(parallel=parallel)
        return self._chip_report(request.request_id, result, entry, started)

    def rescan_chip(
        self,
        report: ChipScanReport,
        edits: Sequence,
        model: str | None = None,
        request_id: str = "",
        max_retries: int | None = None,
        journal: str = "",
    ) -> ChipScanReport:
        """Incrementally re-scan after layout edits (the ECO loop).

        ``report`` must come from :meth:`scan_chip` (or a previous
        ``rescan_chip``) of this process — it carries the compiled
        scanner state.  Only the windows whose extent the edits dirtied
        are re-scored (:class:`repro.chip.DirtyRegionTracker`); the
        merged heatmap is bit-identical to a from-scratch
        :meth:`scan_chip` of the edited layout.  When the originating
        request carried a ``token``, clean tile planes are reused from
        the region-keyed plane cache and only dirtied regions are
        re-rasterized.

        Windows the previous report left NaN (failed tiles, quarantined
        windows) are re-scored too, so a re-scan *heals* a degraded
        heatmap wherever scoring now succeeds.  Conversely the re-scan
        itself is tolerant: a dirty tile that keeps failing after
        ``max_retries`` re-attempts (default: the service's
        ``shard_retries``) goes NaN and the merged report is degraded —
        never a stale pre-edit score.

        Passing ``journal=`` checkpoints the merged heatmap as an
        atomically-written scan journal of the *edited* layout: a later
        ``scan_chip(..., journal=..., resume=True)`` of that layout
        replays every fully-scored tile.

        The compiled state chains forward: re-scan against the
        *newest* report of a session (earlier reports' state reflects
        the edited layout after this call).
        """
        entry = self._entry(model)
        result = report.result
        if not isinstance(result, ChipScanResult):
            raise ValueError(
                "report carries no scanner state; pass a report returned "
                "by scan_chip()/rescan_chip() of this process"
            )
        started = time.perf_counter()
        scanner = self._chip_scanner(entry)
        retries = self.shard_retries if max_retries is None else max_retries
        merged = scanner.rescan(
            result, list(edits), retries=retries, tolerant=True,
        )
        if journal:
            self._snapshot_rescan(journal, merged)
        return self._chip_report(request_id, merged, entry, started)

    @staticmethod
    def _snapshot_rescan(path: str, merged: ChipScanResult) -> None:
        """Checkpoint a merged re-scan as an atomic resume journal.

        Only fully-scored tiles are recorded — a tile with any NaN
        window is left out so a resume re-scores it whole instead of
        trusting a partial block.
        """
        job = merged.job
        scores = merged.heatmap.scores
        records = []
        for index, tile in enumerate(job.tiles):
            block = scores[tile.iy0:tile.iy1, tile.ix0:tile.ix1]
            if np.isnan(block).any():
                continue
            records.append(TileRecord(index=index, scores=block))
        engine = job.scanner.engine
        snapshot_journal(
            path,
            journal_header(merged.layout, job.grid,
                           job.scanner.image_size,
                           backend=getattr(engine, "backend_name", ""),
                           pipeline=getattr(engine, "pipeline", "")),
            records,
        )

    # -- lifecycle / observability ---------------------------------------

    def health(self) -> HealthReport:
        """Probe the service's health state.

        ``DRAINING`` once :meth:`close` has begun; ``DEGRADED`` when any
        fault counter (errors, sheds, timeouts, quarantined requests,
        degraded scans) has incremented since the metrics were last
        reset — the reasons enumerate which — or when any registered
        model silently fell back from its preferred engine backend (a
        degraded-*performance* note: predictions stay correct, but the
        packed substrate is not serving); ``READY`` otherwise.
        Degradation from fault counters is sticky until
        ``metrics.reset()``: a service that shed load five minutes ago
        should keep telling its load balancer so until an operator (or
        a warm-up cycle) clears it.  A fallback note clears only by
        re-registering the model so the preferred backend compiles.
        """
        if self._closed:
            return HealthReport(
                HealthState.DRAINING, ("service is closed/draining",)
            )
        m = self.metrics
        reasons = tuple(
            f"{count} {what}"
            for count, what in (
                (m.errors_total, "request errors"),
                (m.shed_total, "requests shed (queue full)"),
                (m.timeouts_total, "deadline timeouts"),
                (m.quarantined_total, "poison requests quarantined"),
                (m.degraded_scans_total, "degraded scans"),
            )
            if count
        )
        reasons += tuple(
            f"model {name!r}: {entry.fallback_reason}"
            for name in self.registry.names()
            for entry in (self.registry.get(name),)
            if entry.fallback_reason
        )
        if reasons:
            return HealthReport(HealthState.DEGRADED, reasons)
        return HealthReport(HealthState.READY)

    def stats(self) -> dict[str, object]:
        """Snapshot of service metrics, cache counters, and models."""
        snapshot = self.metrics.stats()
        snapshot["health"] = self.health().state.value
        snapshot["cache"] = {
            "entries": len(self.cache),
            "capacity": self.cache.capacity,
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "hit_rate": round(self.cache.hit_rate, 4),
        }
        snapshot["plane_cache"] = {
            "entries": len(self.plane_cache),
            "capacity": self.plane_cache.capacity,
            "hits": self.plane_cache.hits,
            "misses": self.plane_cache.misses,
            "hit_rate": round(self.plane_cache.hit_rate, 4),
        }
        snapshot["models"] = {
            name: {
                "backend": self.registry.get(name).backend,
                "pipeline": self.registry.get(name).pipeline,
                "image_size": self.registry.get(name).image_size,
                "fallback_reason": self.registry.get(name).fallback_reason,
            }
            for name in self.registry.names()
        }
        return snapshot

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop batcher threads and the scan worker pool.

        Every batcher and the pool are closed even when one of them is
        wedged: each gets at most ``timeout`` seconds, the pool shuts
        down with a bounded wait (a shard abandoned by a past
        ``DeadlineExceeded`` scan cannot block shutdown forever), and
        the first wedged-component error is re-raised at the end so the
        leak is visible without leaving the rest of the service running.
        """
        if self._closed:
            return
        self._closed = True  # health() now reports DRAINING
        wedged: Exception | None = None
        for _engine, batcher in self._batchers.values():
            try:
                batcher.close(timeout=timeout)
            except RuntimeError as exc:
                wedged = wedged or exc
        self._batchers.clear()
        try:
            self.pool.close(timeout=timeout)
        except RuntimeError as exc:
            wedged = wedged or exc
        if wedged is not None:
            raise wedged

    def __enter__(self) -> "HotspotService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
